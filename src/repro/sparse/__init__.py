"""Sparse backpropagation: schemes, pruning, sensitivity, and search."""

from .cost_model import (OPTIMIZER_STATE_SLOTS, SchemeCost,
                         scheme_backward_flops, scheme_memory_cost)
from .lora import (LoRAConfig, inject_lora, lora_scheme, merge_lora)
from .pruning import PruneReport, backward_op_count, prune_training_graph
from .scheme import (ResolvedScheme, UpdateScheme, bias_only, by_predicate,
                     full_update, last_blocks)
from .search import SearchResult, SearchSpace, evolutionary_search
from .sensitivity import SensitivityResult, analyze_sensitivity

__all__ = [
    "LoRAConfig",
    "OPTIMIZER_STATE_SLOTS",
    "PruneReport",
    "ResolvedScheme",
    "SchemeCost",
    "SearchResult",
    "SearchSpace",
    "SensitivityResult",
    "UpdateScheme",
    "analyze_sensitivity",
    "backward_op_count",
    "bias_only",
    "by_predicate",
    "evolutionary_search",
    "full_update",
    "inject_lora",
    "last_blocks",
    "lora_scheme",
    "merge_lora",
    "prune_training_graph",
    "scheme_backward_flops",
    "scheme_memory_cost",
]
