"""LoRA (Hu et al. 2021): the parameter-efficient baseline of Table 5.

LoRA freezes a weight ``W`` and learns a low-rank residual: the layer
computes ``y = x W + (alpha / r) · (x A) B`` with ``A ∈ R[in, r]``,
``B ∈ R[r, out]``. This module implements the real thing as a graph
transform — adapters injected into the forward graph, base weights frozen,
the compiled backward reaching only the adapters — so Table 5's
PyTorch-LoRA row measures an actual LoRA training step instead of a cost
stand-in.

The paper's point stands in the transformed graph too: LoRA shrinks the
*update* (tiny A/B gradients, tiny optimizer state) but the backward pass
still descends to the first adapted block, so iteration latency barely
improves — exactly what sparse-BP's depth pruning avoids.

``merge_lora`` folds trained adapters back into the base weights for
deployment, recovering the original graph structure at zero runtime cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SchemeError
from ..ir import Graph, GraphBuilder
from .scheme import UpdateScheme

#: graph metadata key listing injected adapters:
#: weight name -> {"a": ..., "b": ..., "scale": float}
LORA_KEY = "lora_adapters"


@dataclass(frozen=True)
class LoRAConfig:
    """What to adapt and how big the adapters are."""

    rank: int = 8
    alpha: float = 16.0
    #: adapt weights whose metadata role_in_block is in this set; None
    #: adapts every 2-D trainable weight consumed by a matmul.
    target_roles: tuple[str, ...] | None = ("attention",)
    #: also train the classifier head (standard LoRA practice)
    train_classifier: bool = True

    @property
    def scaling(self) -> float:
        return self.alpha / self.rank


def _target_weights(graph: Graph, config: LoRAConfig) -> list[str]:
    meta = graph.metadata.get("params", {})
    consumers = graph.consumer_map()
    targets = []
    for param in sorted(graph.trainable):
        if graph.spec(param).rank != 2:
            continue
        users = consumers.get(param, [])
        if not users or any(n.op_type != "matmul" for n in users):
            continue
        if any(n.inputs.index(param) != 1 for n in users):
            continue  # only weight-position operands
        if config.target_roles is not None:
            role = meta.get(param, {}).get("role_in_block")
            if role not in config.target_roles:
                continue
        targets.append(param)
    return targets


def inject_lora(graph: Graph, config: LoRAConfig | None = None,
                seed: int = 0) -> Graph:
    """Return a clone of ``graph`` with LoRA adapters on target weights.

    Base weights (and every other previously-trainable tensor except the
    classifier, per ``config.train_classifier``) are frozen; the adapters
    ``A`` (Gaussian init) and ``B`` (zero init — the adapter starts as an
    exact no-op) become the only trainable parameters.

    Raises:
        SchemeError: when no weight matches the config's targets.
    """
    config = config or LoRAConfig()
    if config.rank < 1:
        raise SchemeError(f"LoRA rank must be >= 1, got {config.rank}")
    graph = graph.clone()
    targets = _target_weights(graph, config)
    if not targets:
        raise SchemeError("no weights match the LoRA target config")

    rng = np.random.default_rng(seed)
    b = GraphBuilder(graph=graph)
    meta = graph.metadata.setdefault("params", {})
    adapters: dict[str, dict] = {}
    scale_const = b.constant(np.float32(config.scaling), hint="lora.scale")

    classifier = set()
    if config.train_classifier:
        classifier = {p for p in graph.trainable
                      if meta.get(p, {}).get("classifier")}

    for weight in targets:
        in_dim, out_dim = graph.spec(weight).shape
        a_init = (rng.standard_normal((in_dim, config.rank))
                  / np.sqrt(in_dim)).astype(np.float32)
        a_name = b.initializer(f"{weight}.lora_a", a_init, trainable=True)
        b_name = b.initializer(f"{weight}.lora_b",
                               np.zeros((config.rank, out_dim), np.float32),
                               trainable=True)
        meta[a_name] = {"role": "lora", "trainable": True}
        meta[b_name] = {"role": "lora", "trainable": True}
        adapters[weight] = {"a": a_name, "b": b_name,
                            "scale": config.scaling}

        for node in [n for n in list(graph.nodes)
                     if n.op_type == "matmul" and weight in n.inputs]:
            out = node.outputs[0]
            low = b.matmul(node.inputs[0], a_name)
            up = b.matmul(low, b_name)
            scaled = b.mul(up, scale_const)
            patched = b.add(out, scaled)
            patch_node = graph.nodes[-1]  # the add just emitted
            adapter_nodes = {patch_node.name}
            for other in graph.nodes:
                if other is node or other.name in adapter_nodes:
                    continue
                if out in other.inputs and patched not in other.outputs \
                        and other.outputs[0] not in (low, up, scaled):
                    other.inputs = tuple(
                        patched if i == out else i for i in other.inputs)
            graph.outputs = [patched if o == out else o
                             for o in graph.outputs]

    # Freeze everything but the adapters (+ optionally the classifier).
    keep = set(adapters_param_names(adapters)) | classifier
    for param in list(graph.trainable):
        if param not in keep:
            graph.trainable.discard(param)
            if param in meta:
                meta[param] = {**meta[param], "trainable": False}

    graph.metadata[LORA_KEY] = adapters
    graph.nodes = graph.topological_order()
    return graph


def adapters_param_names(adapters: dict[str, dict]) -> list[str]:
    names: list[str] = []
    for entry in adapters.values():
        names.extend([entry["a"], entry["b"]])
    return names


def lora_scheme(graph: Graph, name: str = "lora") -> UpdateScheme:
    """Scheme updating exactly the injected adapters (+ classifier if it
    stayed trainable)."""
    if LORA_KEY not in graph.metadata:
        raise SchemeError("graph has no LoRA adapters; call inject_lora")
    return UpdateScheme(name, {p: 1.0 for p in sorted(graph.trainable)})


def merge_lora(graph: Graph) -> Graph:
    """Fold trained adapters back into the base weights.

    Returns a clone computing ``W' = W + scale · A B`` with the adapter
    subgraphs removed — byte-identical structure to the pre-LoRA forward,
    ready for deployment (and for Winograd/QKV-style frozen-weight
    optimizations, since nothing trains anymore).
    """
    adapters: dict[str, dict] = graph.metadata.get(LORA_KEY, {})
    if not adapters:
        raise SchemeError("graph has no LoRA adapters to merge")
    graph = graph.clone()

    rename: dict[str, str] = {}
    drop_nodes: set[str] = set()
    producers = graph.producer_map()
    consumers = graph.consumer_map()
    for weight, entry in adapters.items():
        a = graph.initializers[entry["a"]]
        bmat = graph.initializers[entry["b"]]
        merged = graph.initializers[weight] + entry["scale"] * (a @ bmat)
        graph.initializers[weight] = merged.astype(
            graph.initializers[weight].dtype)
        # Each adapted matmul output feeds one patch add: reroute the
        # add's consumers back to the matmul output, drop the adapter
        # chain (DCE removes A/B and the scale constant).
        for node in [n for n in graph.nodes
                     if n.op_type == "matmul" and weight in n.inputs]:
            out = node.outputs[0]
            adds = [n for n in consumers.get(out, [])
                    if n.op_type == "add"]
            for patch in adds:
                other = [i for i in patch.inputs if i != out]
                if len(other) != 1:
                    continue
                producer = producers.get(other[0])
                if producer is None or producer.op_type != "mul":
                    continue
                rename[patch.outputs[0]] = out
                drop_nodes.add(patch.name)

    graph.nodes = [n for n in graph.nodes if n.name not in drop_nodes]
    for node in graph.nodes:
        node.inputs = tuple(rename.get(i, i) for i in node.inputs)
    graph.outputs = [rename.get(o, o) for o in graph.outputs]
    graph.metadata.pop(LORA_KEY)
    graph.dead_code_elimination()
    graph._drop_orphan_values()
    return graph
