"""Backward-graph pruning: turn a scheme into measured savings.

Two equivalent routes exist, mirroring the paper's narrative:

1. :func:`repro.runtime.compiler.compile_training` passes the scheme to
   autodiff so the pruned backward is *constructed* directly (the fast
   path used everywhere).
2. :func:`prune_training_graph` takes an already-built **full** training
   graph and removes the optimizer applications outside the scheme, then
   dead-code-eliminates everything that fed only them — exactly the
   "graph pruning + DCE" mechanism in paper §3.1. Tests assert both routes
   produce identical surviving gradients.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SchemeError
from ..ir import Graph
from ..ir.ops import get_schema
from .scheme import ResolvedScheme, UpdateScheme


@dataclass
class PruneReport:
    """What pruning removed."""

    nodes_before: int
    nodes_after: int
    applies_removed: int

    @property
    def nodes_removed(self) -> int:
        return self.nodes_before - self.nodes_after


def prune_training_graph(graph: Graph,
                         scheme: UpdateScheme | ResolvedScheme) -> PruneReport:
    """Prune a full training graph down to ``scheme`` in place.

    The graph must contain one ``apply_*`` node per trainable parameter
    (i.e. a full-update training graph). Channel-sparse ratios cannot be
    realised by pruning alone and are rejected here — use the compiler
    path for those.
    """
    resolved = scheme.resolve(graph) if isinstance(scheme, UpdateScheme) \
        else scheme
    if resolved.slice_k:
        raise SchemeError(
            "prune_training_graph cannot realise channel-sparse ratios; "
            "pass the scheme to compile_training instead"
        )
    keep = set(resolved.updates)
    before = len(graph.nodes)
    removed_applies = 0
    dropped_outputs: set[str] = set()
    survivors = []
    for node in graph.nodes:
        if get_schema(node.op_type).inplace and node.inputs[0] not in keep:
            removed_applies += 1
            dropped_outputs.update(node.outputs)
            continue
        survivors.append(node)
    graph.nodes = survivors
    graph.outputs = [o for o in graph.outputs if o not in dropped_outputs]
    graph.dead_code_elimination()
    return PruneReport(
        nodes_before=before,
        nodes_after=len(graph.nodes),
        applies_removed=removed_applies,
    )


def backward_op_count(graph: Graph) -> int:
    """Number of backward/optimizer nodes in a training graph.

    Diagnostic for the paper's "backpropagation stops here" figure: forward
    nodes are those the model outputs depend on; everything else is the
    backward slice, which shrinks as the scheme freezes deeper layers.
    """
    model_outputs = [
        o for o in graph.outputs
        if not any(o in node.outputs for node in graph.nodes
                   if get_schema(node.op_type).inplace)
    ]
    producers = graph.producer_map()
    # Forward slice: ancestors of the non-loss model outputs, approximated
    # by the ancestry of every graph input's consumers up to the outputs.
    forward: set[str] = set()
    stack = [o for o in model_outputs if o in producers]
    seen: set[str] = set()
    while stack:
        value = stack.pop()
        if value in seen:
            continue
        seen.add(value)
        node = producers.get(value)
        if node is None:
            continue
        forward.add(node.name)
        stack.extend(node.inputs)
    return len(graph.nodes) - len(forward)
