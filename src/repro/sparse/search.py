"""Evolutionary search for the sparse-update scheme (paper Eq. 1).

Maximise the summed accuracy contribution of the selected tensors subject
to a memory constraint::

    max  sum(dacc_bias[k] for k in biases) + sum(dacc_W[i, r_i])
    s.t. Memory(selection) <= budget

Contributions are assumed additive (the paper's simplification), so a
genome is just one choice per candidate tensor: a ratio from its option
list for weights, on/off for biases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import SchemeError
from ..ir import Graph
from .cost_model import scheme_memory_cost
from .scheme import UpdateScheme
from .sensitivity import SensitivityResult


@dataclass
class SearchSpace:
    """Candidate tensors and their allowed update ratios."""

    #: weight name -> ratios to choose from (0 means frozen)
    weight_options: dict[str, tuple[float, ...]]
    #: bias/norm names that may toggle on
    bias_candidates: tuple[str, ...] = ()
    #: tensors always updated (e.g. the classifier head)
    always: tuple[str, ...] = ()


@dataclass
class SearchResult:
    scheme: UpdateScheme
    fitness: float
    memory_bytes: int
    history: list[float] = field(default_factory=list)


def evolutionary_search(
    graph: Graph,
    space: SearchSpace,
    sensitivity: SensitivityResult,
    memory_budget_bytes: int,
    optimizer: str = "sgd",
    population: int = 64,
    generations: int = 40,
    mutation_rate: float = 0.15,
    seed: int = 0,
    bias_contribution: Callable[[str], float] | None = None,
) -> SearchResult:
    """Run the evolutionary search and return the best feasible scheme.

    Infeasible genomes are penalised proportionally to their memory excess
    rather than discarded, which keeps the population exploring near the
    constraint boundary.
    """
    rng = np.random.default_rng(seed)
    weights = list(space.weight_options)
    biases = list(space.bias_candidates)
    if not weights and not biases:
        raise SchemeError("empty search space")

    def bias_gain(name: str) -> float:
        if bias_contribution is not None:
            return bias_contribution(name)
        return sensitivity.contribution(name, 1.0)

    def random_genome() -> tuple:
        w = tuple(
            space.weight_options[name][
                rng.integers(len(space.weight_options[name]))]
            for name in weights
        )
        b = tuple(bool(rng.integers(2)) for _ in biases)
        return w, b

    def to_scheme(genome: tuple, name: str = "evolved") -> UpdateScheme:
        w, b = genome
        updates = {p: 1.0 for p in space.always}
        for param, ratio in zip(weights, w):
            if ratio > 0:
                updates[param] = float(ratio)
        for param, on in zip(biases, b):
            if on:
                updates[param] = 1.0
        return UpdateScheme(name, updates)

    def fitness(genome: tuple) -> tuple[float, int]:
        w, b = genome
        gain = sum(
            sensitivity.contribution(param, ratio)
            for param, ratio in zip(weights, w) if ratio > 0
        )
        gain += sum(
            bias_gain(param) for param, on in zip(biases, b) if on
        )
        cost = scheme_memory_cost(graph, to_scheme(genome),
                                  optimizer=optimizer).total_bytes
        if cost > memory_budget_bytes:
            excess = (cost - memory_budget_bytes) / max(memory_budget_bytes, 1)
            gain -= 10.0 * excess  # heavy but smooth penalty
        return gain, cost

    def mutate(genome: tuple) -> tuple:
        w, b = list(genome[0]), list(genome[1])
        for i, name in enumerate(weights):
            if rng.random() < mutation_rate:
                options = space.weight_options[name]
                w[i] = options[rng.integers(len(options))]
        for i in range(len(b)):
            if rng.random() < mutation_rate:
                b[i] = not b[i]
        return tuple(w), tuple(b)

    def crossover(a: tuple, b: tuple) -> tuple:
        wa, ba = a
        wb, bb = b
        w = tuple(wa[i] if rng.random() < 0.5 else wb[i]
                  for i in range(len(wa)))
        bc = tuple(ba[i] if rng.random() < 0.5 else bb[i]
                   for i in range(len(ba)))
        return w, bc

    pop = [random_genome() for _ in range(population)]
    scored = [(fitness(g), g) for g in pop]
    history: list[float] = []
    for _ in range(generations):
        scored.sort(key=lambda item: -item[0][0])
        history.append(scored[0][0][0])
        elite = [g for _, g in scored[:max(2, population // 8)]]
        children = list(elite)
        while len(children) < population:
            a = elite[rng.integers(len(elite))]
            b = scored[rng.integers(len(scored))][1]
            children.append(mutate(crossover(a, b)))
        pop = children
        scored = [(fitness(g), g) for g in pop]

    scored.sort(key=lambda item: -item[0][0])
    (best_fitness, best_cost), best = scored[0]
    return SearchResult(
        scheme=to_scheme(best),
        fitness=best_fitness,
        memory_bytes=best_cost,
        history=history,
    )
