"""Per-tensor contribution analysis (paper §3.1).

Following the paper: fine-tune only one tensor (plus the classifier) until
(near-)convergence, record the accuracy delta versus a frozen baseline, and
repeat for every candidate tensor. The resulting "contribution" table feeds
the evolutionary scheme search, under the paper's assumption that
contributions are additive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..ir import Graph
from .scheme import UpdateScheme

#: evaluate(scheme) -> downstream accuracy after a short fine-tune
EvaluateFn = Callable[[UpdateScheme], float]


@dataclass
class SensitivityResult:
    """Accuracy contribution per candidate, relative to the frozen baseline."""

    baseline_accuracy: float
    #: (param name, ratio) -> accuracy delta
    contributions: dict[tuple[str, float], float] = field(default_factory=dict)

    def contribution(self, param: str, ratio: float = 1.0) -> float:
        key = (param, ratio)
        if key in self.contributions:
            return self.contributions[key]
        # Interpolate between measured ratios if an exact one is missing.
        measured = sorted(
            (r, delta) for (p, r), delta in self.contributions.items()
            if p == param
        )
        if not measured:
            return 0.0
        lower = [(r, d) for r, d in measured if r <= ratio]
        upper = [(r, d) for r, d in measured if r >= ratio]
        if lower and upper:
            (r0, d0), (r1, d1) = lower[-1], upper[0]
            if r1 == r0:
                return d0
            t = (ratio - r0) / (r1 - r0)
            return d0 + t * (d1 - d0)
        return measured[-1][1] if lower else measured[0][1]

    def top(self, k: int = 10) -> list[tuple[str, float, float]]:
        ranked = sorted(self.contributions.items(), key=lambda kv: -kv[1])
        return [(p, r, d) for (p, r), d in ranked[:k]]


def analyze_sensitivity(
    graph: Graph,
    candidates: list[str],
    evaluate: EvaluateFn,
    ratios: tuple[float, ...] = (1.0,),
    baseline_scheme: UpdateScheme | None = None,
) -> SensitivityResult:
    """Measure each candidate tensor's accuracy contribution.

    Args:
        graph: forward graph (used only for validation inside ``resolve``).
        candidates: parameter names to probe (typically conv/linear weights).
        evaluate: runs a short fine-tune with the given scheme and returns
            downstream accuracy. The caller owns data/model/seeds.
        ratios: channel ratios to probe per weight (paper probes the full
            tensor and fractional updates for MCU-scale models).
        baseline_scheme: what "frozen" means — defaults to classifier-only
            (an empty scheme is usually degenerate for transfer learning).
    """
    if baseline_scheme is None:
        baseline_scheme = UpdateScheme("baseline", {})
    baseline = evaluate(baseline_scheme)
    result = SensitivityResult(baseline_accuracy=baseline)
    for param in candidates:
        for ratio in ratios:
            probe = UpdateScheme(
                f"probe:{param}@{ratio}",
                {**baseline_scheme.updates, param: ratio},
            )
            probe.resolve(graph)  # validate before paying for training
            acc = evaluate(probe)
            result.contributions[(param, ratio)] = acc - baseline
    return result
