"""Sparse-update schemes: which tensors train, and how much of each.

A scheme maps parameter names to an update ratio:

* ``1.0`` — full update of the tensor,
* ``0 < r < 1`` — sub-layer (channel-sparse) update: only the first
  ``k = round(r * in_channels)`` input channels of the weight are updated,
  which also means only that slice of the input activation must be saved
  for backward (paper §2.6, Figure 3),
* absent — frozen.

Bias/norm tensors only support ratio 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SchemeError
from ..ir import Graph


@dataclass
class UpdateScheme:
    """User-facing scheme: parameter name -> update ratio."""

    name: str
    updates: dict[str, float] = field(default_factory=dict)

    def resolve(self, graph: Graph) -> "ResolvedScheme":
        """Validate against ``graph`` and compute channel-slice geometry."""
        slice_k: dict[str, int] = {}
        slice_axis: dict[str, int] = {}
        for param, ratio in self.updates.items():
            if param not in graph.initializers:
                raise SchemeError(
                    f"scheme {self.name!r} references unknown parameter "
                    f"{param!r}"
                )
            if param not in graph.trainable:
                raise SchemeError(
                    f"scheme {self.name!r} updates non-trainable tensor "
                    f"{param!r}"
                )
            if not (0.0 < ratio <= 1.0):
                raise SchemeError(
                    f"scheme {self.name!r}: ratio for {param!r} must be in "
                    f"(0, 1], got {ratio}"
                )
            if ratio >= 1.0:
                continue
            shape = graph.spec(param).shape
            if len(shape) == 2:       # linear weight [in, out]
                axis, channels = 0, shape[0]
            elif len(shape) == 4:     # conv weight [out, in, kh, kw]
                axis, channels = 1, shape[1]
            else:
                raise SchemeError(
                    f"channel-sparse ratio on {param!r} requires a 2-D or "
                    f"4-D weight, got shape {shape}"
                )
            k = max(1, int(round(ratio * channels)))
            if k >= channels:
                continue  # rounds up to a full update
            slice_k[param] = k
            slice_axis[param] = axis
        return ResolvedScheme(
            name=self.name,
            updates=dict(self.updates),
            slice_k=slice_k,
            slice_axis=slice_axis,
        )

    def __len__(self) -> int:
        return len(self.updates)


@dataclass
class ResolvedScheme:
    """A scheme validated against a concrete graph."""

    name: str
    updates: dict[str, float]
    slice_k: dict[str, int]
    slice_axis: dict[str, int]

    @property
    def params(self) -> list[str]:
        return list(self.updates)


# ---------------------------------------------------------------------------
# Scheme constructors
# ---------------------------------------------------------------------------

def full_update(graph: Graph, name: str = "full") -> UpdateScheme:
    """Conventional full backpropagation: every trainable tensor updates."""
    return UpdateScheme(name, {p: 1.0 for p in sorted(graph.trainable)})


def bias_only(graph: Graph, include_classifier: bool = True,
              name: str = "bias_only") -> UpdateScheme:
    """Update biases (and optionally the classifier head) only.

    Bias-only updates need no saved activations at all (paper §2.6), which
    is the strongest memory reduction short of freezing everything.
    """
    meta = graph.metadata.get("params", {})
    updates: dict[str, float] = {}
    classifier = _classifier_params(graph) if include_classifier else set()
    for param in sorted(graph.trainable):
        role = meta.get(param, {}).get("role", "weight")
        if role in ("bias", "norm_scale", "norm_shift") or param in classifier:
            updates[param] = 1.0
    if not updates:
        raise SchemeError("model has no bias/norm tensors for bias_only")
    return UpdateScheme(name, updates)


def by_predicate(graph: Graph, predicate, name: str = "custom",
                 ratios: dict[str, float] | None = None) -> UpdateScheme:
    """Build a scheme from ``predicate(param_name, param_meta) -> bool``.

    ``ratios`` optionally overrides the ratio for specific parameters.
    """
    meta = graph.metadata.get("params", {})
    ratios = ratios or {}
    updates = {
        param: float(ratios.get(param, 1.0))
        for param in sorted(graph.trainable)
        if predicate(param, meta.get(param, {}))
    }
    if not updates:
        raise SchemeError(f"scheme {name!r} selected no parameters")
    return UpdateScheme(name, updates)


def last_blocks(graph: Graph, k: int, total: int | None = None,
                weights: bool = True, biases: bool = True,
                weight_pred=None, name: str | None = None,
                ratios: dict[str, float] | None = None) -> UpdateScheme:
    """Scheme updating the last ``k`` blocks (by ``block`` metadata tag).

    ``weight_pred(meta) -> bool`` further narrows which weights inside the
    selected blocks update (e.g. only the first pointwise conv).
    """
    meta = graph.metadata.get("params", {})
    blocks = sorted({
        m["block"] for m in meta.values() if "block" in m
    })
    if not blocks:
        raise SchemeError("graph has no 'block' metadata tags")
    if total is None:
        total = len(blocks)
    selected = set(blocks[-k:]) if k > 0 else set()

    def predicate(param: str, m: dict) -> bool:
        if m.get("block") not in selected:
            return False
        role = m.get("role", "weight")
        if role in ("bias", "norm_scale", "norm_shift"):
            return biases
        if not weights:
            return False
        if weight_pred is not None and not weight_pred(m):
            return False
        return True

    scheme = by_predicate(
        graph, predicate,
        name=name or f"last{k}of{total}", ratios=ratios)
    # Classifier head always trains (standard transfer-learning practice).
    for param in _classifier_params(graph):
        scheme.updates.setdefault(param, 1.0)
    return scheme


def _classifier_params(graph: Graph) -> set[str]:
    """Parameters tagged as the classifier/readout head."""
    meta = graph.metadata.get("params", {})
    return {
        p for p, m in meta.items()
        if m.get("role_in_block") == "classifier" or m.get("classifier")
    }
