"""Analytical training-cost model for scheme search (paper Eq. 1 constraint).

The evolutionary search evaluates thousands of candidate schemes; compiling
each one would be too slow, so this module estimates the scheme-dependent
memory terms directly from the forward graph:

* saved activations: each updated weight requires its consumer's input
  activation (scaled by the channel ratio) to survive until backward,
* gradient buffers and optimizer state for every updated tensor.

The estimate intentionally tracks *scheme-dependent* memory only; tests
check it is monotone and consistent with the exact profiler's ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import Graph
from .scheme import ResolvedScheme, UpdateScheme

#: extra state slots per parameter for each optimizer family
OPTIMIZER_STATE_SLOTS = {"sgd": 0.0, "momentum": 1.0, "lion": 1.0, "adam": 2.0}


@dataclass
class SchemeCost:
    """Scheme-dependent memory components, in bytes."""

    saved_activation_bytes: int
    gradient_bytes: int
    optimizer_state_bytes: int

    @property
    def total_bytes(self) -> int:
        return (self.saved_activation_bytes + self.gradient_bytes
                + self.optimizer_state_bytes)


def scheme_memory_cost(graph: Graph, scheme: UpdateScheme | ResolvedScheme,
                       optimizer: str = "sgd") -> SchemeCost:
    """Estimate the scheme-dependent training memory on ``graph`` (forward).

    Args:
        graph: the *forward* graph (pre-autodiff).
        scheme: the candidate update scheme.
        optimizer: one of ``sgd``, ``momentum``, ``lion``, ``adam``.
    """
    resolved = scheme.resolve(graph) if isinstance(scheme, UpdateScheme) \
        else scheme
    slots = OPTIMIZER_STATE_SLOTS[optimizer]
    consumers = graph.consumer_map()

    saved = 0
    grads = 0
    state = 0
    for param, ratio in resolved.updates.items():
        spec = graph.spec(param)
        is_weight = len(spec.shape) >= 2
        grad_elems = spec.num_elements * (ratio if is_weight else 1.0)
        grad_bytes = int(grad_elems) * spec.dtype.itemsize
        grads += grad_bytes
        state += int(slots * grad_bytes)
        if not is_weight:
            continue  # bias/norm gradients need no saved activation
        for node in consumers.get(param, ()):
            if node.op_type not in ("matmul", "conv2d"):
                continue
            act = graph.spec(node.inputs[0])
            saved += int(act.nbytes * ratio)
    return SchemeCost(
        saved_activation_bytes=saved,
        gradient_bytes=grads,
        optimizer_state_bytes=state,
    )


def scheme_backward_flops(graph: Graph,
                          scheme: UpdateScheme | ResolvedScheme) -> int:
    """Estimate backward-pass FLOPs under ``scheme``.

    dW costs ≈ forward FLOPs of the consumer op (scaled by ratio); dX chains
    cost ≈ forward FLOPs of every op from the earliest updated tensor to the
    loss. Used by the search's optional latency constraint.
    """
    from ..ir.ops import op_flops

    resolved = scheme.resolve(graph) if isinstance(scheme, UpdateScheme) \
        else scheme
    updated = set(resolved.updates)
    order = graph.topological_order()

    # Values that (transitively) depend on an updated parameter need dX.
    tainted: set[str] = set(updated)
    dw_flops = 0
    dx_flops = 0
    for node in order:
        in_specs = [graph.spec(i) for i in node.inputs]
        out_specs = [graph.spec(o) for o in node.outputs]
        fwd = op_flops(node.op_type, in_specs, out_specs, node.attrs)
        touched = any(i in tainted for i in node.inputs)
        if touched:
            tainted.update(node.outputs)
            dx_flops += fwd
        for inp in node.inputs:
            if inp in updated and node.op_type in ("matmul", "conv2d"):
                ratio = resolved.updates.get(inp, 1.0)
                dw_flops += int(fwd * ratio)
    return dw_flops + dx_flops
