"""Synthetic datasets standing in for the paper's downstream suites."""

from .instruct import (Tokenizer, build_corpus, build_tokenizer, encode_pair,
                       instruction_batches)
from .synthetic import (TaskData, TextTaskSpec, VisionTaskSpec,
                        make_text_task, make_vision_task)
from .tasks import (TEXT_SOURCE, TEXT_TASKS, VISION_SOURCE, VISION_TASKS,
                    text_source, text_task, vision_source, vision_task)

__all__ = [
    "TEXT_SOURCE",
    "TEXT_TASKS",
    "TaskData",
    "TextTaskSpec",
    "Tokenizer",
    "VISION_SOURCE",
    "VISION_TASKS",
    "VisionTaskSpec",
    "build_corpus",
    "build_tokenizer",
    "encode_pair",
    "instruction_batches",
    "make_text_task",
    "make_vision_task",
    "text_source",
    "text_task",
    "vision_source",
    "vision_task",
]
