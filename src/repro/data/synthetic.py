"""Synthetic transfer-learning tasks (DESIGN.md §2 substitution).

The paper fine-tunes ImageNet/BookCorpus-pretrained backbones on real
downstream datasets; offline we need tasks that (a) exercise the identical
compiled-training code path and (b) preserve the *relative* ordering
Full-BP ≈ Sparse-BP > Bias-only. Each named dataset is a generator with:

* class prototypes in input space (what pretraining features captured),
* a dataset-specific **domain shift** — a random channel-mixing and spatial
  warp of the prototypes — which bias-only updates cannot fully absorb
  (they can only translate features, not re-mix them),
* Gaussian pixel noise controlling difficulty.

Language tasks are class-conditioned unigram sequences with a vocabulary
permutation as the shift.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TaskData:
    """A train/test split."""

    name: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    num_classes: int

    def batches(self, batch_size: int, rng: np.random.Generator,
                steps: int):
        """Yield ``steps`` random training batches."""
        n = len(self.x_train)
        for _ in range(steps):
            idx = rng.integers(0, n, batch_size)
            yield self.x_train[idx], self.y_train[idx]


@dataclass(frozen=True)
class VisionTaskSpec:
    """Recipe for one synthetic vision dataset."""

    name: str
    num_classes: int
    noise: float          # pixel noise std
    shift: float          # domain-shift strength (0 = source domain)
    seed: int


@dataclass(frozen=True)
class TextTaskSpec:
    """Recipe for one synthetic sequence-classification dataset."""

    name: str
    num_classes: int
    noise: float          # probability a token is drawn off-topic
    shift: float          # fraction of the vocabulary permuted
    seed: int


def make_vision_task(spec: VisionTaskSpec, resolution: int = 16,
                     channels: int = 3, n_train: int = 192,
                     n_test: int = 96, n_source_classes: int = 10) -> TaskData:
    """Generate a vision dataset per ``spec``.

    The source domain (shift = 0) uses a fixed bank of class prototypes.
    Downstream tasks define *new* classes as mixtures of the source
    prototypes plus a ``shift``-weighted fresh component: the mixture part
    is reachable by re-weighting pre-trained features (classifier/late
    blocks — what sparse-BP updates), while the fresh component requires
    genuine feature adaptation, which bias-only updates lack the capacity
    for. This mirrors the semantic (not pixel-space) shift of the paper's
    downstream suites.
    """
    proto_rng = np.random.default_rng(1234)  # shared across all tasks
    source = proto_rng.standard_normal(
        (n_source_classes, channels, resolution, resolution)
    ).astype(np.float32)

    rng = np.random.default_rng(spec.seed)
    if spec.shift == 0:
        protos = source[:spec.num_classes]
    else:
        combo = rng.dirichlet(np.ones(n_source_classes) * 0.4,
                              size=spec.num_classes).astype(np.float32)
        mixed = np.tensordot(combo, source, axes=(1, 0))
        fresh = rng.standard_normal(mixed.shape).astype(np.float32)
        protos = ((1.0 - spec.shift) * mixed * 2.0
                  + spec.shift * fresh).astype(np.float32)

    def sample(n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
        local = np.random.default_rng(seed)
        y = local.integers(0, spec.num_classes, n)
        x = protos[y] + spec.noise * local.standard_normal(protos[y].shape)
        return x.astype(np.float32), y.astype(np.int64)

    x_train, y_train = sample(n_train, spec.seed + 1)
    x_test, y_test = sample(n_test, spec.seed + 2)
    return TaskData(spec.name, x_train, y_train, x_test, y_test,
                    spec.num_classes)


def make_text_task(spec: TextTaskSpec, vocab_size: int = 256,
                   seq_len: int = 16, n_train: int = 192,
                   n_test: int = 96) -> TaskData:
    """Generate a sequence-classification dataset per ``spec``.

    Each class owns a topic-token set; sequences mix topic tokens with
    off-topic noise. The shift permutes part of the vocabulary, so the
    embedding/attention layers must adapt.
    """
    topic_rng = np.random.default_rng(4321)  # shared topic structure
    tokens_per_class = max(4, vocab_size // (4 * spec.num_classes))
    topics = [
        topic_rng.choice(vocab_size, tokens_per_class, replace=False)
        for _ in range(spec.num_classes)
    ]

    rng = np.random.default_rng(spec.seed)
    perm = np.arange(vocab_size)
    n_shift = int(spec.shift * vocab_size)
    if n_shift > 1:
        moved = rng.choice(vocab_size, n_shift, replace=False)
        perm[moved] = perm[np.roll(moved, 1)]

    def sample(n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
        local = np.random.default_rng(seed)
        y = local.integers(0, spec.num_classes, n)
        ids = np.empty((n, seq_len), dtype=np.int64)
        for i, label in enumerate(y):
            on_topic = local.random(seq_len) >= spec.noise
            ids[i] = np.where(
                on_topic,
                local.choice(topics[label], seq_len),
                local.integers(0, vocab_size, seq_len),
            )
        return perm[ids].astype(np.int64), y.astype(np.int64)

    x_train, y_train = sample(n_train, spec.seed + 1)
    x_test, y_test = sample(n_test, spec.seed + 2)
    return TaskData(spec.name, x_train, y_train, x_test, y_test,
                    spec.num_classes)
