"""A tiny built-in instruction-tuning corpus (Alpaca stand-in).

The paper fine-tunes LlamaV2-7B on 52K Alpaca records; offline we ship a
deterministic template-generated corpus over a small vocabulary, enough to
measurably drop held-out perplexity when llama_micro fine-tunes on it and
to compare Full-BP vs Sparse-BP quality (Table 5's loss column proxy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_SUBJECTS = ["the cat", "a robot", "the chef", "my friend", "the bird"]
_VERBS = ["likes", "makes", "sees", "finds", "wants"]
_OBJECTS = ["apples", "music", "books", "rain", "tea"]

_TEMPLATES = [
    ("what does {s} {v} ?", "{s} {v} {o} ."),
    ("tell me about {s} .", "{s} {v} {o} every day ."),
    ("does {s} {v} {o} ?", "yes , {s} {v} {o} ."),
    ("describe {o} .", "{o} are what {s} {v} ."),
]

BOS, EOS, PAD, SEP = "<bos>", "<eos>", "<pad>", "<sep>"


@dataclass
class Tokenizer:
    """Word-level tokenizer over the corpus vocabulary."""

    vocab: dict[str, int]

    @property
    def inverse(self) -> dict[int, str]:
        return {i: w for w, i in self.vocab.items()}

    def encode(self, text: str) -> list[int]:
        return [self.vocab[w] for w in text.split() if w in self.vocab]

    def decode(self, ids) -> str:
        inv = self.inverse
        return " ".join(inv.get(int(i), "?") for i in ids)

    def __len__(self) -> int:
        return len(self.vocab)


def build_corpus() -> list[tuple[str, str]]:
    """All (instruction, response) pairs — deterministic, 100 records."""
    pairs = []
    for template_q, template_a in _TEMPLATES:
        for s in _SUBJECTS:
            for v, o in zip(_VERBS, _OBJECTS):
                pairs.append((
                    template_q.format(s=s, v=v, o=o),
                    template_a.format(s=s, v=v, o=o),
                ))
    return pairs


def build_tokenizer(pairs: list[tuple[str, str]]) -> Tokenizer:
    words = sorted({w for q, a in pairs for w in (q + " " + a).split()})
    vocab = {PAD: 0, BOS: 1, EOS: 2, SEP: 3}
    for w in words:
        vocab[w] = len(vocab)
    return Tokenizer(vocab)


def encode_pair(tok: Tokenizer, question: str, answer: str,
                seq_len: int) -> np.ndarray:
    """``<bos> q <sep> a <eos>`` padded/truncated to ``seq_len + 1``."""
    ids = ([tok.vocab[BOS]] + tok.encode(question) + [tok.vocab[SEP]]
           + tok.encode(answer) + [tok.vocab[EOS]])
    ids = ids[:seq_len + 1]
    ids += [tok.vocab[PAD]] * (seq_len + 1 - len(ids))
    return np.asarray(ids, dtype=np.int64)


def instruction_batches(seq_len: int, batch_size: int, steps: int,
                        seed: int = 0, holdout: int = 12):
    """Yield ``(inputs, targets)`` causal-LM batches from the train split.

    Returns the generator plus (held-out inputs, held-out targets) for
    perplexity evaluation.
    """
    pairs = build_corpus()
    tok = build_tokenizer(pairs)
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(pairs))
    test_idx, train_idx = order[:holdout], order[holdout:]
    encoded = np.stack([encode_pair(tok, q, a, seq_len) for q, a in pairs])

    def generator():
        for _ in range(steps):
            pick = rng.choice(train_idx, batch_size)
            rows = encoded[pick]
            yield rows[:, :-1], rows[:, 1:]

    test_rows = encoded[test_idx]
    return tok, generator(), (test_rows[:, :-1], test_rows[:, 1:])
