"""Named downstream tasks mirroring the paper's evaluation suites.

Vision (paper Table 2): Cars, CIFAR, CUB, Flowers, Foods, Pets, VWW.
Language (paper Table 3): CoLA, MNLI, MRPC, QNLI, QQP, RTE, SST-2.

Specs vary class count, noise, and shift so the accuracy spread across
datasets resembles the paper's (harder fine-grained sets, easier binary
ones). The *source* task (shift = 0) is what backbones pre-train on.
"""

from __future__ import annotations

from .synthetic import (TaskData, TextTaskSpec, VisionTaskSpec,
                        make_text_task, make_vision_task)

VISION_SOURCE = VisionTaskSpec("imagenet_source", 10, noise=0.55, shift=0.0,
                               seed=7)

VISION_TASKS: dict[str, VisionTaskSpec] = {
    spec.name: spec
    for spec in [
        VisionTaskSpec("cars", 8, noise=0.55, shift=0.30, seed=11),
        VisionTaskSpec("cifar", 10, noise=0.45, shift=0.22, seed=12),
        VisionTaskSpec("cub", 8, noise=0.60, shift=0.32, seed=13),
        VisionTaskSpec("flowers", 8, noise=0.40, shift=0.20, seed=14),
        VisionTaskSpec("foods", 8, noise=0.55, shift=0.28, seed=15),
        VisionTaskSpec("pets", 6, noise=0.45, shift=0.25, seed=16),
        VisionTaskSpec("vww", 2, noise=0.60, shift=0.20, seed=17),
    ]
}

TEXT_SOURCE = TextTaskSpec("books_source", 4, noise=0.30, shift=0.0, seed=21)

TEXT_TASKS: dict[str, TextTaskSpec] = {
    spec.name: spec
    for spec in [
        TextTaskSpec("cola", 2, noise=0.55, shift=0.40, seed=31),
        TextTaskSpec("mnli", 3, noise=0.45, shift=0.35, seed=32),
        TextTaskSpec("mrpc", 2, noise=0.50, shift=0.30, seed=33),
        TextTaskSpec("qnli", 2, noise=0.40, shift=0.30, seed=34),
        TextTaskSpec("qqp", 2, noise=0.40, shift=0.25, seed=35),
        TextTaskSpec("rte", 2, noise=0.60, shift=0.45, seed=36),
        TextTaskSpec("sst2", 2, noise=0.35, shift=0.25, seed=37),
    ]
}


def vision_task(name: str, **kwargs) -> TaskData:
    return make_vision_task(VISION_TASKS[name], **kwargs)


def text_task(name: str, **kwargs) -> TaskData:
    return make_text_task(TEXT_TASKS[name], **kwargs)


def vision_source(**kwargs) -> TaskData:
    return make_vision_task(VISION_SOURCE, **kwargs)


def text_source(**kwargs) -> TaskData:
    return make_text_task(TEXT_SOURCE, **kwargs)
