"""Exception hierarchy for the PockEngine reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch engine failures without accidentally swallowing programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ShapeError(ReproError):
    """An operator received inputs whose shapes are incompatible."""


class GraphError(ReproError):
    """A graph is structurally invalid (dangling refs, duplicate names, ...)."""


class CompileError(ReproError):
    """The compilation pipeline could not produce a program."""


class AutodiffError(ReproError):
    """No gradient rule exists, or differentiation failed."""


class SchemeError(ReproError):
    """A sparse-update scheme references unknown tensors or is malformed."""


class MemoryPlanError(ReproError):
    """Memory planning failed (overlapping lifetimes, over-capacity, ...)."""


class ExecutionError(ReproError):
    """The runtime executor failed while running a compiled program."""


class PlanVersionError(ExecutionError):
    """A serialized execution plan speaks a version this runtime does not.

    Distinct from a garbled plan: the artifact may be perfectly valid for
    another runtime build. Callers holding the graph (the program cache)
    catch this and fall back to re-lowering/recompiling.
    """


class PlanVerifyError(ExecutionError):
    """The static plan verifier rejected an execution plan.

    Raised by :mod:`repro.analysis.planlint` when a :class:`~repro.runtime.
    plan.PlanSpec` fails a structural proof (def-before-use, free-list
    safety, donation aliasing, byte accounting, ...). Distinct from
    :class:`PlanVersionError`: the plan speaks our version but describes a
    stream that would corrupt state if executed. The program cache
    quarantines artifacts that raise this, exactly like corrupt ones.
    """


class DeviceError(ReproError):
    """An unknown device was requested or a cost model query is invalid."""


class ServeError(ReproError):
    """The fine-tuning service was misused (unknown session, closed, ...)."""


class CheckpointError(ServeError):
    """A session checkpoint is unreadable (corrupt, truncated, or a
    version this runtime does not speak).

    Distinct from ``ServeError`` so restore paths can quarantine the bad
    file and fall back to an earlier checkpoint version instead of
    failing the request outright.
    """


class DeadlineExpired(ServeError):
    """A request's end-to-end deadline passed before the work ran.

    Raised *instead of* doing the work: the serving layer sheds expired
    requests at every stage (gateway admission, scheduler cut, service
    submit) so a saturated queue stops burning workers on results nobody
    is waiting for. Maps to HTTP 504 at the gateway.
    """


class FaultInjected(ReproError):
    """An armed fault point fired (test/chaos harness only).

    Never raised in production paths unless a fault was explicitly armed
    through :mod:`repro.serve.faults`.
    """
