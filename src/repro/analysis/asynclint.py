"""Concurrency lint for the serving stack: keep the event loop unblocked.

The gateway (:mod:`repro.serve.gateway`) runs every connection on one
asyncio event loop; a single synchronous ``time.sleep``, file read, or
``Future.result()`` inside an ``async def`` stalls *every* in-flight
request, not just the offending one. Nothing in the runtime catches this
— the loop just gets slow. This module makes the rule static:

* **blocking-call** — an AST pass over each module finds calls that
  block the calling thread (``time.sleep``, ``subprocess``/``os`` spawns,
  file I/O, ``socket`` syscalls, ``Lock.acquire``/``Future.result``-style
  methods that are not awaited) lexically inside an ``async def`` body or
  inside a same-module synchronous helper reachable from one. Nested
  ``def``/``lambda`` bodies are skipped — they are the standard way to
  hand blocking work to ``run_in_executor``.
* **worker-import** — the deployed step worker
  (:mod:`repro.deploy.stepworker`) guarantees a compiler-free import
  closure; today that is only probed at runtime inside a live worker.
  :func:`lint_worker_imports` proves it statically by walking the
  module-level import graph (plus the entry module's deliberate lazy
  function-level imports, which *do* execute in the worker) and failing
  if :mod:`repro.runtime.compiler` or :mod:`repro.autodiff` is reachable.

False positives are waived inline, next to the code they describe::

    time.sleep(0.2)  # repro-lint: allow[blocking-call] startup probe, not on the loop

A waiver names the rule it silences and must carry a reason; waived
findings still appear in reports but do not fail lint runs.
"""

from __future__ import annotations

import ast
import os

from .report import Finding, Report, parse_waivers

#: fully-dotted calls that always block the calling thread
BLOCKING_CALLS = {
    "time.sleep",
    "os.system",
    "os.popen",
    "os.waitpid",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "shutil.rmtree",
    "shutil.copytree",
    "socket.create_connection",
    "socket.getaddrinfo",
    "urllib.request.urlopen",
}

#: bare builtins that hit the filesystem / terminal synchronously
BLOCKING_BUILTINS = {"open", "input"}

#: method names that block unless awaited: scheduler/concurrent futures
#: (``.result()``), lock/thread/process joins, raw socket syscalls, and
#: pathlib's whole-file I/O helpers
BLOCKING_METHODS = {
    "result", "acquire", "join", "wait",
    "recv", "recv_into", "sendall", "accept", "connect",
    "read_text", "write_text", "read_bytes", "write_bytes",
}

RULE_BLOCKING = "blocking-call"
RULE_IMPORT = "worker-import"


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for an attribute chain rooted at a Name, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_str_receiver(node: ast.AST) -> bool:
    """True when a method's receiver is statically a string.

    ``"\\r\\n".join(lines)`` shares a method name with ``Thread.join`` but
    never blocks; treating literal/f-string receivers (and their
    ``.format``/``.strip``-style chains) as strings keeps those out of
    the blocking-method net.
    """
    while isinstance(node, ast.Call) \
            and isinstance(node.func, ast.Attribute):
        node = node.func.value  # "{}".format(x).join(...) etc.
    return (isinstance(node, ast.Constant) and isinstance(node.value, str)) \
        or isinstance(node, ast.JoinedStr)


class _FunctionFacts:
    """Per-function facts: blocking candidates + same-module callees."""

    def __init__(self, node: ast.AST, cls: str | None) -> None:
        self.node = node
        self.cls = cls
        self.is_async = isinstance(node, ast.AsyncFunctionDef)
        #: (lineno, description) per potentially blocking call
        self.blocking: list[tuple[int, str]] = []
        #: bare function names called (module-level resolution)
        self.calls_bare: set[str] = set()
        #: method names called on self/cls (same-class resolution)
        self.calls_self: set[str] = set()


def _scan_function(fn: ast.AST, cls: str | None,
                   awaited: set[int]) -> _FunctionFacts:
    """Collect facts from one function body, skipping nested defs."""
    facts = _FunctionFacts(fn, cls)

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue  # executor thunks / nested scopes: not this body
            if isinstance(child, ast.Call):
                _scan_call(child)
            visit(child)

    def _scan_call(call: ast.Call) -> None:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in BLOCKING_BUILTINS:
                facts.blocking.append(
                    (call.lineno, f"builtin `{func.id}()` does blocking "
                                  f"file/terminal I/O"))
            else:
                facts.calls_bare.add(func.id)
            return
        dotted = _dotted(func)
        if dotted is not None:
            if dotted in BLOCKING_CALLS:
                facts.blocking.append(
                    (call.lineno, f"`{dotted}()` blocks the calling "
                                  f"thread"))
                return
            head, _, method = dotted.rpartition(".")
            if head in ("self", "cls") and dotted.count(".") == 1:
                facts.calls_self.add(method)
        if isinstance(func, ast.Attribute) \
                and func.attr in BLOCKING_METHODS \
                and id(call) not in awaited \
                and not _is_str_receiver(func.value):
            facts.blocking.append(
                (call.lineno, f"`.{func.attr}()` is a blocking "
                              f"primitive and is not awaited"))

    visit(fn)
    return facts


def lint_module(source: str, filename: str = "<module>") -> list[Finding]:
    """Blocking-call findings for one module's source text."""
    tree = ast.parse(source, filename=filename)
    waivers = parse_waivers(source)

    awaited = {id(node.value) for node in ast.walk(tree)
               if isinstance(node, ast.Await)
               and isinstance(node.value, ast.Call)}

    # Index every function (module-level and methods) with its facts.
    facts_by_node: dict[ast.AST, _FunctionFacts] = {}
    module_fns: dict[str, _FunctionFacts] = {}
    class_fns: dict[tuple[str, str], _FunctionFacts] = {}

    def index(body, cls: str | None) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                facts = _scan_function(stmt, cls, awaited)
                facts_by_node[stmt] = facts
                if cls is None:
                    module_fns[stmt.name] = facts
                else:
                    class_fns[(cls, stmt.name)] = facts
                index(stmt.body, cls)  # nested defs indexed, not inlined
            elif isinstance(stmt, ast.ClassDef):
                index(stmt.body, stmt.name)

    index(tree.body, None)

    def callees(facts: _FunctionFacts) -> list[_FunctionFacts]:
        out = []
        for name in facts.calls_bare:
            target = module_fns.get(name)
            if target is not None and not target.is_async:
                out.append(target)
        for name in facts.calls_self:
            target = class_fns.get((facts.cls, name)) if facts.cls else None
            if target is not None and not target.is_async:
                out.append(target)
        return out

    findings: list[Finding] = []
    reported: set[tuple[int, str]] = set()
    for facts in facts_by_node.values():
        if not facts.is_async:
            continue
        root = facts.node.name if facts.cls is None \
            else f"{facts.cls}.{facts.node.name}"
        # DFS through same-module sync helpers: their bodies run on the
        # event loop when called from this coroutine.
        stack, seen = [(facts, ())], {id(facts.node)}
        while stack:
            current, via = stack.pop()
            for lineno, description in current.blocking:
                key = (lineno, root)
                if key in reported:
                    continue
                reported.add(key)
                path = f" (via {' -> '.join(via)})" if via else ""
                waiver = waivers.get(lineno) or waivers.get(lineno - 1)
                waived = waiver is not None and waiver[0] == RULE_BLOCKING
                findings.append(Finding(
                    rule=RULE_BLOCKING,
                    where=f"{filename}:{lineno}",
                    message=f"{description}; reachable from "
                            f"async `{root}`{path}",
                    waived=waived,
                    waive_reason=waiver[1] if waived else ""))
            for target in callees(current):
                if id(target.node) not in seen:
                    seen.add(id(target.node))
                    name = target.node.name if target.cls is None \
                        else f"{target.cls}.{target.node.name}"
                    stack.append((target, via + (name,)))
    findings.sort(key=lambda f: f.where)
    return findings


def lint_paths(paths, root: str | None = None) -> Report:
    """Run the blocking-call lint over source files on disk."""
    findings: list[Finding] = []
    for path in paths:
        shown = os.path.relpath(path, root) if root else path
        with open(path, encoding="utf-8") as handle:
            findings.extend(lint_module(handle.read(), filename=shown))
    return Report(analyzer="asynclint",
                  target=root or ",".join(map(str, paths)),
                  findings=findings)


def lint_tree(root: str) -> Report:
    """Run the blocking-call lint over every ``.py`` file under ``root``."""
    paths = []
    for dirpath, _, filenames in os.walk(root):
        for name in sorted(filenames):
            if name.endswith(".py"):
                paths.append(os.path.join(dirpath, name))
    return lint_paths(sorted(paths), root=root)


# --- import-graph analysis: the step worker's compiler-free guarantee ----


def _module_map(src_root: str) -> dict[str, str]:
    """Importable module name -> file path, for everything under src_root."""
    modules: dict[str, str] = {}
    for dirpath, _, filenames in os.walk(src_root):
        for name in filenames:
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, src_root)
            parts = rel[:-3].split(os.sep)
            if parts[-1] == "__init__":
                parts = parts[:-1]
            if parts:
                modules[".".join(parts)] = path
    return modules


def _is_package(modules: dict[str, str], name: str) -> bool:
    return modules.get(name, "").endswith("__init__.py")


def _module_edges(source: str, modname: str, is_pkg: bool,
                  modules: dict[str, str],
                  include_lazy: bool) -> set[str]:
    """Internal modules ``modname`` imports.

    Module-level statements only, unless ``include_lazy`` — then imports
    inside function bodies count too (the step worker's lazy imports run
    in the worker, so they are real runtime edges; every *other* module's
    function-level imports stay lazy and are excluded, which is exactly
    what makes the serve package's PEP 562 init compiler-free).
    """
    tree = ast.parse(source, filename=modname)
    package = modname.split(".") if is_pkg else modname.split(".")[:-1]
    edges: set[str] = set()

    def add(name: str) -> None:
        if name in modules:
            edges.add(name)

    def resolve_from(node: ast.ImportFrom) -> None:
        if node.level == 0:
            base = node.module or ""
        else:
            prefix = package[:len(package) - (node.level - 1)]
            base = ".".join(prefix + ([node.module] if node.module else []))
        if base:
            add(base)
        for alias in node.names:
            if base:
                add(f"{base}.{alias.name}")
            else:
                add(alias.name)

    def visit(node: ast.AST, in_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            nested = in_function or isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef))
            if isinstance(child, ast.Import):
                if not in_function or include_lazy:
                    for alias in child.names:
                        add(alias.name)
                        # `import a.b` binds a but imports a.b too
                        parts = alias.name.split(".")
                        for i in range(1, len(parts)):
                            add(".".join(parts[:i]))
            elif isinstance(child, ast.ImportFrom):
                if not in_function or include_lazy:
                    resolve_from(child)
            else:
                visit(child, nested)

    visit(tree, in_function=False)
    # importing a submodule executes its package inits
    for name in set(edges):
        parts = name.split(".")
        for i in range(1, len(parts)):
            add(".".join(parts[:i]))
    return edges


def lint_worker_imports(
        src_root: str,
        entry: str = "repro.deploy.stepworker",
        forbidden: tuple[str, ...] = ("repro.runtime.compiler",
                                      "repro.autodiff"),
) -> list[Finding]:
    """Prove the step worker's import closure never reaches the compiler.

    Walks module-level imports transitively from ``entry`` (including the
    entry module's own function-level imports — those execute inside the
    worker) and reports a finding per forbidden module reached, with the
    full import chain in the message.
    """
    modules = _module_map(src_root)
    if entry not in modules:
        return [Finding(rule=RULE_IMPORT, where=entry,
                        message="entry module not found under "
                                + src_root)]
    parent: dict[str, str | None] = {entry: None}
    queue = [entry]
    while queue:
        name = queue.pop(0)
        with open(modules[name], encoding="utf-8") as handle:
            source = handle.read()
        edges = _module_edges(source, name, _is_package(modules, name),
                              modules, include_lazy=(name == entry))
        for edge in sorted(edges):
            if edge not in parent:
                parent[edge] = name
                queue.append(edge)

    findings: list[Finding] = []
    for target in sorted(parent):
        if not any(target == bad or target.startswith(bad + ".")
                   for bad in forbidden):
            continue
        chain, cursor = [], target
        while cursor is not None:
            chain.append(cursor)
            cursor = parent[cursor]
        findings.append(Finding(
            rule=RULE_IMPORT, where=target,
            message="step worker import closure reaches "
                    f"{target}: {' <- '.join(chain)}"))
    return findings


def worker_import_report(src_root: str) -> Report:
    return Report(analyzer="asynclint", target="repro.deploy.stepworker",
                  findings=lint_worker_imports(src_root))
