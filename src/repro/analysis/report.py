"""Shared findings model for the static analyzers.

Both analyzers (:mod:`repro.analysis.planlint`,
:mod:`repro.analysis.asynclint`) report through one :class:`Finding`
shape so the CLI, the CI lint job, and the tests render/serialize them
uniformly. A finding is *unwaived* unless an explicit inline waiver
(``# repro-lint: allow[rule] reason``) covered it — only unwaived
findings fail a lint run.
"""

from __future__ import annotations

import re
from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class Finding:
    """One analyzer verdict: a rule violated at a specific place."""

    rule: str           #: stable rule id, e.g. "use-after-free"
    where: str          #: instruction / file:line the finding anchors to
    message: str        #: human-readable statement of the defect
    waived: bool = False
    waive_reason: str = ""

    def __str__(self) -> str:
        tag = " (waived: %s)" % self.waive_reason if self.waived else ""
        return f"[{self.rule}] {self.where}: {self.message}{tag}"


@dataclass
class Report:
    """A full analyzer run: findings plus what was analyzed."""

    analyzer: str
    target: str
    findings: list[Finding] = field(default_factory=list)

    @property
    def unwaived(self) -> list[Finding]:
        return [f for f in self.findings if not f.waived]

    @property
    def ok(self) -> bool:
        return not self.unwaived

    def to_dict(self) -> dict:
        return {
            "analyzer": self.analyzer,
            "target": self.target,
            "ok": self.ok,
            "findings": [asdict(f) for f in self.findings],
        }

    def render(self) -> str:
        lines = [f"{self.analyzer}: {self.target} — "
                 f"{len(self.unwaived)} finding(s)"
                 + (f", {len(self.findings) - len(self.unwaived)} waived"
                    if len(self.findings) != len(self.unwaived) else "")]
        lines.extend(f"  {finding}" for finding in self.findings)
        return "\n".join(lines)


#: inline waiver syntax: ``# repro-lint: allow[<rule>] <reason>``
WAIVER_RE = re.compile(
    r"#\s*repro-lint:\s*allow\[(?P<rule>[\w-]+)\]\s*(?P<reason>.*)")


def parse_waivers(source: str) -> dict[int, tuple[str, str]]:
    """Line number (1-based) -> (rule, reason) for every inline waiver."""
    waivers: dict[int, tuple[str, str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = WAIVER_RE.search(line)
        if match:
            waivers[lineno] = (match.group("rule"),
                               match.group("reason").strip())
    return waivers


def format_findings(findings: list[Finding], limit: int = 8) -> str:
    """Compact multi-finding summary for exception messages."""
    shown = [str(f) for f in findings[:limit]]
    extra = len(findings) - len(shown)
    if extra > 0:
        shown.append(f"... and {extra} more")
    return "; ".join(shown)
