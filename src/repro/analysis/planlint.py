"""Static plan verifier: prove a PlanSpec safe before anything executes it.

The pass pipeline (``lower -> fuse_elementwise -> fold_scalars ->
precompute_frozen [-> autotune] -> allocate``) rewrites slot tables,
free-lists, donation decisions, kernel variants, and arena caps on
every compile. Until now the only safety net was the
byte-exactness oracle — which *runs* the plan, so a bad free-list or an
alias-unsafe donation shows up as silent corruption of a tenant's
optimizer state rather than a compile-time error. This module closes
that gap with a pure-static checker over :class:`~repro.runtime.plan.
PlanSpec` + the program it claims to lower. Per instruction stream it
proves:

* **def-before-use** — every slot an instruction reads was bound before
  (feed, state, precomputed constant, or an earlier instruction's
  output), and each slot is defined exactly once (values are SSA);
* **no use-after-free** — no instruction reads a slot an earlier
  free-list entry released, no double-free, no free of an undefined
  slot, and state/output/precomputed slots are never freed;
* **donation / alias safety** — a donated buffer is a dying, provably
  unaliased input of the same (shape, dtype) as the output, is freed at
  the donating instruction with no arena key (the buffer lives on as
  the output), and — for fused chains — is read only by the first link;
  a ``donating``-variant instruction's clobbered inputs all die there;
* **dtype/shape consistency** — each instruction's slots map to exactly
  the node's input/output names, arity and inferred output specs match
  the kernel schema, and the recorded ``out=`` shape/dtype equals the
  graph's declared output spec;
* **every mutable state slot written per step** — each state name some
  in-place node mutates is actually touched by an in-place instruction
  in the stream (a dropped ``apply_*`` instruction is a silent
  no-training bug);
* **fused-link invariants** — interior link values own no slot, chains
  are shape/dtype-stable, every link is a fusable single-output
  elementwise op, the first link reads no "previous value", and later
  links do;
* **const-arg splices** — a folded scalar names frozen shape-``()``
  state, its assembled position is in range, and the folded name owns
  no slot anywhere in the plan;
* **honest tuning decisions** (``tuned-*`` rules) — every
  ``tuned_variants`` row names a real instruction, a registered
  variant of the right kernel, the variant the instruction actually
  binds, a known source (``cost``/``measure``), finite non-negative
  costs, and no instruction is tuned twice;
* **independent byte accounting** — the transient-byte timeline, peak,
  arena caps, precomputed bytes, and clear-slot set are recomputed from
  scratch and must equal the numbers ``allocate`` recorded. A plan that
  lies about its arena caps or peak is rejected even when every
  individual instruction looks fine.

Verification runs (gated by ``CompileOptions.verify_plans`` /
``REPRO_VERIFY_PLANS=1``) after every pass stage inside
:func:`repro.runtime.passes.run_pipeline`, unconditionally on artifact
load before binding, in the program cache's compile path, and on demand
via ``repro lint-plan <artifact>``.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import PlanVerifyError, ReproError
from ..ir.ops import get_schema
from ..kernels import (DONATED_INPUTS, DONATING_KERNELS, OUT_ALIAS_SAFE,
                       OUT_KERNELS, PRECOMPUTE_TRANSFORMS, VARIANT_KERNELS,
                       VIEW_OPS)
from ..runtime.plan import (InstructionSpec, PlanSpec, VARIANT_BASE,
                            VARIANT_DONATING, arena_key_for)
from .report import Finding, Report, format_findings

#: environment flag that turns per-stage verification on in the compile
#: pipeline (always-on call sites — artifact load, the program cache —
#: accept "0" as an explicit escape hatch)
ENV_FLAG = "REPRO_VERIFY_PLANS"

_FALSEY = ("", "0", "false", "no", "off")


def verify_enabled(default: bool = False) -> bool:
    """Resolve the ``REPRO_VERIFY_PLANS`` environment switch."""
    value = os.environ.get(ENV_FLAG)
    if value is None:
        return default
    return value.strip().lower() not in _FALSEY


def verify_plan_spec(spec: PlanSpec, program) -> list[Finding]:
    """Every invariant violation in ``spec`` against ``program`` (no raise)."""
    return _PlanChecker(spec, program).run()


def verify_program(program) -> list[Finding]:
    """Verify ``program``'s (cached or freshly lowered) plan spec."""
    return verify_plan_spec(program.plan_spec(), program)


def check_plan(spec: PlanSpec, program, *, stage: str | None = None) -> None:
    """Raise :class:`~repro.errors.PlanVerifyError` on any finding."""
    findings = verify_plan_spec(spec, program)
    if findings:
        where = f" after stage {stage!r}" if stage else ""
        raise PlanVerifyError(
            f"plan verification failed{where} with {len(findings)} "
            f"finding(s): {format_findings(findings)}")


def report_for(spec: PlanSpec, program, target: str = "<plan>") -> Report:
    return Report(analyzer="planlint", target=target,
                  findings=verify_plan_spec(spec, program))


_UNDEF, _LIVE, _FREED = 0, 1, 2


class _PlanChecker:
    """One verification walk; collects findings instead of raising."""

    def __init__(self, spec: PlanSpec, program) -> None:
        self.spec = spec
        self.program = program
        self.graph = program.graph
        self.nodes = {node.name: node for node in program.schedule}
        self.state_names = set(program.state)
        self.keep = set(program.outputs)
        self.mutable = set(program.mutable_state_names())
        self.findings: list[Finding] = []
        #: fused link nodes count as executed schedule nodes
        self._fused_seen: set[str] = set()
        #: slot -> bound value name (slots map 1:1 to names in this IR)
        self.names: dict[int, str] = {}
        self.status: dict[int, int] = {}
        self._specs: dict[str, object] = {}
        self.accounting_ok = True

    def flag(self, rule: str, where: str, message: str) -> None:
        self.findings.append(Finding(rule=rule, where=where, message=message))

    # -- graph fact helpers ---------------------------------------------------

    def value_spec(self, name: str, where: str):
        cached = self._specs.get(name)
        if cached is not None:
            return cached
        try:
            spec = self.graph.spec(name)
        except ReproError:
            self.flag("unknown-value", where,
                      f"value {name!r} has no spec in the graph")
            self.accounting_ok = False
            return None
        self._specs[name] = spec
        return spec

    def nbytes(self, name: str, where: str) -> int:
        spec = self.value_spec(name, where)
        if spec is None:
            return 0
        return spec.nbytes

    def arena_key(self, name: str, where: str):
        spec = self.value_spec(name, where)
        if spec is None:
            return None
        return arena_key_for(tuple(spec.shape), np.dtype(spec.dtype.np))

    @staticmethod
    def _is_view(instr: InstructionSpec) -> bool:
        return instr.fused is None and instr.kernel in VIEW_OPS

    @staticmethod
    def _is_inplace(instr: InstructionSpec) -> bool:
        if instr.fused is not None or instr.kernel not in VIEW_OPS:
            try:
                return instr.fused is None \
                    and get_schema(instr.kernel).inplace
            except ReproError:
                return False
        return False

    # -- slot bookkeeping -----------------------------------------------------

    def bind(self, slot: int, name: str, where: str) -> None:
        if not 0 <= slot < self.spec.num_slots:
            self.flag("slot-range", where,
                      f"slot {slot} outside [0, {self.spec.num_slots})")
            return
        other = self.names.get(slot)
        if other is not None and other != name:
            self.flag("slot-collision", where,
                      f"slot {slot} binds both {other!r} and {name!r}")
            return
        self.names[slot] = name

    # -- main walk ------------------------------------------------------------

    def run(self) -> list[Finding]:
        spec = self.spec
        graph = self.graph

        # Static bindings: feeds, state, precomputed constants.
        feed_names = [name for name, _ in spec.feed_specs]
        if feed_names != list(graph.inputs):
            self.flag("feed-mismatch", "feed_specs",
                      f"plan feeds {feed_names} != graph inputs "
                      f"{list(graph.inputs)}")
        for name, slot in spec.feed_specs:
            self.bind(slot, name, "feed_specs")
            self.status[slot] = _LIVE
        bound_state = {name for _, name in spec.state_bindings}
        const_state = {name for instr in spec.instructions
                       for _, name in instr.const_args}
        if bound_state | const_state != self.state_names:
            self.flag("state-binding-mismatch", "state_bindings",
                      f"plan binds state {sorted(bound_state)} (+ "
                      f"{sorted(const_state)} const-folded) but the "
                      f"program owns {sorted(self.state_names)}")
        state_slots = set()
        for slot, name in spec.state_bindings:
            self.bind(slot, name, "state_bindings")
            self.status[slot] = _LIVE
            state_slots.add(slot)
        pre_slots = set()
        for entry in spec.precomputed:
            where = f"precomputed {entry.state}.{entry.transform}"
            self.bind(entry.slot,
                      f"__precomputed__{entry.state}.{entry.transform}",
                      where)
            self.status[entry.slot] = _LIVE
            pre_slots.add(entry.slot)
            if entry.transform not in PRECOMPUTE_TRANSFORMS:
                self.flag("unknown-transform", where,
                          f"transform {entry.transform!r} is not registered")
            if entry.state not in self.state_names:
                self.flag("precompute-source", where,
                          f"source {entry.state!r} is not program state")
            elif entry.state in self.mutable:
                self.flag("precompute-mutable", where,
                          f"source {entry.state!r} is mutated in-place; "
                          f"hoisting it is not bitwise-safe")

        # Producer/consumer facts over the spec stream (recomputed, never
        # trusted from the spec) — recyclability needs them.
        produced_by: dict[int, int] = {}
        consumed_view: set[int] = set()
        last_read: dict[int, int] = {}
        for idx, instr in enumerate(spec.instructions):
            for slot in instr.output_slots:
                produced_by.setdefault(slot, idx)
            for slot in instr.input_slots:
                last_read[slot] = idx
            if self._is_view(instr):
                consumed_view.update(instr.input_slots)
        instrs = spec.instructions

        def recyclable(slot: int) -> bool:
            idx = produced_by.get(slot)
            if idx is None:
                return False  # feeds/state/precomputed: caller-owned
            p = instrs[idx]
            if self._is_view(p) or self._is_inplace(p):
                return False
            if self.names.get(slot) in self.keep:
                return False
            return slot not in consumed_view

        transient = sum(self.nbytes(name, "inputs")
                        for name in graph.inputs)
        peak = transient
        arena_caps: dict = {}
        written_state: set[str] = set()
        seen_nodes: set[str] = set()
        interior_names: list[tuple[str, str]] = []

        for idx, instr in enumerate(spec.instructions):
            where = f"instr {idx} ({instr.node!r})"
            node = self.nodes.get(instr.node)
            if node is None:
                self.flag("unknown-node", where,
                          "references a node the schedule lacks")
                continue
            seen_nodes.add(instr.node)
            if node.op_type != instr.kernel:
                self.flag("kernel-mismatch", where,
                          f"kernel {instr.kernel!r} but node is "
                          f"{node.op_type!r}")
            inplace = self._is_inplace(instr)
            view = self._is_view(instr)

            # def-before-use / use-after-free on every read.
            for slot in instr.input_slots:
                state = self.status.get(slot, _UNDEF)
                if state == _UNDEF:
                    self.flag("def-before-use", where,
                              f"reads slot {slot} before any definition")
                elif state == _FREED:
                    self.flag("use-after-free", where,
                              f"reads slot {slot} after it was freed")

            if instr.const_args:
                self._check_const_args(instr, where, inplace, view)

            if instr.fused is not None:
                self._check_fused(idx, instr, node, where, interior_names)
                expected_inputs = None  # checked inside _check_fused
            else:
                expected_inputs = self._check_plain(instr, node, where,
                                                    inplace)

            # Outputs: exactly the node's outputs, each defined once.
            out_names = node.outputs
            if len(instr.output_slots) != len(out_names):
                self.flag("output-arity", where,
                          f"{len(instr.output_slots)} output slots for "
                          f"{len(out_names)} node outputs")
            for slot, name in zip(instr.output_slots, out_names):
                if self.status.get(slot, _UNDEF) != _UNDEF:
                    self.flag("slot-redefined", where,
                              f"slot {slot} ({self.names.get(slot)!r}) "
                              f"defined more than once")
                self.bind(slot, name, where)
                self.status[slot] = _LIVE

            # use_out / donation invariants.
            self._check_out_and_donation(instr, node, where, inplace,
                                         recyclable)
            if instr.variant == VARIANT_DONATING:
                self._check_donating_variant(instr, node, where, recyclable)

            # check_state_slots: exactly the state inputs of view kernels.
            expected_check = ()
            if view and not inplace and expected_inputs is not None:
                expected_check = tuple(
                    slot for slot, name in zip(instr.input_slots,
                                               expected_inputs)
                    if name in self.state_names)
            if tuple(instr.check_state_slots) != expected_check:
                self.flag("state-check-mismatch", where,
                          f"check_state_slots {instr.check_state_slots} "
                          f"!= expected {expected_check}")

            if inplace:
                if instr.use_out or instr.donate_slot >= 0 \
                        or instr.fresh_outputs != 0:
                    self.flag("inplace-invariant", where,
                              "in-place instruction carries out=/donation/"
                              "fresh-output decisions")
                written_state.update(
                    name for name in node.inputs
                    if name in self.state_names)
            expected_fresh = 0 if inplace else (
                len(instr.fused) if instr.fused is not None
                else len(node.outputs))
            if instr.fresh_outputs != expected_fresh:
                self.flag("fresh-outputs-mismatch", where,
                          f"fresh_outputs {instr.fresh_outputs} != "
                          f"{expected_fresh}")

            # Byte timeline: outputs materialize, then the free-list runs.
            if not inplace:
                for name in out_names:
                    transient += self.nbytes(name, where)
            if transient > peak:
                peak = transient
            freed_here = set()
            for slot, key in instr.frees:
                state = self.status.get(slot, _UNDEF)
                name = self.names.get(slot)
                if state == _UNDEF:
                    self.flag("free-undefined", where,
                              f"frees slot {slot} which was never defined")
                    continue
                if state == _FREED or slot in freed_here:
                    self.flag("double-free", where,
                              f"frees slot {slot} ({name!r}) twice")
                    continue
                if slot in state_slots:
                    self.flag("freed-state", where,
                              f"frees state slot {slot} ({name!r})")
                if slot in pre_slots:
                    self.flag("freed-precomputed", where,
                              f"frees precomputed slot {slot}")
                if name in self.keep:
                    self.flag("freed-output", where,
                              f"frees program output {name!r}")
                freed_here.add(slot)
                self.status[slot] = _FREED
                if name is not None:
                    transient -= self.nbytes(name, where)
                if key is not None:
                    if not recyclable(slot):
                        self.flag("unsafe-recycle", where,
                                  f"slot {slot} ({name!r}) returns to the "
                                  f"arena but may be aliased/caller-owned")
                    elif name is not None:
                        expect = self.arena_key(name, where)
                        if expect is not None \
                                and (int(key[0]), np.dtype(key[1])) \
                                != expect:
                            self.flag("arena-key-mismatch", where,
                                      f"free of {name!r} recycles under "
                                      f"{key}, spec says {expect}")

            # Independent free-list recomputation: every buffer allocate
            # would release here (dead output or last-read input) must be
            # on this instruction's free-list, or the plan leaks it.
            expected_frees = set()
            if not inplace:
                for slot, name in zip(instr.output_slots, out_names):
                    if slot not in last_read and name not in self.keep:
                        expected_frees.add(slot)
            for slot in instr.input_slots:
                if last_read.get(slot) == idx and slot not in state_slots \
                        and slot not in pre_slots \
                        and self.names.get(slot) not in self.keep:
                    expected_frees.add(slot)
            for slot in sorted(expected_frees - freed_here):
                if self.status.get(slot) == _LIVE:
                    self.flag("missing-free", where,
                              f"slot {slot} ({self.names.get(slot)!r}) "
                              f"dies here but is not on the free-list")

            if instr.use_out and instr.donate_slot < 0 \
                    and instr.out_shape is not None \
                    and instr.out_dtype is not None:
                cap_key = arena_key_for(tuple(instr.out_shape),
                                        np.dtype(instr.out_dtype))
                arena_caps[cap_key] = arena_caps.get(cap_key, 0) + 1

        self._check_end_state(arena_caps, peak, transient, written_state,
                              seen_nodes, interior_names, state_slots,
                              pre_slots)
        return self.findings

    # -- per-instruction helpers ----------------------------------------------

    def _check_const_args(self, instr, where: str, inplace: bool,
                          view: bool) -> None:
        """Folded-scalar splices: frozen shape-() state at valid positions."""
        if inplace or view:
            self.flag("const-arg-context", where,
                      "const-folded inputs on an in-place/view instruction")
        total = len(instr.input_slots) + len(instr.const_args)
        seen: set[int] = set()
        for pos, name in instr.const_args:
            cwhere = f"{where} const_arg {pos}"
            if not 0 <= pos < total:
                self.flag("const-arg-range", cwhere,
                          f"position {pos} outside the assembled input "
                          f"list of {total}")
            if pos in seen:
                self.flag("const-arg-duplicate", cwhere,
                          "position spliced twice")
            seen.add(pos)
            if name not in self.state_names:
                self.flag("const-arg-source", cwhere,
                          f"{name!r} is not program state")
                continue
            if name in self.mutable:
                self.flag("const-arg-mutable", cwhere,
                          f"{name!r} is mutated in place; only frozen "
                          f"state may fold")
            cspec = self.value_spec(name, cwhere)
            if cspec is not None and tuple(cspec.shape) != ():
                self.flag("const-arg-shape", cwhere,
                          f"{name!r} has shape {tuple(cspec.shape)}; "
                          f"only scalars fold")

    def _check_plain(self, instr, node, where: str, inplace: bool):
        """Non-fused: arity, slot->name mapping, schema inference."""
        expected_inputs = list(node.inputs)
        if instr.const_args:
            consts = dict(instr.const_args)
            kept = []
            for pos, name in enumerate(expected_inputs):
                want = consts.pop(pos, None)
                if want is None:
                    kept.append(name)
                elif want != name:
                    self.flag("const-arg-mismatch", where,
                              f"const position {pos} splices {want!r}, "
                              f"node reads {name!r}")
            expected_inputs = kept
        if instr.fused is None \
                and instr.variant not in (VARIANT_BASE, VARIANT_DONATING):
            if (instr.kernel, instr.variant) not in VARIANT_KERNELS:
                self.flag("unknown-variant", where,
                          f"variant {instr.variant!r} is not registered "
                          f"for {instr.kernel!r}")
            entry = next((e for e in self.spec.precomputed
                          if instr.input_slots
                          and e.slot == instr.input_slots[-1]), None)
            if entry is None:
                self.flag("precompute-slot", where,
                          f"variant {instr.variant!r} lacks a trailing "
                          f"precomputed input slot")
            else:
                expected_inputs.append(
                    f"__precomputed__{entry.state}.{entry.transform}")
        if len(instr.input_slots) != len(expected_inputs):
            self.flag("input-arity", where,
                      f"{len(instr.input_slots)} input slots for "
                      f"{len(expected_inputs)} node inputs")
        else:
            for slot, name in zip(instr.input_slots, expected_inputs):
                bound = self.names.get(slot)
                if bound is not None and bound != name:
                    self.flag("input-slot-mismatch", where,
                              f"input slot {slot} holds {bound!r}, node "
                              f"reads {name!r}")
        self._check_schema(node, where)
        return tuple(node.inputs)

    def _check_schema(self, node, where: str) -> None:
        """Node arity + inferred output specs against the kernel schema."""
        try:
            schema = get_schema(node.op_type)
        except ReproError:
            self.flag("unknown-kernel", where,
                      f"no schema for op {node.op_type!r}")
            return
        if not (schema.min_inputs <= len(node.inputs)
                <= schema.max_inputs):
            self.flag("schema-arity", where,
                      f"{len(node.inputs)} inputs outside "
                      f"[{schema.min_inputs}, {schema.max_inputs}]")
            return
        in_specs = [self.value_spec(name, where) for name in node.inputs]
        if any(s is None for s in in_specs):
            return
        try:
            inferred = schema.infer(in_specs, node.attrs)
        except Exception as exc:  # noqa: BLE001 - schema disagreement
            self.flag("schema-infer", where,
                      f"schema inference rejects the node: {exc}")
            return
        if len(inferred) != len(node.outputs):
            self.flag("schema-mismatch", where,
                      f"schema infers {len(inferred)} outputs, node "
                      f"declares {len(node.outputs)}")
            return
        for name, (shape, dtype) in zip(node.outputs, inferred):
            declared = self.value_spec(name, where)
            if declared is None:
                continue
            if tuple(declared.shape) != tuple(shape) \
                    or declared.dtype != dtype:
                self.flag("schema-mismatch", where,
                          f"output {name!r} declared "
                          f"{tuple(declared.shape)}/{declared.dtype} but "
                          f"schema infers {tuple(shape)}/{dtype}")

    def _check_fused(self, idx: int, instr, node, where: str,
                     interior_names: list) -> None:
        """Fused-chain invariants; also maps external inputs to names."""
        links = instr.fused
        if not links:
            self.flag("fused-empty", where, "fused instruction has no links")
            return
        if links[-1].node != instr.node or links[-1].kernel != instr.kernel:
            self.flag("fused-tail-mismatch", where,
                      f"instruction node/kernel != last link "
                      f"({links[-1].node!r}/{links[-1].kernel!r})")
        final_spec = None
        if node.outputs:
            final_spec = self.value_spec(node.outputs[0], where)
        # Link args index the *assembled* input list: slots in order, with
        # const-folded state spliced back at its recorded positions.
        const_at = dict(instr.const_args)
        total = len(instr.input_slots) + len(const_at)
        slot_of: dict[int, int] = {}
        nxt = 0
        for pos in range(total):
            if pos not in const_at:
                slot_of[pos] = nxt
                nxt += 1
        external: dict[int, str] = {}
        prev_value: str | None = None
        for pos, link in enumerate(links):
            lwhere = f"{where} link {pos} ({link.node!r})"
            lnode = self.nodes.get(link.node)
            if lnode is None:
                self.flag("unknown-node", lwhere,
                          "fused link references a node the schedule lacks")
                return
            self._fused_seen.add(link.node)
            if lnode.op_type != link.kernel:
                self.flag("kernel-mismatch", lwhere,
                          f"link kernel {link.kernel!r} but node is "
                          f"{lnode.op_type!r}")
            k = link.kernel
            eligible = (len(lnode.outputs) == 1
                        and k in OUT_KERNELS and k in OUT_ALIAS_SAFE
                        and k not in VIEW_OPS)
            try:
                eligible = eligible and not get_schema(k).inplace
            except ReproError:
                eligible = False
            if not eligible:
                self.flag("fused-ineligible-link", lwhere,
                          f"{k!r} is not a single-output alias-safe "
                          f"elementwise kernel")
            if pos == 0 and any(a is None for a in link.args):
                self.flag("fused-chain-break", lwhere,
                          "first link reads a previous value")
            if pos > 0 and not any(a is None for a in link.args):
                self.flag("fused-chain-break", lwhere,
                          "link never reads the previous link's result")
            if len(link.args) != len(lnode.inputs):
                self.flag("fused-arg-arity", lwhere,
                          f"{len(link.args)} args for "
                          f"{len(lnode.inputs)} node inputs")
            else:
                for arg, name in zip(link.args, lnode.inputs):
                    if arg is None:
                        if name != prev_value:
                            self.flag("fused-arg-mismatch", lwhere,
                                      f"arg None stands for {prev_value!r} "
                                      f"but node reads {name!r}")
                        continue
                    if not 0 <= arg < total:
                        self.flag("fused-arg-range", lwhere,
                                  f"arg index {arg} outside the assembled "
                                  f"input list of {total}")
                        continue
                    known = external.get(arg)
                    if known is None:
                        external[arg] = name
                    elif known != name:
                        self.flag("fused-arg-mismatch", lwhere,
                                  f"external input {arg} is both "
                                  f"{known!r} and {name!r}")
            # mid-chain shape/dtype stability
            if lnode.outputs:
                lspec = self.value_spec(lnode.outputs[0], lwhere)
                if lspec is not None and final_spec is not None \
                        and (tuple(lspec.shape) != tuple(final_spec.shape)
                             or lspec.dtype != final_spec.dtype):
                    self.flag("fused-shape-drift", lwhere,
                              f"link output {tuple(lspec.shape)}/"
                              f"{lspec.dtype} != chain output "
                              f"{tuple(final_spec.shape)}/"
                              f"{final_spec.dtype}")
                if pos < len(links) - 1:
                    interior_names.append((lnode.outputs[0], where))
            self._check_schema(lnode, lwhere)
            prev_value = lnode.outputs[0] if lnode.outputs else None
        # every assembled position (slot or const splice) must be some
        # link's external arg, and the position->name mapping must agree
        if set(external) != set(range(total)):
            self.flag("fused-input-mismatch", where,
                      f"external args {sorted(external)} do not cover "
                      f"assembled positions 0..{total - 1}")
        else:
            for arg, name in external.items():
                cname = const_at.get(arg)
                if cname is not None:
                    if cname != name:
                        self.flag("const-arg-mismatch", where,
                                  f"assembled position {arg} splices "
                                  f"{cname!r}, link arg reads {name!r}")
                    continue
                bound = self.names.get(instr.input_slots[slot_of[arg]])
                if bound is not None and bound != name:
                    self.flag("input-slot-mismatch", where,
                              f"input slot "
                              f"{instr.input_slots[slot_of[arg]]} holds "
                              f"{bound!r}, link arg {arg} reads {name!r}")

    def _check_out_and_donation(self, instr, node, where: str,
                                inplace: bool, recyclable) -> None:
        if instr.use_out:
            legal = not inplace and len(node.outputs) == 1 \
                and (instr.fused is not None
                     or instr.kernel in OUT_KERNELS)
            if not legal:
                self.flag("invalid-use-out", where,
                          "use_out set on an instruction with no out= "
                          "variant (or multiple outputs)")
            if instr.out_shape is None or instr.out_dtype is None:
                self.flag("out-spec-mismatch", where,
                          "use_out without a recorded out shape/dtype")
            elif node.outputs:
                declared = self.value_spec(node.outputs[0], where)
                if declared is not None and (
                        tuple(instr.out_shape) != tuple(declared.shape)
                        or np.dtype(instr.out_dtype)
                        != np.dtype(declared.dtype.np)):
                    self.flag("out-spec-mismatch", where,
                              f"out= records {tuple(instr.out_shape)}/"
                              f"{instr.out_dtype}, graph declares "
                              f"{tuple(declared.shape)}/"
                              f"{np.dtype(declared.dtype.np).name}")
        elif instr.donate_slot >= 0:
            self.flag("donation-without-out", where,
                      "donate_slot set on a non-out= instruction")
            return
        if instr.donate_slot < 0:
            return
        slot = instr.donate_slot
        if slot not in instr.input_slots:
            self.flag("donation-not-input", where,
                      f"donated slot {slot} is not an input of this "
                      f"instruction")
            return
        freed_keys = dict(instr.frees)
        if slot not in freed_keys:
            self.flag("donation-not-freed", where,
                      f"donated slot {slot} is not freed here — a later "
                      f"read would see the clobbered buffer")
        elif freed_keys[slot] is not None:
            self.flag("donation-recycled", where,
                      f"donated slot {slot} also returns to the arena; "
                      f"the buffer would alias the output")
        if not recyclable(slot):
            self.flag("donation-unsafe", where,
                      f"donated slot {slot} "
                      f"({self.names.get(slot)!r}) may be aliased or "
                      f"caller-owned")
        name = self.names.get(slot)
        if name is not None and instr.out_shape is not None \
                and instr.out_dtype is not None:
            # Donation requires the *exact* (shape, dtype) — an out= kernel
            # writes element-for-element, so a same-byte-bucket buffer of
            # another shape is not good enough.
            dspec = self.value_spec(name, where)
            if dspec is not None and (
                    tuple(dspec.shape) != tuple(instr.out_shape)
                    or np.dtype(dspec.dtype.np)
                    != np.dtype(instr.out_dtype)):
                self.flag("donation-shape-mismatch", where,
                          f"donated buffer {name!r} is "
                          f"{(tuple(dspec.shape), dspec.dtype)}, output "
                          f"wants {(tuple(instr.out_shape), instr.out_dtype)}")
        if instr.fused is not None:
            first = {a for a in instr.fused[0].args if a is not None}
            later = {a for link in instr.fused[1:]
                     for a in link.args if a is not None}
            safe = first - later
            try:
                arg = instr.input_slots.index(slot)
            except ValueError:
                return
            if instr.const_args:
                # link args index the assembled list: shift the slot
                # position past the const splices before it
                const_positions = {pos for pos, _ in instr.const_args}
                total = len(instr.input_slots) + len(const_positions)
                k = -1
                for pos in range(total):
                    if pos in const_positions:
                        continue
                    k += 1
                    if k == arg:
                        arg = pos
                        break
            if arg not in safe:
                self.flag("donation-alias-unsafe", where,
                          f"donated input {arg} is read by a later fused "
                          f"link; the first link's write clobbers it")
        elif instr.kernel not in OUT_ALIAS_SAFE:
            self.flag("donation-alias-unsafe", where,
                      f"{instr.kernel!r} is not alias-safe; it may read "
                      f"the donated buffer after writing it")

    def _check_donating_variant(self, instr, node, where: str,
                                recyclable) -> None:
        if instr.fused is not None or instr.kernel not in DONATING_KERNELS:
            self.flag("unknown-variant", where,
                      f"donating variant but {instr.kernel!r} has no "
                      f"donating kernel")
            return
        freed = {slot for slot, _ in instr.frees}
        for i in DONATED_INPUTS.get(instr.kernel, ()):
            if i >= len(instr.input_slots):
                self.flag("donating-variant-unsafe", where,
                          f"clobbered input index {i} out of range")
                continue
            slot = instr.input_slots[i]
            if slot not in freed or not recyclable(slot):
                self.flag("donating-variant-unsafe", where,
                          f"clobbered input slot {slot} "
                          f"({self.names.get(slot)!r}) is not a dying "
                          f"unaliased buffer")

    def _check_tuned(self) -> None:
        """Tuned-variant table: every decision names a real instruction,
        a registered (or base) variant, and matches what the instruction
        actually runs — a table that lies about tuning is rejected."""
        by_node = {instr.node: instr for instr in self.spec.instructions}
        seen: set[str] = set()
        for entry in self.spec.tuned_variants:
            where = f"tuned_variants {entry.node!r}"
            if entry.node in seen:
                self.flag("tuned-duplicate", where,
                          "two tuning decisions for one instruction")
            seen.add(entry.node)
            if entry.source not in ("cost", "measure"):
                self.flag("tuned-source", where,
                          f"unknown tuning source {entry.source!r}")
            for label, value in (("predicted_us", entry.predicted_us),
                                 ("measured_us", entry.measured_us)):
                if value is None:
                    continue
                if not isinstance(value, (int, float)) or value != value \
                        or value < 0:
                    self.flag("tuned-cost-invalid", where,
                              f"{label} {value!r} is not a non-negative "
                              f"number")
            instr = by_node.get(entry.node)
            if instr is None:
                self.flag("tuned-unknown-node", where,
                          "no instruction with this node in the stream")
                continue
            if instr.kernel != entry.kernel:
                self.flag("tuned-kernel-mismatch", where,
                          f"table says {entry.kernel!r}, instruction runs "
                          f"{instr.kernel!r}")
            if entry.variant == VARIANT_BASE:
                if instr.variant not in (VARIANT_BASE, VARIANT_DONATING):
                    self.flag("tuned-variant-mismatch", where,
                              f"table says base but instruction runs "
                              f"{instr.variant!r}")
                continue
            if (entry.kernel, entry.variant) not in VARIANT_KERNELS:
                self.flag("tuned-unregistered-variant", where,
                          f"variant {entry.variant!r} is not registered "
                          f"for {entry.kernel!r}")
            if instr.variant != entry.variant:
                self.flag("tuned-variant-mismatch", where,
                          f"table says {entry.variant!r}, instruction "
                          f"runs {instr.variant!r}")

    # -- end-of-stream checks -------------------------------------------------

    def _check_end_state(self, arena_caps, peak, transient, written_state,
                         seen_nodes, interior_names, state_slots,
                         pre_slots) -> None:
        spec = self.spec
        where = "plan"
        self._check_tuned()

        for name in sorted(self.mutable - written_state):
            self.flag("state-not-written", where,
                      f"mutable state {name!r} is never written by any "
                      f"in-place instruction — the step silently stops "
                      f"training it")

        executed = seen_nodes | self._fused_seen
        missing = {node.name for node in self.program.schedule} - executed
        for name in sorted(missing):
            self.flag("missing-instruction", where,
                      f"schedule node {name!r} has no instruction in the "
                      f"stream")

        name_to_slot = {name: slot for slot, name in self.names.items()}
        for name, owner in interior_names:
            if name in name_to_slot:
                self.flag("fused-interior-slot", owner,
                          f"interior fused value {name!r} owns slot "
                          f"{name_to_slot[name]}; interior links must not "
                          f"materialize")

        produced = {name for name, _ in spec.output_slots}
        if produced != self.keep:
            self.flag("output-set-mismatch", where,
                      f"plan outputs {sorted(produced)} != program "
                      f"outputs {sorted(self.keep)}")
        for name, slot in spec.output_slots:
            if self.names.get(slot) != name:
                self.flag("output-slot-mismatch", where,
                          f"output {name!r} points at slot {slot} which "
                          f"holds {self.names.get(slot)!r}")
            elif self.status.get(slot) != _LIVE:
                self.flag("output-freed", where,
                          f"output {name!r} (slot {slot}) is not live at "
                          f"the end of the stream")

        if len(self.names) != spec.num_slots:
            self.flag("slot-count-mismatch", where,
                      f"{len(self.names)} slots bound, spec claims "
                      f"{spec.num_slots}")
        expected_clear = {slot for slot in self.names
                          if slot not in state_slots
                          and slot not in pre_slots}
        if set(spec.clear_slots) != expected_clear:
            self.flag("clear-slots-mismatch", where,
                      f"clear_slots disagree with the non-state, "
                      f"non-precomputed slot set "
                      f"(got {len(set(spec.clear_slots))}, expected "
                      f"{len(expected_clear)})")

        if self.accounting_ok:
            declared = {(int(nbytes), np.dtype(dtype)): count
                        for (nbytes, dtype), count in spec.arena_caps}
            if declared != arena_caps:
                self.flag("arena-caps-mismatch", where,
                          f"declared arena caps {declared} != recomputed "
                          f"{arena_caps}")
            if peak != spec.peak_transient_bytes:
                self.flag("peak-bytes-mismatch", where,
                          f"declared peak {spec.peak_transient_bytes} != "
                          f"recomputed {peak}")
            if transient != spec.final_transient_bytes:
                self.flag("final-bytes-mismatch", where,
                          f"declared final transient "
                          f"{spec.final_transient_bytes} != recomputed "
                          f"{transient}")
        pre_bytes = sum(entry.nbytes for entry in spec.precomputed)
        if pre_bytes != spec.precomputed_bytes:
            self.flag("precomputed-bytes-mismatch", where,
                      f"declared precomputed_bytes "
                      f"{spec.precomputed_bytes} != {pre_bytes}")
