"""Static analyzers: compile-time proofs the runtime used to discover late.

Two analyzers over one :class:`~repro.analysis.report.Finding` model:

* :mod:`repro.analysis.planlint` — verifies a lowered
  :class:`~repro.runtime.plan.PlanSpec` against its program: slot
  liveness, free-list safety, donation aliasing, kernel schemas, and an
  independent replay of ``allocate``'s byte accounting. Wired into the
  pass pipeline (``REPRO_VERIFY_PLANS`` / ``CompileOptions.
  verify_plans``), artifact load, the program cache, and
  ``repro lint-plan``.
* :mod:`repro.analysis.asynclint` — keeps the gateway's event loop
  honest (no blocking calls reachable from ``async def``) and proves the
  step worker's compiler-free import closure statically.

This package imports only the IR, kernel registries, and plan data
model — never the compiler — so the analyzers are safe to run anywhere,
including inside deployed workers.
"""

from .asynclint import (lint_module, lint_paths, lint_tree,
                        lint_worker_imports, worker_import_report)
from .effects import OpEffects, safe_to_defer, stream_effects
from .planlint import (check_plan, report_for, verify_enabled,
                       verify_plan_spec, verify_program)
from .report import Finding, Report, format_findings, parse_waivers

__all__ = [
    "Finding",
    "OpEffects",
    "Report",
    "check_plan",
    "format_findings",
    "lint_module",
    "lint_paths",
    "lint_tree",
    "lint_worker_imports",
    "parse_waivers",
    "report_for",
    "safe_to_defer",
    "stream_effects",
    "verify_enabled",
    "verify_plan_spec",
    "verify_program",
]
