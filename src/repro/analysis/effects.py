"""Schema-driven effect analysis over lowered instruction streams.

The pass pipeline's motion decisions (deferring a pure elementwise
producer down to its sole consumer) need one question answered: *may any
instruction between here and there mutate something the moved
instruction reads?* This module answers it from the stream alone — no
compiler, no graph — by tracking, per value, the set of **alias roots**
its buffer may share memory with:

* a value produced by a view-capable kernel aliases every root of every
  input (plus itself);
* a value produced by a fresh-output kernel roots itself;
* an in-place kernel's outputs alias its inputs' roots (the "result" is
  the mutated parameter), and the op **writes** all of those roots —
  deliberately conservative: the schema says *may mutate*, not *which
  element*, so every aliased buffer counts as written.

Duck-typed over the stream: ops only need ``inputs``, ``outputs``,
``is_view`` and ``is_inplace`` (the :class:`repro.runtime.passes.lower.
LoweredOp` surface, itself derived from the kernel schemas/registries).
This module imports nothing from the runtime so it stays safe in any
import closure, including deployed workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

_EMPTY: frozenset[str] = frozenset()


@dataclass(frozen=True)
class OpEffects:
    """May-read / may-write root sets for one lowered instruction."""

    #: alias roots of every buffer the op reads
    reads: frozenset[str]
    #: alias roots the op may mutate (empty for pure and view ops)
    writes: frozenset[str]


def stream_effects(stream: Sequence) -> list[OpEffects]:
    """Per-op effects for a lowered stream, in stream order."""
    roots: dict[str, frozenset[str]] = {}
    effects: list[OpEffects] = []
    for op in stream:
        reads = _EMPTY
        for name in op.inputs:
            reads = reads | roots.get(name, frozenset((name,)))
        if op.is_view:
            for out in op.outputs:
                roots[out] = reads | frozenset((out,))
            writes = _EMPTY
        elif op.is_inplace:
            for out in op.outputs:
                roots[out] = reads
            writes = reads
        else:
            for out in op.outputs:
                roots[out] = frozenset((out,))
            writes = _EMPTY
        effects.append(OpEffects(reads=reads, writes=writes))
    return effects


def safe_to_defer(effects: Sequence[OpEffects], i: int, j: int) -> bool:
    """True when instruction ``i`` may run just before instruction ``j``.

    Sound for a *pure* instruction ``i`` (fresh outputs, no writes) whose
    only consumer is ``j``: the move is observable only if some
    instruction in between mutates a buffer ``i`` reads.
    """
    moved_reads = effects[i].reads
    for k in range(i + 1, j):
        if effects[k].writes & moved_reads:
            return False
    return True
