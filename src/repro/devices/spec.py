"""Edge-device specifications for the analytical cost model.

Each :class:`DeviceSpec` captures the handful of quantities that determine
training latency and feasibility on real silicon: effective peak FLOP/s
(with per-op-class efficiency), memory bandwidth, per-kernel launch cost,
the cost of one host-language (Python) operator dispatch on that CPU, and
RAM capacity. DESIGN.md documents why modelling these — applied to the
*actual compiled schedule* — preserves the paper's comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: operator class -> efficiency (fraction of peak FLOP/s attainable)
Efficiency = dict[str, float]


@dataclass(frozen=True)
class DeviceSpec:
    """One edge platform."""

    key: str
    name: str
    kind: str                      # cpu | gpu | dsp | mcu
    peak_gflops: float             # effective fp32 peak
    mem_bw_gbs: float              # DRAM/SRAM bandwidth
    kernel_launch_us: float        # per-kernel dispatch on the accelerator
    host_dispatch_us: float        # one interpreted-framework op on this CPU
    ram_mb: float
    preferred_layout: str = "NCHW"
    fp16_gflops: float | None = None   # effective fp16 peak (if supported)
    int8_gops: float | None = None     # effective int8 peak (if supported)
    op_efficiency: Efficiency = field(default_factory=dict)

    def peak_for(self, dtype_itemsize: int) -> float:
        """Effective peak GFLOP/s (GOP/s for int8) for an element width."""
        if dtype_itemsize == 1 and self.int8_gops:
            return self.int8_gops
        if dtype_itemsize <= 2 and self.fp16_gflops:
            return self.fp16_gflops
        return self.peak_gflops

    def efficiency(self, op_class: str) -> float:
        return self.op_efficiency.get(op_class, 0.25)

    @property
    def ram_bytes(self) -> int:
        return int(self.ram_mb * 1024 * 1024)
