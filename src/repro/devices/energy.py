"""Energy model for on-device training vs cloud offloading.

The paper's introduction motivates near-sensor training with energy: "it
saves energy from data transmission (which is much more expensive than
computation)". This module quantifies both sides:

* compute energy of one training iteration from the compiled schedule
  (pJ/FLOP and pJ/byte constants per device class),
* radio energy of shipping the same training data to a cloud server.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import Graph, op_bytes, op_flops
from ..ir.node import Node
from .spec import DeviceSpec

#: energy constants per device kind: (pJ per FLOP, pJ per DRAM byte)
_ENERGY_BY_KIND = {
    "cpu": (45.0, 180.0),
    "gpu": (12.0, 120.0),
    "dsp": (6.0, 100.0),
    "mcu": (90.0, 60.0),   # SRAM-only traffic is cheap; compute is not
}

#: radio energy for uplink transmission, nJ per byte (Wi-Fi/LTE class).
RADIO_NJ_PER_BYTE = 230.0


@dataclass
class EnergyReport:
    """Energy of one training iteration, in millijoules."""

    compute_mj: float
    memory_mj: float

    @property
    def total_mj(self) -> float:
        return self.compute_mj + self.memory_mj


def estimate_energy(graph: Graph, schedule: list[Node],
                    device: DeviceSpec) -> EnergyReport:
    """Energy of executing ``schedule`` once on ``device``."""
    pj_flop, pj_byte = _ENERGY_BY_KIND[device.kind]
    flops = 0
    moved = 0
    for node in schedule:
        in_specs = [graph.spec(i) for i in node.inputs]
        out_specs = [graph.spec(o) for o in node.outputs]
        flops += op_flops(node.op_type, in_specs, out_specs, node.attrs)
        moved += op_bytes(in_specs, out_specs)
    return EnergyReport(
        compute_mj=flops * pj_flop * 1e-9,
        memory_mj=moved * pj_byte * 1e-9,
    )


def transmission_energy_mj(num_bytes: int) -> float:
    """Radio energy to upload ``num_bytes`` of training data, in mJ."""
    return num_bytes * RADIO_NJ_PER_BYTE * 1e-6


def local_vs_cloud(graph: Graph, schedule: list[Node], device: DeviceSpec,
                   steps: int, bytes_per_step: int) -> dict[str, float]:
    """Compare local fine-tuning energy with shipping the data out.

    Args:
        steps: training iterations performed locally.
        bytes_per_step: raw sensor data consumed per iteration (what cloud
            training would have to upload).

    Returns:
        ``{"local_mj": ..., "upload_mj": ..., "ratio": upload/local}``.
    """
    local = estimate_energy(graph, schedule, device).total_mj * steps
    upload = transmission_energy_mj(bytes_per_step * steps)
    return {
        "local_mj": local,
        "upload_mj": upload,
        "ratio": upload / local if local else float("inf"),
    }
