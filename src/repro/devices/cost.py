"""Per-operator roofline latency model applied to compiled schedules.

For every scheduled node::

    compute_us = flops / (peak(dtype) * efficiency(op_class) * quality)
    memory_us  = bytes_moved / bandwidth
    node_us    = max(compute_us, memory_us) + launch (once per fusion group)
    (+ host_dispatch_us per op for interpreted frameworks)

Winograd-bound convolutions get the 2.25x multiply reduction; a layout
mismatch between the graph and the device's preferred layout halves
spatial-op efficiency (the penalty the layout pass exists to avoid).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import Graph, op_bytes, op_flops
from ..ir.node import Node
from .spec import DeviceSpec

OP_CLASS = {
    "matmul": "gemm", "conv2d": "gemm", "conv2d_dx": "gemm",
    "conv2d_i8": "gemm", "matmul_i8": "gemm",
    "conv2d_dw": "gemm",  # grouped/depthwise variants reclassified per-node
    "maxpool2d": "pool", "avgpool2d": "pool", "maxpool2d_grad": "pool",
    "avgpool2d_grad": "pool", "global_avg_pool": "pool",
    "global_avg_pool_i8": "pool",
    "softmax": "normalize", "log_softmax": "normalize",
    "layernorm": "normalize", "rmsnorm": "normalize",
    "embedding": "gather", "embedding_grad": "gather", "onehot": "gather",
    "apply_sgd": "update", "apply_adam": "update", "apply_lion": "update",
    "reduce_sum": "reduce", "reduce_mean": "reduce", "reduce_max": "reduce",
}

_SPATIAL = {"conv2d", "conv2d_i8", "conv2d_dx", "conv2d_dw", "maxpool2d",
            "avgpool2d"}

#: Metadata-only ops: compiled runtimes implement these as pointer/stride
#: adjustments (zero copies, zero launches). Interpreted frameworks still
#: pay their per-op host dispatch.
VIEW_OPS = {"reshape", "slice"}

WINOGRAD_SPEEDUP = 2.25
LAYOUT_MISMATCH_PENALTY = 0.55

#: Strided-operand GEMM penalty: a ``trans_b`` matmul reads B through a
#: transposed (non-contiguous) view, which costs BLAS a packing pass the
#: contiguous layout skips. Only the plan-level model applies this — the
#: schedule-level estimate keeps its historical calibration.
STRIDED_GEMM_PENALTY = 0.85

#: FLOPs of the per-call Winograd weight transform ``U = G g Gᵀ`` per
#: (cout, cin) filter: two small (4x3)·(3x3) and (4x3)·(3x4) products.
_WINOGRAD_TRANSFORM_FLOPS_PER_FILTER = 168


@dataclass
class LatencyReport:
    """Simulated wall-clock for one iteration of a schedule."""

    total_us: float = 0.0
    compute_us: float = 0.0
    memory_us: float = 0.0
    launch_us: float = 0.0
    dispatch_us: float = 0.0
    autodiff_us: float = 0.0
    per_class_us: dict[str, float] = field(default_factory=dict)
    num_kernels: int = 0

    @property
    def total_ms(self) -> float:
        return self.total_us / 1000.0


def op_class(op_type: str, attrs: dict | None = None) -> str:
    """Operator cost class; grouped convolutions count as 'depthwise'.

    Depthwise convolutions get their own class because frameworks without
    edge-tuned kernels run them far below dense-conv efficiency (visible in
    the paper's Pi data: TF is ~4x closer to PockEngine on ResNet than on
    MobileNetV2/MCUNet).
    """
    cls = OP_CLASS.get(op_type, "elementwise")
    if cls == "gemm" and attrs and int(attrs.get("groups", 1)) > 1:
        return "depthwise"
    return cls


def _quality_for(quality, cls: str) -> float:
    """Resolve a kernel-quality spec (float or per-class dict) for a class."""
    if isinstance(quality, dict):
        return quality.get(cls, quality.get("default", 0.1))
    return float(quality)


def estimate_latency(
    graph: Graph,
    schedule: list[Node],
    device: DeviceSpec,
    *,
    interpreted: bool = False,
    runtime_autodiff: bool = False,
    kernel_quality=1.0,
    layout_optimized: bool = True,
    events: list | None = None,
) -> LatencyReport:
    """Estimate one iteration's latency for ``schedule`` on ``device``.

    Args:
        interpreted: charge one host-language dispatch per op (PyTorch/TF
            eager runtimes).
        runtime_autodiff: charge per-iteration tape construction — the
            overhead Figure 7 contrasts with compile-time differentiation.
        kernel_quality: multiplier on op efficiency — a float, or a dict
            mapping op classes ('gemm', 'depthwise', ...; 'default') to
            multipliers (frameworks without edge-tuned kernels run below
            the device's attainable peak, unevenly across op classes).
        layout_optimized: whether the compiler matched the device layout.
        events: when given, one ``(node_name, op_type, us)`` tuple is
            appended per scheduled node (view ops included at their
            dispatch-only cost) — the input to the runtime profiler's
            chrome-trace export.
    """
    report = LatencyReport()
    fusion_groups: dict[str, int] = graph.metadata.get("fusion_groups", {})
    graph_layout = graph.metadata.get("layout", "NCHW")
    layout_match = layout_optimized and graph_layout == device.preferred_layout
    groups_seen: set[int] = set()
    group_members: dict[int, set[str]] = {}
    for name, gid in fusion_groups.items():
        group_members.setdefault(gid, set()).add(name)
    produced_by: dict[str, str] = {}
    for node in schedule:
        for out in node.outputs:
            produced_by[out] = node.name

    for node in schedule:
        if node.op_type in VIEW_OPS:
            cost = device.host_dispatch_us if interpreted else 0.0
            if interpreted:
                report.dispatch_us += cost
                report.total_us += cost
            if events is not None:
                events.append((node.name, node.op_type, cost))
            continue
        in_specs = [graph.spec(i) for i in node.inputs]
        out_specs = [graph.spec(o) for o in node.outputs]
        cls = op_class(node.op_type, node.attrs)
        flops = op_flops(node.op_type, in_specs, out_specs, node.attrs)
        if node.attrs.get("algo") == "winograd":
            flops /= WINOGRAD_SPEEDUP

        itemsize = min((s.dtype.itemsize for s in out_specs), default=4)
        dev_cls = "gemm" if cls == "depthwise" else cls
        eff = device.efficiency(dev_cls) * _quality_for(kernel_quality, cls)
        if node.op_type in _SPATIAL and not layout_match:
            eff *= LAYOUT_MISMATCH_PENALTY
        peak = device.peak_for(itemsize) * 1e3  # -> flops per microsecond
        compute_us = flops / max(peak * eff, 1e-9)

        gid = fusion_groups.get(node.name)
        if gid is None:
            moved = op_bytes(in_specs, out_specs)
            launch = device.kernel_launch_us
            report.num_kernels += 1
        else:
            members = group_members[gid]
            # Only traffic crossing the group boundary hits memory.
            moved = sum(
                s.nbytes for i, s in zip(node.inputs, in_specs)
                if produced_by.get(i) not in members
            )
            moved += sum(s.nbytes for s in out_specs)
            if gid not in groups_seen:
                groups_seen.add(gid)
                launch = device.kernel_launch_us
                report.num_kernels += 1
            else:
                launch = 0.0
        memory_us = moved / max(device.mem_bw_gbs * 1e3, 1e-9)

        node_us = max(compute_us, memory_us) + launch
        if interpreted:
            node_us += device.host_dispatch_us
            report.dispatch_us += device.host_dispatch_us
        report.compute_us += compute_us
        report.memory_us += memory_us
        report.launch_us += launch
        report.per_class_us[cls] = report.per_class_us.get(cls, 0.0) \
            + max(compute_us, memory_us)
        report.total_us += node_us
        if events is not None:
            events.append((node.name, node.op_type, node_us))

    if runtime_autodiff:
        # Tape construction + bookkeeping: proportional to graph size, paid
        # every iteration on the host CPU.
        tape = 0.9 * device.host_dispatch_us * len(schedule)
        report.autodiff_us = tape
        report.total_us += tape
    return report


def _conv_cols_bytes(in_specs, attrs: dict) -> int:
    """Bytes of the im2col scratch a direct conv materialises per call:
    (cin/groups * kh * kw) x (n * ho * wo), written once and read once."""
    if len(in_specs) < 2:
        return 0
    x, w = in_specs[0], in_specs[1]
    if len(w.shape) < 4 or len(x.shape) < 4:
        return 0
    groups = int(attrs.get("groups", 1)) if attrs else 1
    kh, kw = int(w.shape[2]), int(w.shape[3])
    n = int(x.shape[0])
    elems_out = 1
    cin = int(x.shape[1])
    # Output spatial extent ~= input extent / stride (padding ignored:
    # this feeds a *ranking*, not a wall-clock promise).
    stride = attrs.get("stride", 1) if attrs else 1
    sh, sw = (stride if isinstance(stride, (tuple, list))
              else (stride, stride))
    ho = max(1, int(x.shape[2]) // max(int(sh), 1))
    wo = max(1, int(x.shape[3]) // max(int(sw), 1))
    elems_out = n * ho * wo
    cols = (cin // max(groups, 1)) * kh * kw * elems_out
    return 2 * cols * x.dtype.itemsize  # write + read


class PlanCostModel:
    """Memoized per-instruction roofline estimates for one plan compile.

    The autotune pass scores every candidate kernel variant of every
    lowered instruction. The facts shared across a node's variants — op
    class, FLOPs, boundary byte traffic, attainable peak — are derived
    once per node and cached for the lifetime of the model (one compile),
    so scoring V variants costs V cheap adjustments, not V full
    re-derivations.

    The per-variant adjustments model exactly what the registered variant
    kernels change:

    * ``winograd_precomputed`` — skips the per-call ``U = G g Gᵀ`` weight
      transform (the 2.25x multiply reduction is shared with plain
      ``algo="winograd"``);
    * ``im2col_precomputed`` — skips the im2col scratch copy the base
      direct conv pays (the 1x1 activation feeds the GEMM as a view);
    * ``pretransposed_b`` — lifts the strided-operand GEMM penalty a
      ``trans_b`` matmul pays for reading B through a transposed view.

    Unlike :func:`estimate_latency` (schedule-level, calibration frozen
    since the paper-figure experiments), this model *does* charge direct
    convolutions their im2col traffic and strided GEMMs their packing
    penalty — the candidates it ranks differ in precisely those terms.
    """

    def __init__(self, device: DeviceSpec, *, kernel_quality=1.0,
                 layout_match: bool = True):
        self.device = device
        self.kernel_quality = kernel_quality
        self.layout_match = layout_match
        self._facts: dict[str, tuple] = {}

    def _base_facts(self, key: str, op_type: str, in_specs, out_specs,
                    attrs: dict) -> tuple:
        facts = self._facts.get(key)
        if facts is not None:
            return facts
        cls = op_class(op_type, attrs)
        flops = op_flops(op_type, in_specs, out_specs, attrs)
        moved = op_bytes(in_specs, out_specs)
        itemsize = min((s.dtype.itemsize for s in out_specs), default=4)
        dev_cls = "gemm" if cls == "depthwise" else cls
        eff = self.device.efficiency(dev_cls) \
            * _quality_for(self.kernel_quality, cls)
        if op_type in _SPATIAL and not self.layout_match:
            eff *= LAYOUT_MISMATCH_PENALTY
        peak = self.device.peak_for(itemsize) * 1e3  # flops / microsecond
        facts = (cls, float(flops), float(moved), eff, peak)
        self._facts[key] = facts
        return facts

    def estimate_us(self, key: str, op_type: str, in_specs, out_specs,
                    attrs: dict | None, variant: str = "base") -> float:
        """Latency estimate for one instruction under one kernel variant.

        ``key`` names the node (the memo key); ``variant`` is ``"base"``
        or a registered variant name. Unknown variants cost the same as
        base — the ranking then keeps base, which is always safe.
        """
        attrs = attrs or {}
        cls, flops, moved, eff, peak = self._base_facts(
            key, op_type, in_specs, out_specs, attrs)
        winograd = attrs.get("algo") == "winograd" \
            or variant == "winograd_precomputed"
        if winograd:
            flops = flops / WINOGRAD_SPEEDUP
            if len(in_specs) >= 2 and len(in_specs[1].shape) >= 2:
                w = in_specs[1]
                transform = (_WINOGRAD_TRANSFORM_FLOPS_PER_FILTER
                             * int(w.shape[0]) * int(w.shape[1]))
                if variant != "winograd_precomputed":
                    flops += transform  # base re-derives U every call
        if op_type in ("conv2d", "conv2d_i8") and not winograd:
            if variant != "im2col_precomputed":
                moved += _conv_cols_bytes(in_specs, attrs)
        if op_type in ("matmul", "matmul_i8") and attrs.get("trans_b"):
            if variant != "pretransposed_b":
                eff = eff * STRIDED_GEMM_PENALTY
        compute_us = flops / max(peak * eff, 1e-9)
        memory_us = moved / max(self.device.mem_bw_gbs * 1e3, 1e-9)
        return max(compute_us, memory_us) + self.device.kernel_launch_us
