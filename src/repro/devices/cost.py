"""Per-operator roofline latency model applied to compiled schedules.

For every scheduled node::

    compute_us = flops / (peak(dtype) * efficiency(op_class) * quality)
    memory_us  = bytes_moved / bandwidth
    node_us    = max(compute_us, memory_us) + launch (once per fusion group)
    (+ host_dispatch_us per op for interpreted frameworks)

Winograd-bound convolutions get the 2.25x multiply reduction; a layout
mismatch between the graph and the device's preferred layout halves
spatial-op efficiency (the penalty the layout pass exists to avoid).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import Graph, op_bytes, op_flops
from ..ir.node import Node
from .spec import DeviceSpec

OP_CLASS = {
    "matmul": "gemm", "conv2d": "gemm", "conv2d_dx": "gemm",
    "conv2d_i8": "gemm", "matmul_i8": "gemm",
    "conv2d_dw": "gemm",  # grouped/depthwise variants reclassified per-node
    "maxpool2d": "pool", "avgpool2d": "pool", "maxpool2d_grad": "pool",
    "avgpool2d_grad": "pool", "global_avg_pool": "pool",
    "global_avg_pool_i8": "pool",
    "softmax": "normalize", "log_softmax": "normalize",
    "layernorm": "normalize", "rmsnorm": "normalize",
    "embedding": "gather", "embedding_grad": "gather", "onehot": "gather",
    "apply_sgd": "update", "apply_adam": "update", "apply_lion": "update",
    "reduce_sum": "reduce", "reduce_mean": "reduce", "reduce_max": "reduce",
}

_SPATIAL = {"conv2d", "conv2d_i8", "conv2d_dx", "conv2d_dw", "maxpool2d",
            "avgpool2d"}

#: Metadata-only ops: compiled runtimes implement these as pointer/stride
#: adjustments (zero copies, zero launches). Interpreted frameworks still
#: pay their per-op host dispatch.
VIEW_OPS = {"reshape", "slice"}

WINOGRAD_SPEEDUP = 2.25
LAYOUT_MISMATCH_PENALTY = 0.55


@dataclass
class LatencyReport:
    """Simulated wall-clock for one iteration of a schedule."""

    total_us: float = 0.0
    compute_us: float = 0.0
    memory_us: float = 0.0
    launch_us: float = 0.0
    dispatch_us: float = 0.0
    autodiff_us: float = 0.0
    per_class_us: dict[str, float] = field(default_factory=dict)
    num_kernels: int = 0

    @property
    def total_ms(self) -> float:
        return self.total_us / 1000.0


def op_class(op_type: str, attrs: dict | None = None) -> str:
    """Operator cost class; grouped convolutions count as 'depthwise'.

    Depthwise convolutions get their own class because frameworks without
    edge-tuned kernels run them far below dense-conv efficiency (visible in
    the paper's Pi data: TF is ~4x closer to PockEngine on ResNet than on
    MobileNetV2/MCUNet).
    """
    cls = OP_CLASS.get(op_type, "elementwise")
    if cls == "gemm" and attrs and int(attrs.get("groups", 1)) > 1:
        return "depthwise"
    return cls


def _quality_for(quality, cls: str) -> float:
    """Resolve a kernel-quality spec (float or per-class dict) for a class."""
    if isinstance(quality, dict):
        return quality.get(cls, quality.get("default", 0.1))
    return float(quality)


def estimate_latency(
    graph: Graph,
    schedule: list[Node],
    device: DeviceSpec,
    *,
    interpreted: bool = False,
    runtime_autodiff: bool = False,
    kernel_quality=1.0,
    layout_optimized: bool = True,
    events: list | None = None,
) -> LatencyReport:
    """Estimate one iteration's latency for ``schedule`` on ``device``.

    Args:
        interpreted: charge one host-language dispatch per op (PyTorch/TF
            eager runtimes).
        runtime_autodiff: charge per-iteration tape construction — the
            overhead Figure 7 contrasts with compile-time differentiation.
        kernel_quality: multiplier on op efficiency — a float, or a dict
            mapping op classes ('gemm', 'depthwise', ...; 'default') to
            multipliers (frameworks without edge-tuned kernels run below
            the device's attainable peak, unevenly across op classes).
        layout_optimized: whether the compiler matched the device layout.
        events: when given, one ``(node_name, op_type, us)`` tuple is
            appended per scheduled node (view ops included at their
            dispatch-only cost) — the input to the runtime profiler's
            chrome-trace export.
    """
    report = LatencyReport()
    fusion_groups: dict[str, int] = graph.metadata.get("fusion_groups", {})
    graph_layout = graph.metadata.get("layout", "NCHW")
    layout_match = layout_optimized and graph_layout == device.preferred_layout
    groups_seen: set[int] = set()
    group_members: dict[int, set[str]] = {}
    for name, gid in fusion_groups.items():
        group_members.setdefault(gid, set()).add(name)
    produced_by: dict[str, str] = {}
    for node in schedule:
        for out in node.outputs:
            produced_by[out] = node.name

    for node in schedule:
        if node.op_type in VIEW_OPS:
            cost = device.host_dispatch_us if interpreted else 0.0
            if interpreted:
                report.dispatch_us += cost
                report.total_us += cost
            if events is not None:
                events.append((node.name, node.op_type, cost))
            continue
        in_specs = [graph.spec(i) for i in node.inputs]
        out_specs = [graph.spec(o) for o in node.outputs]
        cls = op_class(node.op_type, node.attrs)
        flops = op_flops(node.op_type, in_specs, out_specs, node.attrs)
        if node.attrs.get("algo") == "winograd":
            flops /= WINOGRAD_SPEEDUP

        itemsize = min((s.dtype.itemsize for s in out_specs), default=4)
        dev_cls = "gemm" if cls == "depthwise" else cls
        eff = device.efficiency(dev_cls) * _quality_for(kernel_quality, cls)
        if node.op_type in _SPATIAL and not layout_match:
            eff *= LAYOUT_MISMATCH_PENALTY
        peak = device.peak_for(itemsize) * 1e3  # -> flops per microsecond
        compute_us = flops / max(peak * eff, 1e-9)

        gid = fusion_groups.get(node.name)
        if gid is None:
            moved = op_bytes(in_specs, out_specs)
            launch = device.kernel_launch_us
            report.num_kernels += 1
        else:
            members = group_members[gid]
            # Only traffic crossing the group boundary hits memory.
            moved = sum(
                s.nbytes for i, s in zip(node.inputs, in_specs)
                if produced_by.get(i) not in members
            )
            moved += sum(s.nbytes for s in out_specs)
            if gid not in groups_seen:
                groups_seen.add(gid)
                launch = device.kernel_launch_us
                report.num_kernels += 1
            else:
                launch = 0.0
        memory_us = moved / max(device.mem_bw_gbs * 1e3, 1e-9)

        node_us = max(compute_us, memory_us) + launch
        if interpreted:
            node_us += device.host_dispatch_us
            report.dispatch_us += device.host_dispatch_us
        report.compute_us += compute_us
        report.memory_us += memory_us
        report.launch_us += launch
        report.per_class_us[cls] = report.per_class_us.get(cls, 0.0) \
            + max(compute_us, memory_us)
        report.total_us += node_us
        if events is not None:
            events.append((node.name, node.op_type, node_us))

    if runtime_autodiff:
        # Tape construction + bookkeeping: proportional to graph size, paid
        # every iteration on the host CPU.
        tape = 0.9 * device.host_dispatch_us * len(schedule)
        report.autodiff_us = tape
        report.total_us += tape
    return report
