"""Simulated edge devices: specifications and the roofline cost model."""

from .catalog import DEVICES, get_device
from .cost import (LAYOUT_MISMATCH_PENALTY, STRIDED_GEMM_PENALTY,
                   WINOGRAD_SPEEDUP, LatencyReport, PlanCostModel,
                   estimate_latency, op_class)
from .energy import (EnergyReport, estimate_energy, local_vs_cloud,
                     transmission_energy_mj)
from .spec import DeviceSpec

__all__ = [
    "DEVICES",
    "DeviceSpec",
    "EnergyReport",
    "estimate_energy",
    "local_vs_cloud",
    "transmission_energy_mj",
    "LAYOUT_MISMATCH_PENALTY",
    "LatencyReport",
    "PlanCostModel",
    "STRIDED_GEMM_PENALTY",
    "WINOGRAD_SPEEDUP",
    "estimate_latency",
    "get_device",
    "op_class",
]
