"""The six edge platforms the paper evaluates (plus helpers).

Numbers start from public hardware specifications and are lightly
calibrated so *ratios* between frameworks land near the paper's (see
DESIGN.md §5 "Calibration" and EXPERIMENTS.md for paper-vs-measured).
"""

from __future__ import annotations

from ..errors import DeviceError
from .spec import DeviceSpec

_CPU_EFF = {"gemm": 0.60, "elementwise": 0.12, "reduce": 0.18,
            "normalize": 0.15, "pool": 0.25, "gather": 0.10, "update": 0.15}
_GPU_EFF = {"gemm": 0.55, "elementwise": 0.10, "reduce": 0.12,
            "normalize": 0.12, "pool": 0.20, "gather": 0.08, "update": 0.12}
_DSP_EFF = {"gemm": 0.70, "elementwise": 0.20, "reduce": 0.20,
            "normalize": 0.18, "pool": 0.30, "gather": 0.10, "update": 0.20}
_MCU_EFF = {"gemm": 0.55, "elementwise": 0.30, "reduce": 0.30,
            "normalize": 0.25, "pool": 0.40, "gather": 0.20, "update": 0.30}

DEVICES: dict[str, DeviceSpec] = {
    spec.key: spec
    for spec in [
        DeviceSpec(
            key="raspberry_pi_4",
            name="Raspberry Pi 4 (4x Cortex-A72)",
            kind="cpu",
            peak_gflops=26.0,          # NEON fp32, TVM-tuned sgemm
            int8_gops=52.0,            # NEON sdot, 2x fp32 throughput
            mem_bw_gbs=6.0,
            kernel_launch_us=1.5,
            host_dispatch_us=220.0,    # Python dispatch on a 1.5 GHz A72
            ram_mb=4096,
            preferred_layout="NHWC",
            op_efficiency=_CPU_EFF,
        ),
        DeviceSpec(
            key="jetson_nano",
            name="NVIDIA Jetson Nano (128-core Maxwell)",
            kind="gpu",
            peak_gflops=235.0,
            fp16_gflops=470.0,
            mem_bw_gbs=25.6,
            kernel_launch_us=14.0,
            host_dispatch_us=150.0,    # Python on the slow A57 host cores
            ram_mb=4096,
            preferred_layout="NCHW",
            op_efficiency=_GPU_EFF,
        ),
        DeviceSpec(
            key="jetson_orin",
            name="NVIDIA Jetson AGX Orin (Ampere GPU)",
            kind="gpu",
            peak_gflops=5300.0,
            fp16_gflops=21000.0,
            int8_gops=42000.0,         # Ampere int8 tensor cores (dense)
            mem_bw_gbs=204.8,
            kernel_launch_us=8.0,
            host_dispatch_us=14.0,
            ram_mb=65536,
            preferred_layout="NCHW",
            op_efficiency=_GPU_EFF,
        ),
        DeviceSpec(
            key="apple_m1",
            name="Apple M1 (8-core GPU, Metal)",
            kind="gpu",
            peak_gflops=2600.0,
            fp16_gflops=5200.0,
            mem_bw_gbs=68.0,
            kernel_launch_us=18.0,     # Metal command-buffer dispatch
            host_dispatch_us=7.0,
            ram_mb=16384,
            preferred_layout="NCHW",
            op_efficiency=_GPU_EFF,
        ),
        DeviceSpec(
            key="snapdragon_cpu",
            name="Snapdragon 8 Gen 1 CPU (Kryo)",
            kind="cpu",
            peak_gflops=58.0,
            int8_gops=116.0,           # Kryo i8mm dot product
            mem_bw_gbs=51.2,
            kernel_launch_us=1.0,
            host_dispatch_us=35.0,
            ram_mb=12288,
            preferred_layout="NHWC",
            op_efficiency=_CPU_EFF,
        ),
        DeviceSpec(
            key="snapdragon_dsp",
            name="Snapdragon 8 Gen 1 Hexagon DSP (SNPE)",
            kind="dsp",
            peak_gflops=1600.0,        # HVX vector engine, fp16-class math
            int8_gops=3200.0,          # HVX int8 MACs, 2x the fp16 rate
            mem_bw_gbs=51.2,
            kernel_launch_us=22.0,     # RPC offload per graph segment
            host_dispatch_us=35.0,
            ram_mb=12288,
            preferred_layout="NHWC",
            op_efficiency=_DSP_EFF,
        ),
        DeviceSpec(
            key="stm32f746",
            name="STM32F746 (Cortex-M7 @ 216 MHz)",
            kind="mcu",
            peak_gflops=0.085,
            int8_gops=0.34,            # SMLAD dual-MAC vs soft fp32
            mem_bw_gbs=0.55,
            kernel_launch_us=0.0,      # bare-metal, statically linked
            host_dispatch_us=900.0,    # if an interpreter could even fit
            ram_mb=0.3125,             # 320 KB SRAM
            preferred_layout="NHWC",
            op_efficiency=_MCU_EFF,
        ),
    ]
}


def get_device(key: str) -> DeviceSpec:
    try:
        return DEVICES[key]
    except KeyError:
        raise DeviceError(
            f"unknown device {key!r}; available: {sorted(DEVICES)}"
        ) from None
