"""Convolution kernels: im2col forward, transposed-conv input gradient,
im2col-matmul weight gradient. Grouped (incl. depthwise) convolutions are
supported throughout.

Layout is NCHW with OIHW weights; the layout pass may annotate nodes with a
``layout`` attribute for cost modelling, but numeric kernels always compute
in NCHW (the transform only affects the *device cost model*, matching how we
simulate hardware rather than own it).
"""

from __future__ import annotations

import numpy as np

from . import kernel
from .elementwise import apply_activation


def _pair(value) -> tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def im2col(x: np.ndarray, kh: int, kw: int, sh: int, sw: int,
           ph: int, pw: int) -> tuple[np.ndarray, int, int]:
    """Unfold ``x`` [N,C,H,W] into columns [N, C*kh*kw, Ho*Wo]."""
    n, c, h, w = x.shape
    ho = (h + 2 * ph - kh) // sh + 1
    wo = (w + 2 * pw - kw) // sw + 1
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    cols = np.empty((n, c, kh, kw, ho, wo), dtype=x.dtype)
    for i in range(kh):
        for j in range(kw):
            cols[:, :, i, j] = xp[:, :, i:i + sh * ho:sh, j:j + sw * wo:sw]
    return cols.reshape(n, c * kh * kw, ho * wo), ho, wo


def col2im(cols: np.ndarray, x_shape: tuple[int, ...], kh: int, kw: int,
           sh: int, sw: int, ph: int, pw: int) -> np.ndarray:
    """Fold columns [N, C*kh*kw, Ho*Wo] back, accumulating overlaps."""
    n, c, h, w = x_shape
    ho = (h + 2 * ph - kh) // sh + 1
    wo = (w + 2 * pw - kw) // sw + 1
    cols = cols.reshape(n, c, kh, kw, ho, wo)
    xp = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            xp[:, :, i:i + sh * ho:sh, j:j + sw * wo:sw] += cols[:, :, i, j]
    return xp[:, :, ph:ph + h, pw:pw + w]


def conv2d_forward(x: np.ndarray, w: np.ndarray, stride=1, padding=0,
                   groups: int = 1) -> np.ndarray:
    """Plain (direct, im2col-backed) convolution forward."""
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    n, cin, _, _ = x.shape
    cout, cin_g, kh, kw = w.shape
    if groups == 1:
        cols, ho, wo = im2col(x, kh, kw, sh, sw, ph, pw)
        # (cout, k) @ (n, k, l) broadcasts over the batch dim -> (n, cout, l)
        y = w.reshape(cout, -1) @ cols
        return y.reshape(n, cout, ho, wo)
    # Grouped path: split channels, convolve per group, concatenate.
    outs = []
    cg_out = cout // groups
    for g in range(groups):
        xg = x[:, g * cin_g:(g + 1) * cin_g]
        wg = w[g * cg_out:(g + 1) * cg_out]
        cols, ho, wo = im2col(xg, kh, kw, sh, sw, ph, pw)
        yg = wg.reshape(cg_out, -1) @ cols
        outs.append(yg.reshape(n, cg_out, ho, wo))
    return np.concatenate(outs, axis=1)


@kernel("conv2d")
def _conv2d(inputs, attrs):
    x, w = inputs[0], inputs[1]
    algo = attrs.get("algo", "direct")
    if algo == "winograd":
        from .winograd import winograd_conv2d

        y = winograd_conv2d(x, w, padding=attrs.get("padding", 0))
    else:
        y = conv2d_forward(x, w, attrs.get("stride", 1),
                           attrs.get("padding", 0),
                           int(attrs.get("groups", 1)))
    if len(inputs) == 3:  # fused bias
        y = y + inputs[2].reshape(1, -1, 1, 1)
    return [apply_activation(y, attrs.get("activation"))]


@kernel("conv2d_dx")
def _conv2d_dx(inputs, attrs):
    grad, w = inputs
    sh, sw = _pair(attrs.get("stride", 1))
    ph, pw = _pair(attrs.get("padding", 0))
    groups = int(attrs.get("groups", 1))
    in_shape = tuple(int(d) for d in attrs["input_shape"])
    n, cin, h, wdim = in_shape
    cout, cin_g, kh, kw = w.shape
    if groups == 1:
        g2 = grad.reshape(n, cout, -1)
        dcols = np.einsum("ok,nol->nkl", w.reshape(cout, -1), g2,
                          optimize=True)
        return [col2im(dcols, in_shape, kh, kw, sh, sw, ph, pw)]
    cg_out = cout // groups
    dx = np.empty(in_shape, dtype=grad.dtype)
    for g in range(groups):
        gg = grad[:, g * cg_out:(g + 1) * cg_out].reshape(n, cg_out, -1)
        wg = w[g * cg_out:(g + 1) * cg_out].reshape(cg_out, -1)
        dcols = np.einsum("ok,nol->nkl", wg, gg, optimize=True)
        gshape = (n, cin_g, h, wdim)
        dx[:, g * cin_g:(g + 1) * cin_g] = col2im(
            dcols, gshape, kh, kw, sh, sw, ph, pw)
    return [dx]


@kernel("conv2d_dw")
def _conv2d_dw(inputs, attrs):
    x, grad = inputs
    sh, sw = _pair(attrs.get("stride", 1))
    ph, pw = _pair(attrs.get("padding", 0))
    groups = int(attrs.get("groups", 1))
    kh, kw = _pair(attrs["kernel_hw"])
    n, cin, _, _ = x.shape
    cout = grad.shape[1]
    cin_g = cin // groups
    if groups == 1:
        cols, _, _ = im2col(x, kh, kw, sh, sw, ph, pw)
        g2 = grad.reshape(n, cout, -1)
        dw = np.einsum("nol,nkl->ok", g2, cols, optimize=True)
        return [dw.reshape(cout, cin, kh, kw)]
    cg_out = cout // groups
    dw = np.empty((cout, cin_g, kh, kw), dtype=x.dtype)
    for g in range(groups):
        xg = x[:, g * cin_g:(g + 1) * cin_g]
        gg = grad[:, g * cg_out:(g + 1) * cg_out].reshape(n, cg_out, -1)
        cols, _, _ = im2col(xg, kh, kw, sh, sw, ph, pw)
        dwg = np.einsum("nol,nkl->ok", gg, cols, optimize=True)
        dw[g * cg_out:(g + 1) * cg_out] = dwg.reshape(cg_out, cin_g, kh, kw)
    return [dw]
