"""Convolution kernels: im2col forward, transposed-conv input gradient,
im2col-matmul weight gradient. Grouped (incl. depthwise) convolutions are
supported throughout.

Layout is NCHW with OIHW weights; the layout pass may annotate nodes with a
``layout`` attribute for cost modelling, but numeric kernels always compute
in NCHW (the transform only affects the *device cost model*, matching how we
simulate hardware rather than own it).
"""

from __future__ import annotations

import numpy as np

from . import kernel, register_transform, variant_kernel, workspace
from .elementwise import apply_activation


#: parsed stride/padding pairs, keyed by the raw attr value. Conv graphs
#: carry a handful of distinct configurations but the kernels parse them on
#: every step, so a tiny memo removes the per-call int() churn.
_PAIR_CACHE: dict = {}


def _pair(value) -> tuple[int, int]:
    key = (value[0], value[1]) if isinstance(value, (tuple, list)) else value
    try:
        return _PAIR_CACHE[key]
    except KeyError:
        pass
    except TypeError:  # unhashable attr value — parse without caching
        key = None
    pair = (int(value[0]), int(value[1])) \
        if isinstance(value, (tuple, list)) else (int(value), int(value))
    if key is not None:
        _PAIR_CACHE[key] = pair
    return pair


def _pad2d(x: np.ndarray, ph: int, pw: int) -> np.ndarray:
    """Zero-pad H/W. np.pad's generic machinery costs tens of µs per call,
    which dominates small-resolution convs; border-zero + interior-assign
    is ~5x cheaper, writes every element exactly once (so the buffer can
    come from the recycled workspace), and padding-free convs (every 1x1)
    skip the copy entirely."""
    if ph == 0 and pw == 0:
        return x
    n, c, h, w = x.shape
    xp = workspace.take((n, c, h + 2 * ph, w + 2 * pw), x.dtype)
    xp[:, :, :ph] = 0
    xp[:, :, ph + h:] = 0
    xp[:, :, ph:ph + h, :pw] = 0
    xp[:, :, ph:ph + h, pw + w:] = 0
    xp[:, :, ph:ph + h, pw:pw + w] = x
    return xp


def im2col(x: np.ndarray, kh: int, kw: int, sh: int, sw: int,
           ph: int, pw: int) -> tuple[np.ndarray, int, int]:
    """Unfold ``x`` [N,C,H,W] into columns [N, C*kh*kw, Ho*Wo].

    The column matrix is workspace scratch: callers that finish consuming
    it (and every view of it) should hand it back via
    :func:`repro.kernels.workspace.give` so the next step's unfold
    recycles the buffer instead of allocating.
    """
    n, c, h, w = x.shape
    ho = (h + 2 * ph - kh) // sh + 1
    wo = (w + 2 * pw - kw) // sw + 1
    xp = _pad2d(x, ph, pw)
    cols = workspace.take((n, c, kh, kw, ho, wo), x.dtype)
    for i in range(kh):
        for j in range(kw):
            cols[:, :, i, j] = xp[:, :, i:i + sh * ho:sh, j:j + sw * wo:sw]
    if xp is not x:  # pad scratch dies here; the input is caller-owned
        workspace.give(xp)
    return cols.reshape(n, c * kh * kw, ho * wo), ho, wo


def col2im(cols: np.ndarray, x_shape: tuple[int, ...], kh: int, kw: int,
           sh: int, sw: int, ph: int, pw: int) -> np.ndarray:
    """Fold columns [N, C*kh*kw, Ho*Wo] back, accumulating overlaps.

    The padded fold target is workspace scratch (the last un-pooled conv
    scratch path): for padded convs it is copied out and recycled, so each
    step's fold reuses the previous step's buffer instead of allocating.
    Padding-free folds return the buffer itself — it escapes the kernel as
    the gradient, so it is deliberately never given back (take-without-
    give is always safe; the plan's arena recycles it downstream instead).
    """
    n, c, h, w = x_shape
    ho = (h + 2 * ph - kh) // sh + 1
    wo = (w + 2 * pw - kw) // sw + 1
    cols = cols.reshape(n, c, kh, kw, ho, wo)
    xp = workspace.take((n, c, h + 2 * ph, w + 2 * pw), cols.dtype)
    xp[...] = 0
    for i in range(kh):
        for j in range(kw):
            xp[:, :, i:i + sh * ho:sh, j:j + sw * wo:sw] += cols[:, :, i, j]
    if ph == 0 and pw == 0:
        return xp
    # Copy the interior out instead of returning a strided view: values are
    # identical, the scratch can be recycled, and the contiguous result is
    # arena-poolable downstream (the view never was).
    dx = np.empty((n, c, h, w), dtype=cols.dtype)
    dx[...] = xp[:, :, ph:ph + h, pw:pw + w]
    workspace.give(xp)
    return dx


#: im2col scratch bound for grouped convs: chunks of groups are unfolded
#: and matmul'd together (a per-group Python loop is an order of magnitude
#: slower on depthwise MBConv stacks, but unfolding *all* groups at once
#: would multiply kernel-side scratch ~groups-fold on big inputs — scratch
#: the transient-bytes accounting can't see).
_GROUP_SCRATCH_CAP = 16 << 20


def _group_chunk(groups: int, bytes_per_group: int) -> int:
    """How many groups to unfold per chunk under the scratch cap."""
    return max(1, min(groups, _GROUP_SCRATCH_CAP // max(1, bytes_per_group)))


def conv2d_forward(x: np.ndarray, w: np.ndarray, stride=1, padding=0,
                   groups: int = 1) -> np.ndarray:
    """Plain (direct, im2col-backed) convolution forward."""
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    n, cin, _, _ = x.shape
    cout, cin_g, kh, kw = w.shape
    if groups == 1:
        cols, ho, wo = im2col(x, kh, kw, sh, sw, ph, pw)
        # (cout, k) @ (n, k, l) broadcasts over the batch dim -> (n, cout, l)
        y = w.reshape(cout, -1) @ cols
        workspace.give(cols)
        return y.reshape(n, cout, ho, wo)
    # Grouped path: batched matmul over (batch, group) chunks — im2col's
    # column layout is channel-major, so each group's rows are contiguous.
    cg_out = cout // groups
    k = cin_g * kh * kw
    ho = (x.shape[2] + 2 * ph - kh) // sh + 1
    wo = (x.shape[3] + 2 * pw - kw) // sw + 1
    chunk = _group_chunk(groups, n * k * ho * wo * x.itemsize)
    wg = w.reshape(groups, cg_out, k)
    outs = []
    for g0 in range(0, groups, chunk):
        g1 = min(groups, g0 + chunk)
        xg = x[:, g0 * cin_g:g1 * cin_g]
        cols, ho, wo = im2col(xg, kh, kw, sh, sw, ph, pw)
        colsg = cols.reshape(n, g1 - g0, k, ho * wo)
        yg = np.matmul(wg[None, g0:g1], colsg)  # (n, g1-g0, cg_out, l)
        workspace.give(cols)  # next chunk's im2col recycles the buffer
        outs.append(yg.reshape(n, (g1 - g0) * cg_out, ho, wo))
    return outs[0] if len(outs) == 1 else np.concatenate(outs, axis=1)


@kernel("conv2d")
def _conv2d(inputs, attrs):
    x, w = inputs[0], inputs[1]
    algo = attrs.get("algo", "direct")
    if algo == "winograd":
        from .winograd import winograd_conv2d

        y = winograd_conv2d(x, w, padding=attrs.get("padding", 0))
    else:
        y = conv2d_forward(x, w, attrs.get("stride", 1),
                           attrs.get("padding", 0),
                           int(attrs.get("groups", 1)))
    if len(inputs) == 3:  # fused bias
        y = y + inputs[2].reshape(1, -1, 1, 1)
    return [apply_activation(y, attrs.get("activation"))]


@variant_kernel("conv2d", "winograd_precomputed")
def _conv2d_winograd_precomputed(inputs, attrs):
    """Winograd conv with the weight transform hoisted to a plan slot.

    The precompute_frozen pass appends the plan-owned ``U`` as the trailing
    input; everything else mirrors the ``algo == "winograd"`` branch of the
    base kernel, so outputs are bitwise identical — the transform was
    computed by the same function the base kernel would call inline.
    """
    from .winograd import winograd_conv2d

    x, w, u = inputs[0], inputs[1], inputs[-1]
    y = winograd_conv2d(x, w, padding=attrs.get("padding", 0), u=u)
    if len(inputs) == 4:  # fused bias rides between the weights and U
        y = y + inputs[2].reshape(1, -1, 1, 1)
    return [apply_activation(y, attrs.get("activation"))]


@register_transform("im2col_weight")
def _im2col_weight(w: np.ndarray) -> np.ndarray:
    """Flatten a 1x1 OIHW weight to the (cout, cin) GEMM operand.

    Exactly the ``w.reshape(cout, -1)`` the base kernel performs inline
    for a 1x1/pad-0/groups-1 conv, made contiguous once (for contiguous
    state this is a free view of the same buffer).
    """
    return np.ascontiguousarray(w.reshape(w.shape[0], -1))


@variant_kernel("conv2d", "im2col_precomputed")
def _conv2d_im2col_precomputed(inputs, attrs):
    """1x1/pad-0/groups-1 conv with the weight pre-flattened to 2-D.

    For these convs im2col is a pure copy: every "column" is just the
    (strided) activation itself. The variant feeds the activation straight
    into the GEMM as a reshape view — skipping the whole-activation
    workspace copy the base kernel pays — with the plan-owned flattened
    weight as the trailing input. Bitwise identity with the base kernel
    holds because both GEMM operands keep the exact layout (C-contiguous)
    and values the base path produces.
    """
    x, w2 = inputs[0], inputs[-1]
    sh, sw = _pair(attrs.get("stride", 1))
    n, cin, h, wdim = x.shape
    cout = w2.shape[0]
    if sh == 1 and sw == 1:
        cols = np.ascontiguousarray(x).reshape(n, cin, h * wdim)
        ho, wo = h, wdim
    else:
        sub = x[:, :, ::sh, ::sw]
        ho, wo = sub.shape[2], sub.shape[3]
        cols = np.ascontiguousarray(sub).reshape(n, cin, ho * wo)
    y = (w2 @ cols).reshape(n, cout, ho, wo)
    if len(inputs) == 4:  # fused bias rides between the weights and w2
        y = y + inputs[2].reshape(1, -1, 1, 1)
    return [apply_activation(y, attrs.get("activation"))]


@kernel("conv2d_dx")
def _conv2d_dx(inputs, attrs):
    grad, w = inputs
    sh, sw = _pair(attrs.get("stride", 1))
    ph, pw = _pair(attrs.get("padding", 0))
    groups = int(attrs.get("groups", 1))
    in_shape = tuple(int(d) for d in attrs["input_shape"])
    n, cin, h, wdim = in_shape
    cout, cin_g, kh, kw = w.shape
    if groups == 1:
        g2 = grad.reshape(n, cout, -1)
        # Batched w^T @ grad (einsum would re-derive its contraction path
        # on every call, ~50µs of pure overhead per node).
        dcols = np.matmul(w.reshape(cout, -1).transpose()[None], g2)
        return [col2im(dcols, in_shape, kh, kw, sh, sw, ph, pw)]
    # Grouped path, vectorised over group chunks: scatter each chunk's
    # column gradients into a channel-major block and fold it back with one
    # col2im per chunk (scratch bounded by _GROUP_SCRATCH_CAP).
    cg_out = cout // groups
    k = cin_g * kh * kw
    l = grad.shape[2] * grad.shape[3]
    g2 = grad.reshape(n, groups, cg_out, l)
    wgT = w.reshape(groups, cg_out, k).transpose(0, 2, 1)
    chunk = _group_chunk(groups, n * k * l * grad.itemsize)
    if chunk >= groups:
        dcols = np.matmul(wgT[None], g2).reshape(n, cin * kh * kw, l)
        return [col2im(dcols, in_shape, kh, kw, sh, sw, ph, pw)]
    dx = np.empty(in_shape, dtype=grad.dtype)
    for g0 in range(0, groups, chunk):
        g1 = min(groups, g0 + chunk)
        dcols = np.matmul(wgT[None, g0:g1], g2[:, g0:g1])
        dcols = dcols.reshape(n, (g1 - g0) * k, l)
        dx[:, g0 * cin_g:g1 * cin_g] = col2im(
            dcols, (n, (g1 - g0) * cin_g, h, wdim), kh, kw, sh, sw, ph, pw)
    return [dx]


@kernel("conv2d_dw")
def _conv2d_dw(inputs, attrs):
    x, grad = inputs
    sh, sw = _pair(attrs.get("stride", 1))
    ph, pw = _pair(attrs.get("padding", 0))
    groups = int(attrs.get("groups", 1))
    kh, kw = _pair(attrs["kernel_hw"])
    n, cin, _, _ = x.shape
    cout = grad.shape[1]
    cin_g = cin // groups
    if groups == 1:
        cols, _, _ = im2col(x, kh, kw, sh, sw, ph, pw)
        g2 = grad.reshape(n, cout, -1)
        dw = np.tensordot(g2, cols, axes=([0, 2], [0, 2]))
        workspace.give(cols)
        return [dw.reshape(cout, cin, kh, kw)]
    # Grouped path: batched grad @ cols^T per (batch, group) chunk,
    # reduced over the batch (scratch bounded by _GROUP_SCRATCH_CAP).
    cg_out = cout // groups
    k = cin_g * kh * kw
    l = grad.shape[2] * grad.shape[3]
    g2 = grad.reshape(n, groups, cg_out, l)
    chunk = _group_chunk(groups, n * k * l * x.itemsize)
    dw = np.empty((cout, cin_g, kh, kw), dtype=x.dtype)
    for g0 in range(0, groups, chunk):
        g1 = min(groups, g0 + chunk)
        xg = x[:, g0 * cin_g:g1 * cin_g]
        cols, _, _ = im2col(xg, kh, kw, sh, sw, ph, pw)
        colsg = cols.reshape(n, g1 - g0, k, l)
        dwg = np.matmul(g2[:, g0:g1], colsg.transpose(0, 1, 3, 2)).sum(axis=0)
        workspace.give(cols)
        dw[g0 * cg_out:g1 * cg_out] = dwg.reshape(
            (g1 - g0) * cg_out, cin_g, kh, kw)
    return [dw]
