"""Normalization and softmax kernels (numerically stable)."""

from __future__ import annotations

import numpy as np

from . import kernel


@kernel("softmax")
def _softmax(inputs, attrs):
    x = inputs[0]
    axis = int(attrs.get("axis", -1))
    shifted = x - x.max(axis=axis, keepdims=True)
    ex = np.exp(shifted)
    return [ex / ex.sum(axis=axis, keepdims=True)]


@kernel("log_softmax")
def _log_softmax(inputs, attrs):
    x = inputs[0]
    axis = int(attrs.get("axis", -1))
    shifted = x - x.max(axis=axis, keepdims=True)
    logsum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    return [shifted - logsum]


@kernel("layernorm")
def _layernorm(inputs, attrs):
    x, gamma, beta = inputs
    eps = float(attrs.get("eps", 1e-5))
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    xhat = (x - mean) / np.sqrt(var + eps)
    return [(xhat * gamma + beta).astype(x.dtype)]


@kernel("rmsnorm")
def _rmsnorm(inputs, attrs):
    x, gamma = inputs
    eps = float(attrs.get("eps", 1e-6))
    ms = np.mean(x * x, axis=-1, keepdims=True)
    return [(x / np.sqrt(ms + eps) * gamma).astype(x.dtype)]
