"""Winograd F(2x2, 3x3) convolution.

The paper's kernel-selection pass binds *frozen* 3x3 stride-1 convolutions
to Winograd: the weight transform ``U = G g Gᵀ`` is precomputable only when
weights do not change between iterations, which is exactly the situation
sparse backpropagation creates (section 3.2, "Functional-Preserving Graph
Transformation").

F(2x2, 3x3) computes a 2x2 output tile from a 4x4 input tile using 16
multiplies instead of 36 — a 2.25x multiply reduction.
"""

from __future__ import annotations

import numpy as np

from . import register_transform

# Input transform Bᵀ (4x4), weight transform G (4x3), output transform Aᵀ (2x4).
BT = np.array(
    [[1, 0, -1, 0],
     [0, 1, 1, 0],
     [0, -1, 1, 0],
     [0, 1, 0, -1]], dtype=np.float32)
G = np.array(
    [[1, 0, 0],
     [0.5, 0.5, 0.5],
     [0.5, -0.5, 0.5],
     [0, 0, 1]], dtype=np.float32)
AT = np.array(
    [[1, 1, 1, 0],
     [0, 1, -1, -1]], dtype=np.float32)


def transform_weights(w: np.ndarray) -> np.ndarray:
    """Precompute ``U = G g Gᵀ`` for every (cout, cin) filter: -> [O,I,4,4]."""
    return np.einsum("aj,oijk,bk->oiab", G, w, G, optimize=True)


@register_transform("winograd_weight")
def precompute_weight_transform(w: np.ndarray) -> np.ndarray:
    """The plan-level precompute entry point for frozen conv weights.

    Exactly the computation :func:`winograd_conv2d` performs inline when no
    ``u`` is supplied — same cast, same einsum — so hoisting it to a
    plan-owned slot is bitwise-safe as long as ``w`` never changes (which
    is what "frozen under the sparse scheme" guarantees). The executor
    caches the result per session, keyed on the source array's identity.
    """
    return transform_weights(np.asarray(w).astype(np.float32))


def winograd_conv2d(x: np.ndarray, w: np.ndarray, padding=0,
                    u: np.ndarray | None = None) -> np.ndarray:
    """3x3 stride-1 convolution via Winograd F(2x2,3x3).

    Args:
        x: input [N, C, H, W].
        w: weights [O, C, 3, 3].
        padding: symmetric spatial padding (int or pair).
        u: optional precomputed weight transform (frozen weights).
    """
    if w.shape[2:] != (3, 3):
        raise ValueError("winograd kernel requires 3x3 filters")
    if isinstance(padding, (tuple, list)):
        ph, pw = int(padding[0]), int(padding[1])
    else:
        ph = pw = int(padding)
    n, c, h, wd = x.shape
    cout = w.shape[0]
    ho, wo = h + 2 * ph - 2, wd + 2 * pw - 2
    # Pad so output dims are even (tile size 2), plus conv padding.
    tile_h, tile_w = (ho + 1) // 2, (wo + 1) // 2
    hp, wp = 2 * tile_h + 2, 2 * tile_w + 2
    xp = np.zeros((n, c, hp, wp), dtype=np.float32)
    xp[:, :, ph:ph + h, pw:pw + wd] = x

    if u is None:
        u = transform_weights(w.astype(np.float32))

    # Gather 4x4 tiles with stride 2: [N, C, T_h, T_w, 4, 4]
    tiles = np.empty((n, c, tile_h, tile_w, 4, 4), dtype=np.float32)
    for i in range(4):
        for j in range(4):
            tiles[..., i, j] = xp[:, :, i:i + 2 * tile_h:2, j:j + 2 * tile_w:2]
    # V = Bᵀ d B
    v = np.einsum("ai,nctuij,bj->nctuab", BT, tiles, BT, optimize=True)
    # Elementwise multiply in the transform domain, sum over input channels.
    m = np.einsum("ocab,nctuab->notuab", u, v, optimize=True)
    # Y = Aᵀ m A per tile -> [N, O, T_h, T_w, 2, 2]
    y = np.einsum("ai,notuij,bj->notuab", AT, m, AT, optimize=True)
    out = y.transpose(0, 1, 2, 4, 3, 5).reshape(n, cout, 2 * tile_h, 2 * tile_w)
    return np.ascontiguousarray(out[:, :, :ho, :wo]).astype(x.dtype)
