"""Shape-manipulation kernels: reshape, transpose, slice, concat, pad."""

from __future__ import annotations

import numpy as np

from . import kernel


@kernel("reshape", view=True)
def _reshape(inputs, attrs):
    return [inputs[0].reshape(tuple(attrs["shape"]))]


@kernel("transpose", view=True)
def _transpose(inputs, attrs):
    return [np.transpose(inputs[0], tuple(attrs["perm"]))]


# view=True: ascontiguousarray returns the sliced view itself whenever the
# slice happens to be contiguous.
@kernel("slice", view=True)
def _slice(inputs, attrs):
    x = inputs[0]
    axis, start, end = attrs["axis"], attrs["start"], attrs["end"]
    index = [slice(None)] * x.ndim
    index[axis] = slice(start, end)
    return [np.ascontiguousarray(x[tuple(index)])]


@kernel("concat")
def _concat(inputs, attrs):
    return [np.concatenate(inputs, axis=attrs["axis"])]


@kernel("pad")
def _pad(inputs, attrs):
    pads = [tuple(p) for p in attrs["pads"]]
    return [np.pad(inputs[0], pads)]


@kernel("broadcast_to")
def _broadcast_to(inputs, attrs):
    return [np.broadcast_to(inputs[0], tuple(attrs["shape"])).copy()]
