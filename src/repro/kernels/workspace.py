"""Kernel scratch workspaces: arena-recycled im2col/pad buffers.

Kernels like conv2d allocate large internal scratch (the unfolded im2col
column matrix, the padded input) that the graph-level accounting never
sees: the buffers are born and die inside one kernel call. Under the plan
executor those allocations repeat with identical shapes every step, so
they are perfect arena fodder — this module lets kernels borrow scratch
from the *executor's* :class:`~repro.runtime.plan.BufferArena` without
changing the kernel calling convention.

Mechanics:

* the executor installs a workspace arena for the duration of a plan run
  (:func:`set_arena`; thread-local, so concurrent sessions on scheduler
  threads never share scratch);
* kernels call :func:`take` for scratch and :func:`give` it back once the
  consuming computation is done. With no arena installed (interpreter
  backend, direct kernel calls in tests) both degrade to plain
  ``np.empty`` / no-op, keeping the interpreter a pure oracle.

Safety rules (the givers are audited, not the pool):

* a taken buffer must be **fully overwritten** before use — recycled
  memory carries the previous step's bytes;
* :func:`give` only after the last read of the buffer *and* of every view
  into it, and only for buffers that cannot have escaped the kernel;
* pooled buffers are capped at :data:`POOL_MAX_BYTES` (the same 16MB
  bound conv2d's grouped-chunking enforces for scratch), so the workspace
  can never retain more than a step's bounded scratch footprint.

Results stay bitwise identical: scratch content is fully determined
before use and recycled buffers share shape/dtype/layout with the fresh
allocation they replace, so every downstream BLAS call sees identical
inputs in identical memory order.
"""

from __future__ import annotations

import threading

import numpy as np

#: never pool a single scratch buffer larger than this (matches the
#: grouped-conv scratch chunking bound in :mod:`repro.kernels.conv2d`)
POOL_MAX_BYTES = 16 << 20

_tls = threading.local()


def set_arena(arena):
    """Install ``arena`` as this thread's workspace; returns the previous
    one so callers can restore it (executor run scopes nest safely)."""
    previous = getattr(_tls, "arena", None)
    _tls.arena = arena
    return previous


def current_arena():
    return getattr(_tls, "arena", None)


def take(shape, dtype) -> np.ndarray:
    """Borrow an uninitialised scratch buffer of exactly ``shape``/``dtype``.

    Recycles from the installed arena when possible; the caller MUST write
    every element before reading any.
    """
    shape = tuple(shape)
    arena = getattr(_tls, "arena", None)
    if arena is None:
        return np.empty(shape, dtype)
    buffer = arena.take((shape, np.dtype(dtype)))
    if buffer is None:
        buffer = np.empty(shape, dtype)
    return buffer


def give(array: np.ndarray) -> None:
    """Return a buffer taken via :func:`take` (or any view of it).

    Resolves views back to their owning allocation so callers can hand
    back the reshaped column matrix they actually used. No-op without an
    arena, for foreign/non-contiguous memory, or past the size cap —
    forgetting to give is always safe, it just skips recycling.
    """
    arena = getattr(_tls, "arena", None)
    if arena is None:
        return
    base = array
    while isinstance(base.base, np.ndarray):
        base = base.base
    if not base.flags.c_contiguous or not base.flags.owndata:
        return
    if base.nbytes > POOL_MAX_BYTES:
        return
    arena.give((base.shape, base.dtype), base)
