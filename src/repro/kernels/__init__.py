"""Reference numpy kernels for every registered operator.

The executor dispatches through :data:`KERNELS`; each kernel takes the
node's input arrays and attribute dict and returns the output arrays.
Kernels never mutate their inputs, with the single documented exception of
the ``apply_*`` optimizer ops which update parameters and optimizer state
in place (that in-place behaviour is what the reorder pass exploits to
shrink gradient-buffer lifetimes).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..errors import ExecutionError

Kernel = Callable[[list[np.ndarray], dict[str, Any]], list[np.ndarray]]

KERNELS: dict[str, Kernel] = {}


def kernel(name: str) -> Callable[[Kernel], Kernel]:
    """Decorator registering a kernel for operator ``name``."""

    def wrap(fn: Kernel) -> Kernel:
        KERNELS[name] = fn
        return fn

    return wrap


def run_op(op_type: str, inputs: list[np.ndarray],
           attrs: dict[str, Any]) -> list[np.ndarray]:
    """Execute one operator; raises :class:`ExecutionError` on failure."""
    try:
        fn = KERNELS[op_type]
    except KeyError:
        raise ExecutionError(f"no kernel registered for op {op_type!r}") from None
    return fn(inputs, attrs)


# Importing the submodules populates the registry.
from . import conv2d  # noqa: E402,F401
from . import elementwise  # noqa: E402,F401
from . import embedding  # noqa: E402,F401
from . import matmul  # noqa: E402,F401
from . import norm  # noqa: E402,F401
from . import optim  # noqa: E402,F401
from . import pooling  # noqa: E402,F401
from . import quantized  # noqa: E402,F401
from . import reduce  # noqa: E402,F401
from . import shape  # noqa: E402,F401
from . import winograd  # noqa: E402,F401

__all__ = ["KERNELS", "kernel", "run_op"]
