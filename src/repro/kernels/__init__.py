"""Reference numpy kernels for every registered operator.

The executor dispatches through :data:`KERNELS`; each kernel takes the
node's input arrays and attribute dict and returns the output arrays.
Kernels never mutate their inputs, with the single documented exception of
the ``apply_*`` optimizer ops which update parameters and optimizer state
in place (that in-place behaviour is what the reorder pass exploits to
shrink gradient-buffer lifetimes).

Beyond the base registry, kernels can advertise properties the compiled
execution plan (:mod:`repro.runtime.plan`) exploits to reach a zero-alloc
steady-state step:

* ``view=True`` kernels (:data:`VIEW_OPS`) may return an array aliasing one
  of their inputs (reshape/transpose/slice). The plan never recycles the
  buffers such values touch. Every kernel that can return an input alias
  MUST be registered with ``view=True`` — the arena's safety analysis
  depends on this list being complete.
* :data:`OUT_KERNELS` are variants accepting a preallocated output buffer
  (``fn(inputs, attrs, out) -> out``); they must write results bitwise
  identical to the base kernel. :data:`OUT_ALIAS_SAFE` marks those whose
  ``out`` may alias an input of the same shape (elementwise ufuncs), which
  enables input donation.
* :data:`DONATING_KERNELS` are variants that may clobber the inputs listed
  in :data:`DONATED_INPUTS` as scratch (the in-place optimizer applies use
  the dying gradient buffer to avoid temporaries). Outputs must again be
  bitwise identical to the base kernel's.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..errors import ExecutionError

Kernel = Callable[[list[np.ndarray], dict[str, Any]], list[np.ndarray]]
OutKernel = Callable[[list[np.ndarray], dict[str, Any], np.ndarray],
                     np.ndarray]

KERNELS: dict[str, Kernel] = {}

#: ops whose kernel may return a view aliasing an input array
VIEW_OPS: set[str] = set()

#: single-output variants writing into a caller-provided buffer
OUT_KERNELS: dict[str, OutKernel] = {}

#: out-capable ops where ``out`` may alias a same-shape input
OUT_ALIAS_SAFE: set[str] = set()

#: variants that may clobber specific inputs as scratch space
DONATING_KERNELS: dict[str, Kernel] = {}

#: op -> input indices the donating variant may clobber
DONATED_INPUTS: dict[str, tuple[int, ...]] = {}

#: (op, variant name) -> special kernel forms the plan's optimization
#: passes select (e.g. ``("conv2d", "winograd_precomputed")`` takes the
#: hoisted weight transform as an extra trailing input). Outputs must be
#: bitwise identical to the base kernel's.
VARIANT_KERNELS: dict[tuple[str, str], Kernel] = {}

#: transform name -> fn(array) -> array, applied once to frozen state to
#: fill a plan-owned precomputed slot (:mod:`repro.runtime.passes.
#: precompute_frozen`). Must be deterministic: the hoist is bitwise-safe
#: only because recomputing yields identical bytes.
PRECOMPUTE_TRANSFORMS: dict[str, Callable[[np.ndarray], np.ndarray]] = {}


def kernel(name: str, *, view: bool = False) -> Callable[[Kernel], Kernel]:
    """Decorator registering a kernel for operator ``name``.

    ``view=True`` declares that the kernel may return an array aliasing an
    input; the execution plan then excludes the involved buffers from arena
    recycling.
    """

    def wrap(fn: Kernel) -> Kernel:
        KERNELS[name] = fn
        if view:
            VIEW_OPS.add(name)
        return fn

    return wrap


def out_kernel(name: str, *, alias_safe: bool = False
               ) -> Callable[[OutKernel], OutKernel]:
    """Decorator registering an ``out=``-writing variant for ``name``."""

    def wrap(fn: OutKernel) -> OutKernel:
        OUT_KERNELS[name] = fn
        if alias_safe:
            OUT_ALIAS_SAFE.add(name)
        return fn

    return wrap


def donating_kernel(name: str, clobbers: tuple[int, ...]
                    ) -> Callable[[Kernel], Kernel]:
    """Decorator registering a variant allowed to clobber ``clobbers``."""

    def wrap(fn: Kernel) -> Kernel:
        DONATING_KERNELS[name] = fn
        DONATED_INPUTS[name] = tuple(clobbers)
        return fn

    return wrap


def variant_kernel(name: str, variant: str) -> Callable[[Kernel], Kernel]:
    """Decorator registering a special plan-selected variant of ``name``."""

    def wrap(fn: Kernel) -> Kernel:
        VARIANT_KERNELS[(name, variant)] = fn
        return fn

    return wrap


def register_transform(name: str):
    """Decorator registering a precompute transform under ``name``."""

    def wrap(fn):
        PRECOMPUTE_TRANSFORMS[name] = fn
        return fn

    return wrap


def run_op(op_type: str, inputs: list[np.ndarray],
           attrs: dict[str, Any]) -> list[np.ndarray]:
    """Execute one operator; raises :class:`ExecutionError` on failure."""
    try:
        fn = KERNELS[op_type]
    except KeyError:
        raise ExecutionError(f"no kernel registered for op {op_type!r}") from None
    return fn(inputs, attrs)


# Importing the submodules populates the registry.
from . import conv2d  # noqa: E402,F401
from . import elementwise  # noqa: E402,F401
from . import embedding  # noqa: E402,F401
from . import matmul  # noqa: E402,F401
from . import norm  # noqa: E402,F401
from . import optim  # noqa: E402,F401
from . import pooling  # noqa: E402,F401
from . import quantized  # noqa: E402,F401
from . import reduce  # noqa: E402,F401
from . import shape  # noqa: E402,F401
from . import winograd  # noqa: E402,F401

from .elementwise import make_fused_kernel  # noqa: E402

__all__ = [
    "DONATED_INPUTS",
    "DONATING_KERNELS",
    "KERNELS",
    "OUT_ALIAS_SAFE",
    "OUT_KERNELS",
    "PRECOMPUTE_TRANSFORMS",
    "VARIANT_KERNELS",
    "VIEW_OPS",
    "donating_kernel",
    "kernel",
    "make_fused_kernel",
    "out_kernel",
    "register_transform",
    "run_op",
    "variant_kernel",
]
