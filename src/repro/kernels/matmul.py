"""Matmul kernel with optional fused bias and activation.

The fusion pass rewrites ``matmul -> bias_add -> relu`` chains into a single
``matmul`` node carrying a third (bias) input and an ``activation``
attribute, mirroring what vendor inference libraries do.
"""

from __future__ import annotations

import numpy as np

from . import kernel, out_kernel
from .elementwise import apply_activation


@kernel("matmul")
def _matmul(inputs, attrs):
    a, b = inputs[0], inputs[1]
    if attrs.get("trans_a"):
        a = np.swapaxes(a, -1, -2)
    if attrs.get("trans_b"):
        b = np.swapaxes(b, -1, -2)
    y = a @ b
    if len(inputs) == 3:  # fused bias
        y = y + inputs[2]
    return [apply_activation(y, attrs.get("activation"))]


@kernel("bias_add")
def _bias_add(inputs, attrs):
    x, b = inputs
    axis = int(attrs.get("axis", 1))
    shape = [1] * x.ndim
    shape[axis] = b.shape[0]
    return [x + b.reshape(shape)]


@out_kernel("bias_add", alias_safe=True)
def _bias_add_out(inputs, attrs, out):
    # alias_safe: a donated buffer matches out's (= x's) shape, so it can
    # only ever be x, never the broadcast bias.
    x, b = inputs
    axis = int(attrs.get("axis", 1))
    shape = [1] * x.ndim
    shape[axis] = b.shape[0]
    return np.add(x, b.reshape(shape), out=out)
