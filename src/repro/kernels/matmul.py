"""Matmul kernel with optional fused bias and activation.

The fusion pass rewrites ``matmul -> bias_add -> relu`` chains into a single
``matmul`` node carrying a third (bias) input and an ``activation``
attribute, mirroring what vendor inference libraries do.
"""

from __future__ import annotations

import numpy as np

from . import kernel, out_kernel, register_transform, variant_kernel
from .elementwise import apply_activation


@register_transform("transpose_last2")
def _transpose_last2(w: np.ndarray) -> np.ndarray:
    """Materialise a frozen matmul operand's transpose once, contiguously."""
    return np.ascontiguousarray(np.swapaxes(w, -1, -2))


@variant_kernel("matmul", "pretransposed_b")
def _matmul_pretransposed_b(inputs, attrs):
    """``trans_b`` matmul with the frozen B operand pre-transposed.

    The plan-owned trailing input is B's contiguous transpose, so the GEMM
    runs on a plain (non-strided) operand instead of a transposed view.
    BLAS may pick a *different* code path for the two layouts, with
    results a ulp apart at some shapes — so the precompute pass only
    selects this variant after a compile-time bitwise probe on the real
    frozen operand proved both layouts identical at this op's shapes
    (GEMM dispatch depends on shapes/strides, never on values).
    """
    a, bt = inputs[0], inputs[-1]
    if attrs.get("trans_a"):
        a = np.swapaxes(a, -1, -2)
    y = a @ bt
    if len(inputs) == 4:  # fused bias rides between B and the transpose
        y = y + inputs[2]
    return [apply_activation(y, attrs.get("activation"))]


@kernel("matmul")
def _matmul(inputs, attrs):
    a, b = inputs[0], inputs[1]
    if attrs.get("trans_a"):
        a = np.swapaxes(a, -1, -2)
    if attrs.get("trans_b"):
        b = np.swapaxes(b, -1, -2)
    y = a @ b
    if len(inputs) == 3:  # fused bias
        y = y + inputs[2]
    return [apply_activation(y, attrs.get("activation"))]


@kernel("bias_add")
def _bias_add(inputs, attrs):
    x, b = inputs
    axis = int(attrs.get("axis", 1))
    shape = [1] * x.ndim
    shape[axis] = b.shape[0]
    return [x + b.reshape(shape)]


@out_kernel("bias_add", alias_safe=True)
def _bias_add_out(inputs, attrs, out):
    # alias_safe: a donated buffer matches out's (= x's) shape, so it can
    # only ever be x, never the broadcast bias.
    x, b = inputs
    axis = int(attrs.get("axis", 1))
    shape = [1] * x.ndim
    shape[axis] = b.shape[0]
    return np.add(x, b.reshape(shape), out=out)
