"""Elementwise kernels: arithmetic, activations, comparisons, casts."""

from __future__ import annotations

import numpy as np

from . import kernel

_SQRT_2_OVER_PI = np.float32(np.sqrt(2.0 / np.pi))


@kernel("add")
def _add(inputs, attrs):
    return [inputs[0] + inputs[1]]


@kernel("sub")
def _sub(inputs, attrs):
    return [inputs[0] - inputs[1]]


@kernel("mul")
def _mul(inputs, attrs):
    return [inputs[0] * inputs[1]]


@kernel("div")
def _div(inputs, attrs):
    return [inputs[0] / inputs[1]]


@kernel("maximum")
def _maximum(inputs, attrs):
    return [np.maximum(inputs[0], inputs[1])]


@kernel("minimum")
def _minimum(inputs, attrs):
    return [np.minimum(inputs[0], inputs[1])]


@kernel("neg")
def _neg(inputs, attrs):
    return [-inputs[0]]


@kernel("exp")
def _exp(inputs, attrs):
    return [np.exp(inputs[0])]


@kernel("log")
def _log(inputs, attrs):
    return [np.log(inputs[0])]


@kernel("sqrt")
def _sqrt(inputs, attrs):
    return [np.sqrt(inputs[0])]


@kernel("abs")
def _abs(inputs, attrs):
    return [np.abs(inputs[0])]


@kernel("sign")
def _sign(inputs, attrs):
    return [np.sign(inputs[0])]


@kernel("step")
def _step(inputs, attrs):
    # Heaviside with step(0) = 0: the subgradient convention used for ReLU.
    x = inputs[0]
    return [(x > 0).astype(x.dtype)]


@kernel("equal")
def _equal(inputs, attrs):
    return [(inputs[0] == inputs[1]).astype(np.float32)]


@kernel("cast")
def _cast(inputs, attrs):
    return [inputs[0].astype(attrs["dtype"])]


def apply_activation(y: np.ndarray, activation: str | None) -> np.ndarray:
    """Apply a fused activation; used by conv2d/matmul kernels."""
    if activation in (None, "none"):
        return y
    if activation == "relu":
        return np.maximum(y, 0)
    if activation == "relu6":
        return np.clip(y, 0, 6)
    if activation == "gelu":
        return gelu(y)
    raise ValueError(f"unknown fused activation {activation!r}")


def gelu(x: np.ndarray) -> np.ndarray:
    """tanh-approximated GELU (the variant BERT uses)."""
    inner = _SQRT_2_OVER_PI * (x + 0.044715 * x * x * x)
    return (0.5 * x * (1.0 + np.tanh(inner))).astype(x.dtype)


@kernel("relu")
def _relu(inputs, attrs):
    return [np.maximum(inputs[0], 0)]


@kernel("relu6")
def _relu6(inputs, attrs):
    return [np.clip(inputs[0], 0, 6)]


@kernel("gelu")
def _gelu(inputs, attrs):
    return [gelu(inputs[0])]


@kernel("sigmoid")
def _sigmoid(inputs, attrs):
    x = inputs[0]
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return [out]


@kernel("tanh")
def _tanh(inputs, attrs):
    return [np.tanh(inputs[0])]
