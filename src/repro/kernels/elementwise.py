"""Elementwise kernels: arithmetic, activations, comparisons, casts."""

from __future__ import annotations

import numpy as np

from . import kernel, out_kernel

_SQRT_2_OVER_PI = np.float32(np.sqrt(2.0 / np.pi))

# out= variants: the execution plan hands these a recycled (or donated)
# buffer so steady-state steps allocate no new arrays. Each must produce
# bits identical to its base kernel — same ufunc, same operand order.
# alias_safe=True means out may be one of the same-shape inputs (true for
# elementwise ufuncs, which read element i before writing element i).

def _binary_out(ufunc):
    def run(inputs, attrs, out):
        return ufunc(inputs[0], inputs[1], out=out)
    return run


def _unary_out(ufunc):
    def run(inputs, attrs, out):
        return ufunc(inputs[0], out=out)
    return run


for _name, _ufunc in [("add", np.add), ("sub", np.subtract),
                      ("mul", np.multiply), ("div", np.true_divide),
                      ("maximum", np.maximum), ("minimum", np.minimum)]:
    out_kernel(_name, alias_safe=True)(_binary_out(_ufunc))

for _name, _ufunc in [("neg", np.negative), ("exp", np.exp),
                      ("log", np.log), ("sqrt", np.sqrt),
                      ("abs", np.abs), ("sign", np.sign),
                      ("tanh", np.tanh)]:
    out_kernel(_name, alias_safe=True)(_unary_out(_ufunc))


# Fused elementwise chains: the plan's fuse_elementwise pass collapses a
# producer -> sole-consumer run of alias-safe elementwise instructions
# into one instruction; make_fused_kernel builds its executable form. The
# base form replays the constituent base kernels sequentially (bitwise
# identical to the unfused stream by construction); the out= form threads
# one shared buffer through every link's out= kernel, so the chain's
# intermediates never exist as allocations at all. Both rely on the
# out_kernel contract (bitwise parity with base) and on alias_safe links
# (element i is read before it is written), which is what makes writing
# link k's result over link k-1's — in the same buffer — safe.

def make_fused_kernel(links):
    """Build (base, out) callables for a fused chain.

    ``links`` is a tuple of ``(base_fn, out_fn, attrs, args)``; ``args``
    maps each link input to either ``None`` (the previous link's result)
    or an index into the fused instruction's input list.
    """

    def run_base(inputs, attrs):
        value = None
        for base_fn, _out_fn, link_attrs, args in links:
            ins = [value if a is None else inputs[a] for a in args]
            value = base_fn(ins, link_attrs)[0]
        return [value]

    def run_out(inputs, attrs, out):
        for _base_fn, out_fn, link_attrs, args in links:
            ins = [out if a is None else inputs[a] for a in args]
            out_fn(ins, link_attrs, out)
        return out

    return run_base, run_out


@kernel("add")
def _add(inputs, attrs):
    return [inputs[0] + inputs[1]]


@kernel("sub")
def _sub(inputs, attrs):
    return [inputs[0] - inputs[1]]


@kernel("mul")
def _mul(inputs, attrs):
    return [inputs[0] * inputs[1]]


@kernel("div")
def _div(inputs, attrs):
    return [inputs[0] / inputs[1]]


@kernel("maximum")
def _maximum(inputs, attrs):
    return [np.maximum(inputs[0], inputs[1])]


@kernel("minimum")
def _minimum(inputs, attrs):
    return [np.minimum(inputs[0], inputs[1])]


@kernel("neg")
def _neg(inputs, attrs):
    return [-inputs[0]]


@kernel("exp")
def _exp(inputs, attrs):
    return [np.exp(inputs[0])]


@kernel("log")
def _log(inputs, attrs):
    return [np.log(inputs[0])]


@kernel("sqrt")
def _sqrt(inputs, attrs):
    return [np.sqrt(inputs[0])]


@kernel("abs")
def _abs(inputs, attrs):
    return [np.abs(inputs[0])]


@kernel("sign")
def _sign(inputs, attrs):
    return [np.sign(inputs[0])]


@kernel("step")
def _step(inputs, attrs):
    # Heaviside with step(0) = 0: the subgradient convention used for ReLU.
    x = inputs[0]
    return [(x > 0).astype(x.dtype)]


@out_kernel("step", alias_safe=True)
def _step_out(inputs, attrs, out):
    return np.greater(inputs[0], 0, out=out, casting="unsafe")


@kernel("equal")
def _equal(inputs, attrs):
    return [(inputs[0] == inputs[1]).astype(np.float32)]


@out_kernel("equal", alias_safe=True)
def _equal_out(inputs, attrs, out):
    return np.equal(inputs[0], inputs[1], out=out, casting="unsafe")


@kernel("cast")
def _cast(inputs, attrs):
    return [inputs[0].astype(attrs["dtype"])]


@out_kernel("cast")
def _cast_out(inputs, attrs, out):
    np.copyto(out, inputs[0], casting="unsafe")
    return out


def apply_activation(y: np.ndarray, activation: str | None) -> np.ndarray:
    """Apply a fused activation; used by conv2d/matmul kernels."""
    if activation in (None, "none"):
        return y
    if activation == "relu":
        return np.maximum(y, 0)
    if activation == "relu6":
        return np.clip(y, 0, 6)
    if activation == "gelu":
        return gelu(y)
    raise ValueError(f"unknown fused activation {activation!r}")


def gelu(x: np.ndarray) -> np.ndarray:
    """tanh-approximated GELU (the variant BERT uses)."""
    inner = _SQRT_2_OVER_PI * (x + 0.044715 * x * x * x)
    return (0.5 * x * (1.0 + np.tanh(inner))).astype(x.dtype)


@kernel("relu")
def _relu(inputs, attrs):
    return [np.maximum(inputs[0], 0)]


@out_kernel("relu", alias_safe=True)
def _relu_out(inputs, attrs, out):
    return np.maximum(inputs[0], 0, out=out)


@kernel("relu6")
def _relu6(inputs, attrs):
    return [np.clip(inputs[0], 0, 6)]


@out_kernel("relu6", alias_safe=True)
def _relu6_out(inputs, attrs, out):
    return np.clip(inputs[0], 0, 6, out=out)


@kernel("gelu")
def _gelu(inputs, attrs):
    return [gelu(inputs[0])]


def _sigmoid_into(x: np.ndarray, out: np.ndarray) -> np.ndarray:
    # Writes to out[pos] never disturb the x[~pos] reads (disjoint masks),
    # so out may alias x.
    pos = x >= 0
    neg_exp = np.exp(x[~pos])
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    out[~pos] = neg_exp / (1.0 + neg_exp)
    return out


@kernel("sigmoid")
def _sigmoid(inputs, attrs):
    x = inputs[0]
    return [_sigmoid_into(x, np.empty_like(x))]


@out_kernel("sigmoid", alias_safe=True)
def _sigmoid_out(inputs, attrs, out):
    return _sigmoid_into(inputs[0], out)


@kernel("tanh")
def _tanh(inputs, attrs):
    return [np.tanh(inputs[0])]
