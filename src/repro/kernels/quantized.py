"""Quantized kernels: fake-quant (QAT), linear quantize/dequantize, and
fused int8 conv/matmul with int32 accumulation and requantization.

These mirror the integer execution path of vendor edge libraries (SNPE,
TinyEngine): weights are symmetric int8 (optionally per-output-channel),
activations are asymmetric int8, accumulation happens in int32, and the
requantization step folds the bias and the activation clamp.
"""

from __future__ import annotations

import numpy as np

from . import kernel
from .conv2d import conv2d_forward

INT8_MIN, INT8_MAX = -128, 127


def _as_array(value, dtype=np.float32) -> np.ndarray:
    """Attrs hold python scalars or tuples; normalise to an ndarray."""
    return np.asarray(value, dtype=dtype)


def _channel_shape(param: np.ndarray, ndim: int, axis: int) -> np.ndarray:
    """Reshape a per-channel parameter for broadcasting along ``axis``."""
    if param.ndim == 0:
        return param
    shape = [1] * ndim
    shape[axis] = param.shape[0]
    return param.reshape(shape)


def quantize_array(x: np.ndarray, scale, zero_point, bits: int = 8,
                   axis: int | None = None) -> np.ndarray:
    """Round ``x`` to the integer grid ``round(x/scale) + zero_point``."""
    scale = _as_array(scale)
    zp = _as_array(zero_point)
    if axis is not None:
        scale = _channel_shape(scale, x.ndim, axis)
        zp = _channel_shape(zp, x.ndim, axis)
    lo, hi = _int_range(bits)
    q = np.round(x / scale) + zp
    return np.clip(q, lo, hi).astype(np.int8 if bits == 8 else np.int32)


def dequantize_array(q: np.ndarray, scale, zero_point,
                     axis: int | None = None) -> np.ndarray:
    scale = _as_array(scale)
    zp = _as_array(zero_point)
    if axis is not None:
        scale = _channel_shape(scale, q.ndim, axis)
        zp = _channel_shape(zp, q.ndim, axis)
    return ((q.astype(np.float32) - zp) * scale).astype(np.float32)


def _int_range(bits: int) -> tuple[int, int]:
    bits = int(bits)
    return -(2 ** (bits - 1)), 2 ** (bits - 1) - 1


@kernel("fake_quant")
def _fake_quant(inputs, attrs):
    (x,) = inputs
    bits = int(attrs.get("bits", 8))
    axis = attrs.get("axis")
    q = quantize_array(x, attrs["scale"], attrs.get("zero_point", 0),
                       bits=bits, axis=axis)
    return [dequantize_array(q, attrs["scale"], attrs.get("zero_point", 0),
                             axis=axis)]


@kernel("quantize_linear")
def _quantize_linear(inputs, attrs):
    (x,) = inputs
    return [quantize_array(x, attrs["scale"], attrs.get("zero_point", 0),
                           bits=int(attrs.get("bits", 8)),
                           axis=attrs.get("axis"))]


@kernel("dequantize_linear")
def _dequantize_linear(inputs, attrs):
    (q,) = inputs
    return [dequantize_array(q, attrs["scale"], attrs.get("zero_point", 0),
                             axis=attrs.get("axis"))]


def _requantize(acc: np.ndarray, multiplier: np.ndarray, out_zp: int,
                activation: str | None, out_scale) -> np.ndarray:
    """int32 accumulator -> int8 output, folding the activation clamp.

    ``multiplier`` is ``x_scale * w_scale / out_scale`` (per-channel when the
    weight scale is per-channel and already broadcast-shaped).
    """
    y = np.round(acc.astype(np.float64) * multiplier) + out_zp
    lo, hi = INT8_MIN, INT8_MAX
    if activation == "relu":
        lo = max(lo, int(out_zp))
    elif activation == "relu6":
        lo = max(lo, int(out_zp))
        hi = min(hi, int(round(6.0 / float(np.max(out_scale))) + out_zp))
    return np.clip(y, lo, hi).astype(np.int8)


@kernel("conv2d_i8")
def _conv2d_i8(inputs, attrs):
    x, w = inputs[0], inputs[1]
    x_zp = int(attrs.get("x_zero_point", 0))
    # Symmetric weights: fold the activation zero-point into the int32
    # accumulation, exactly as TinyEngine precomputes it.
    acc = conv2d_forward(
        x.astype(np.int32) - x_zp, w.astype(np.int32),
        attrs.get("stride", 1), attrs.get("padding", 0),
        int(attrs.get("groups", 1)),
    )
    if len(inputs) == 3:
        acc = acc + inputs[2].reshape(1, -1, 1, 1)
    x_scale = float(attrs["x_scale"])
    w_scale = _as_array(attrs["w_scale"], np.float64)
    out_scale = float(attrs["out_scale"])
    multiplier = x_scale * w_scale / out_scale
    if multiplier.ndim:  # per-output-channel
        multiplier = multiplier.reshape(1, -1, 1, 1)
    return [_requantize(acc, multiplier, int(attrs.get("out_zero_point", 0)),
                        attrs.get("activation"), out_scale)]


@kernel("add_i8")
def _add_i8(inputs, attrs):
    # Residual adds stay on the int8 grid: both operands are rescaled to
    # the output grid with fixed-point multipliers (simulated in float64),
    # summed, and clamped — no dequantize round trip, no extra kernels.
    a, b = inputs
    out_scale = float(attrs["out_scale"])
    out_zp = int(attrs.get("out_zero_point", 0))
    ra = (a.astype(np.float64) - int(attrs.get("a_zero_point", 0))) \
        * (float(attrs["a_scale"]) / out_scale)
    rb = (b.astype(np.float64) - int(attrs.get("b_zero_point", 0))) \
        * (float(attrs["b_scale"]) / out_scale)
    y = np.round(ra + rb) + out_zp
    lo = out_zp if attrs.get("activation") == "relu" else INT8_MIN
    return [np.clip(y, lo, INT8_MAX).astype(np.int8)]


@kernel("global_avg_pool_i8")
def _global_avg_pool_i8(inputs, attrs):
    # Accumulate in int32, divide with rounding; scale is unchanged
    # because the mean of values on a grid stays within the grid's range.
    (x,) = inputs
    acc = x.astype(np.int32).sum(axis=(2, 3))
    count = x.shape[2] * x.shape[3]
    y = np.round(acc / count)
    return [np.clip(y, INT8_MIN, INT8_MAX).astype(np.int8)]


@kernel("matmul_i8")
def _matmul_i8(inputs, attrs):
    a, b = inputs[0], inputs[1]
    a_zp = int(attrs.get("x_zero_point", 0))
    acc = (a.astype(np.int32) - a_zp) @ b.astype(np.int32)
    if len(inputs) == 3:
        acc = acc + inputs[2]
    x_scale = float(attrs["x_scale"])
    w_scale = _as_array(attrs["w_scale"], np.float64)
    out_scale = float(attrs["out_scale"])
    multiplier = x_scale * w_scale / out_scale  # per-column when per-channel
    return [_requantize(acc, multiplier, int(attrs.get("out_zero_point", 0)),
                        attrs.get("activation"), out_scale)]
