"""Reduction kernels."""

from __future__ import annotations

import numpy as np

from . import kernel


def _axes(attrs, ndim: int):
    axes = attrs.get("axes")
    if axes is None:
        return tuple(range(ndim))
    return tuple(int(a) for a in axes)


@kernel("reduce_sum")
def _reduce_sum(inputs, attrs):
    x = inputs[0]
    return [x.sum(axis=_axes(attrs, x.ndim),
                  keepdims=bool(attrs.get("keepdims", False)), dtype=x.dtype)]


@kernel("reduce_mean")
def _reduce_mean(inputs, attrs):
    x = inputs[0]
    return [x.mean(axis=_axes(attrs, x.ndim),
                   keepdims=bool(attrs.get("keepdims", False)),
                   dtype=x.dtype)]


@kernel("reduce_max")
def _reduce_max(inputs, attrs):
    x = inputs[0]
    return [x.max(axis=_axes(attrs, x.ndim),
                  keepdims=bool(attrs.get("keepdims", False)))]
