"""In-place optimizer apply kernels.

These are the only kernels that mutate inputs: ``param`` (and optimizer
state) are updated in place and the param array is returned as the output.
The ``slice_k``/``slice_axis`` attributes implement the paper's sub-layer
(channel-sparse) update: the provided gradient covers only the leading ``k``
input channels, so only that slice of the parameter/state is touched.
"""

from __future__ import annotations

import numpy as np

from . import donating_kernel, kernel


def _param_view(param: np.ndarray, attrs) -> np.ndarray:
    """View of the parameter slice being updated (whole tensor by default)."""
    k = attrs.get("slice_k")
    if k is None:
        return param
    axis = int(attrs.get("slice_axis", 0))
    index = [slice(None)] * param.ndim
    index[axis] = slice(0, int(k))
    return param[tuple(index)]


def _accumulation_gate(inputs, attrs):
    """Handle gradient accumulation (``accum_steps`` attr).

    Returns ``(core_inputs, grad)``: the inputs without the trailing
    [accumulator, tick] state, and the gradient to apply — ``None`` on
    micro-steps where the update is deferred.
    """
    n = int(attrs.get("accum_steps", 1))
    if n <= 1:
        return inputs, inputs[1]
    core, accum, tick = inputs[:-2], inputs[-2], inputs[-1]
    accum += inputs[1]
    tick += 1.0
    if int(tick.reshape(-1)[0]) % n:
        return core, None
    grad = accum / n
    accum[...] = 0.0
    return core, grad


def _sgd_step(inputs, attrs, donate: bool):
    """Shared SGD body; every numpy op matches the original temp-allocating
    sequence bitwise, ``donate`` only redirects writes into the dying
    gradient buffer instead of fresh temporaries."""
    inputs, grad = _accumulation_gate(inputs, attrs)
    param = inputs[0]
    if grad is None:
        return [param]
    lr = float(attrs["lr"])
    momentum = float(attrs.get("momentum", 0.0))
    wd = float(attrs.get("weight_decay", 0.0))
    view = _param_view(param, attrs)
    # With accumulation the gate already handed us a private averaged-grad
    # temporary, which is always safe to clobber.
    scratch = grad if (donate or int(attrs.get("accum_steps", 1)) > 1) \
        else None
    if wd:
        if scratch is None:
            grad = grad + wd * view
            scratch = grad  # the fresh sum is ours to clobber below
        else:
            grad = np.add(grad, wd * view, out=scratch)
    if momentum:
        mom = inputs[2]
        mom *= momentum
        mom += grad
        update = mom
    else:
        update = grad
    if scratch is None:
        view -= lr * update
    else:
        np.multiply(update, lr, out=scratch)
        np.subtract(view, scratch, out=view)
    return [param]


@kernel("apply_sgd")
def _apply_sgd(inputs, attrs):
    return _sgd_step(inputs, attrs, donate=False)


@donating_kernel("apply_sgd", clobbers=(1,))
def _apply_sgd_donating(inputs, attrs):
    return _sgd_step(inputs, attrs, donate=True)


@kernel("apply_adam")
def _apply_adam(inputs, attrs):
    inputs, grad = _accumulation_gate(inputs, attrs)
    param, _, m, v, step = inputs
    if grad is None:
        return [param]
    lr = float(attrs["lr"])
    b1 = float(attrs.get("beta1", 0.9))
    b2 = float(attrs.get("beta2", 0.999))
    eps = float(attrs.get("eps", 1e-8))
    wd = float(attrs.get("weight_decay", 0.0))
    view = _param_view(param, attrs)
    if wd:
        grad = grad + wd * view
    step += 1.0
    t = float(step.reshape(-1)[0])
    m *= b1
    m += (1 - b1) * grad
    v *= b2
    v += (1 - b2) * grad * grad
    mhat = m / (1 - b1 ** t)
    vhat = v / (1 - b2 ** t)
    view -= lr * mhat / (np.sqrt(vhat) + eps)
    return [param]


@kernel("apply_lion")
def _apply_lion(inputs, attrs):
    # Lion (Chen et al. 2023): sign-of-interpolated-momentum update. The
    # paper fine-tunes LlamaV2 with Lion because it keeps a single state
    # buffer (memory-efficient vs Adam's two).
    inputs, grad = _accumulation_gate(inputs, attrs)
    param, _, m = inputs
    if grad is None:
        return [param]
    lr = float(attrs["lr"])
    b1 = float(attrs.get("beta1", 0.9))
    b2 = float(attrs.get("beta2", 0.99))
    wd = float(attrs.get("weight_decay", 0.0))
    view = _param_view(param, attrs)
    update = np.sign(b1 * m + (1 - b1) * grad)
    if wd:
        update = update + wd * view
    view -= lr * update
    m *= b2
    m += (1 - b2) * grad
    return [param]
