"""Embedding lookup, its scatter-add gradient, and one-hot encoding."""

from __future__ import annotations

import numpy as np

from . import kernel


@kernel("embedding")
def _embedding(inputs, attrs):
    table, ids = inputs
    return [table[ids]]


@kernel("embedding_grad")
def _embedding_grad(inputs, attrs):
    ids, grad = inputs
    rows = int(attrs["num_rows"])
    dim = grad.shape[-1]
    out = np.zeros((rows, dim), dtype=grad.dtype)
    np.add.at(out, ids.ravel(), grad.reshape(-1, dim))
    return [out]


@kernel("onehot")
def _onehot(inputs, attrs):
    (ids,) = inputs
    depth = int(attrs["depth"])
    eye = np.eye(depth, dtype=np.float32)
    return [eye[ids]]
