"""Pooling kernels and their gradients."""

from __future__ import annotations

import numpy as np

from . import kernel
from .conv2d import _pair, col2im, im2col


def _windows(x: np.ndarray, attrs) -> tuple[np.ndarray, int, int, tuple]:
    kh, kw = _pair(attrs["kernel"])
    sh, sw = _pair(attrs.get("stride", attrs["kernel"]))
    ph, pw = _pair(attrs.get("padding", 0))
    n, c, _, _ = x.shape
    cols, ho, wo = im2col(x, kh, kw, sh, sw, ph, pw)
    # [N, C, kh*kw, Ho*Wo]
    cols = cols.reshape(n, c, kh * kw, ho * wo)
    return cols, ho, wo, (kh, kw, sh, sw, ph, pw)


@kernel("maxpool2d")
def _maxpool2d(inputs, attrs):
    x = inputs[0]
    cols, ho, wo, _ = _windows(x, attrs)
    return [cols.max(axis=2).reshape(x.shape[0], x.shape[1], ho, wo)]


@kernel("maxpool2d_grad")
def _maxpool2d_grad(inputs, attrs):
    x, grad = inputs
    cols, ho, wo, (kh, kw, sh, sw, ph, pw) = _windows(x, attrs)
    n, c = x.shape[0], x.shape[1]
    flat = cols.reshape(n * c, kh * kw, ho * wo)
    winner = flat.argmax(axis=1)  # ties -> first max, matching autograd
    dcols = np.zeros_like(flat)
    rows = np.arange(n * c)[:, None]
    positions = np.arange(ho * wo)[None, :]
    dcols[rows, winner, positions] = grad.reshape(n * c, ho * wo)
    dcols = dcols.reshape(n, c * kh * kw, ho * wo)
    return [col2im(dcols, x.shape, kh, kw, sh, sw, ph, pw)]


@kernel("avgpool2d")
def _avgpool2d(inputs, attrs):
    x = inputs[0]
    cols, ho, wo, _ = _windows(x, attrs)
    return [cols.mean(axis=2).reshape(x.shape[0], x.shape[1], ho, wo)]


@kernel("avgpool2d_grad")
def _avgpool2d_grad(inputs, attrs):
    (grad,) = inputs
    in_shape = tuple(int(d) for d in attrs["input_shape"])
    kh, kw = _pair(attrs["kernel"])
    sh, sw = _pair(attrs.get("stride", attrs["kernel"]))
    ph, pw = _pair(attrs.get("padding", 0))
    n, c = in_shape[0], in_shape[1]
    ho, wo = grad.shape[2], grad.shape[3]
    share = (grad / (kh * kw)).reshape(n, c, 1, ho * wo)
    dcols = np.broadcast_to(share, (n, c, kh * kw, ho * wo))
    dcols = dcols.reshape(n, c * kh * kw, ho * wo)
    return [col2im(dcols, in_shape, kh, kw, sh, sw, ph, pw)]


@kernel("global_avg_pool")
def _global_avg_pool(inputs, attrs):
    x = inputs[0]
    return [x.mean(axis=(2, 3), dtype=x.dtype)]
