"""Static arena planning: assign every transient tensor a fixed offset.

Microcontroller deployments (TinyEngine-style) cannot malloc; the compiler
must lay all activations out in one arena. We use greedy best-fit by
decreasing size — the standard approach in TFLite-Micro/TinyEngine — which
is within a few percent of optimal for DNN lifetimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import MemoryPlanError
from ..ir import Graph
from ..ir.node import Node
from ..ir.ops import get_schema
from .liveness import Lifetime, value_lifetimes


@dataclass
class ArenaPlan:
    """Offset assignment for transient tensors in a single byte arena."""

    arena_bytes: int
    offsets: dict[str, int] = field(default_factory=dict)
    lifetimes: dict[str, Lifetime] = field(default_factory=dict)

    def validate(self, graph: Graph) -> None:
        """Assert no two simultaneously-live tensors overlap in the arena."""
        names = list(self.offsets)
        for i, a in enumerate(names):
            size_a = graph.spec(a).nbytes
            for b in names[i + 1:]:
                if not self.lifetimes[a].overlaps(self.lifetimes[b]):
                    continue
                size_b = graph.spec(b).nbytes
                a0, b0 = self.offsets[a], self.offsets[b]
                if a0 < b0 + size_b and b0 < a0 + size_a:
                    raise MemoryPlanError(
                        f"arena overlap between {a!r} and {b!r}"
                    )


def plan_arena(graph: Graph, schedule: list[Node] | None = None,
               alignment: int = 16) -> ArenaPlan:
    """Assign arena offsets to every transient tensor under ``schedule``."""
    if schedule is None:
        schedule = graph.topological_order()
    lifetimes = value_lifetimes(graph, schedule)

    resident = set(graph.initializers) | set(graph.inputs)
    alias: set[str] = set()
    for node in schedule:
        if get_schema(node.op_type).inplace:
            alias.update(node.outputs)

    transient = [
        name for name, life in lifetimes.items()
        if name not in resident and name not in alias and life.end >= life.start
    ]
    # Greedy best-fit, biggest tensors first.
    transient.sort(key=lambda n: -graph.spec(n).nbytes)

    placed: list[tuple[str, int, int]] = []  # (name, offset, size)
    offsets: dict[str, int] = {}
    arena = 0
    for name in transient:
        size = _align(graph.spec(name).nbytes, alignment)
        if size == 0:
            offsets[name] = 0
            continue
        life = lifetimes[name]
        conflicts = sorted(
            (off, off + sz) for other, off, sz in placed
            if lifetimes[other].overlaps(life)
        )
        offset = _first_fit(conflicts, size)
        offsets[name] = offset
        placed.append((name, offset, size))
        arena = max(arena, offset + size)

    plan = ArenaPlan(arena_bytes=arena, offsets=offsets,
                     lifetimes={n: lifetimes[n] for n in offsets})
    return plan


def _align(size: int, alignment: int) -> int:
    return (size + alignment - 1) // alignment * alignment


def _first_fit(conflicts: list[tuple[int, int]], size: int) -> int:
    """Lowest offset where ``size`` bytes fit between sorted conflicts."""
    cursor = 0
    for begin, end in conflicts:
        if begin - cursor >= size:
            return cursor
        cursor = max(cursor, end)
    return cursor
