"""Rematerialization and paging: the POET-style baseline (paper §2.2).

POET (Patil et al., ICML 2022) fits training under a memory budget by
*recomputing* activations in the backward pass (rematerialization) or
spilling them to external flash (paging). The paper positions sparse
backpropagation against it: remat/paging trade extra computation or IO for
memory, while pruning the backward graph removes both. This module builds
that baseline so the trade-off is measurable on the same compiled graphs.

Two modes:

* :func:`rematerialize` — returns a **real transformed graph + schedule**
  in which evicted activations are freed at their last forward use and
  recomputed by cloned producer nodes right before the backward needs
  them. The result runs on the numeric executor and flows through the
  standard memory profiler and device cost model, so the extra FLOPs and
  the memory saving are both measured, not asserted.
* :func:`plan_paging` — analytic flash-spill plan: picks the values to
  page out, reports the surviving peak and the flash traffic, and prices
  the transfer time against a flash bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import MemoryPlanError
from ..ir import Graph
from ..ir.node import Node
from ..ir.ops import get_schema, op_flops
from .liveness import value_lifetimes
from .profiler import MemoryProfile, profile_memory

#: Ops that must never be re-executed (in-place parameter updates).
_NON_RECOMPUTABLE = {"apply_sgd", "apply_adam", "apply_lion"}


@dataclass
class Eviction:
    """One value dropped after its last pre-peak use and recomputed."""

    value: str
    alias: str           # name the recomputation produces
    producer: str        # original producer node name
    recompute: str       # cloned node name
    bytes: int
    idle_steps: int      # gap between last pre-peak use and next use


@dataclass
class RematResult:
    """A transformed training graph honouring (or approaching) a budget."""

    graph: Graph
    schedule: list[Node]
    budget_bytes: int
    fits: bool
    evictions: list[Eviction] = field(default_factory=list)
    peak_before: int = 0
    peak_after: int = 0
    extra_flops: int = 0

    @property
    def memory_saving(self) -> float:
        return self.peak_before / max(self.peak_after, 1)


def _uses(schedule: list[Node]) -> dict[str, list[int]]:
    uses: dict[str, list[int]] = {}
    for i, node in enumerate(schedule):
        for inp in node.inputs:
            uses.setdefault(inp, []).append(i)
    return uses


def _candidates(graph: Graph, schedule: list[Node], peak_step: int
                ) -> list[tuple[int, int, str, Node]]:
    """Values live-but-idle across the peak, with a recomputable producer.

    Returns (bytes, idle_steps, value, producer) sorted best-first; "best"
    frees the most bytes, tie-broken by how long the value sits idle.
    """
    producers = {out: node for node in schedule for out in node.outputs}
    uses = _uses(schedule)
    outputs = set(graph.outputs)
    found = []
    for value, node in producers.items():
        if value in outputs or value in graph.initializers:
            continue
        if node.op_type in _NON_RECOMPUTABLE \
                or get_schema(node.op_type).inplace:
            continue
        use_steps = uses.get(value, [])
        if peak_step in use_steps:
            continue  # consumed at the peak itself: cannot help there
        before = [u for u in use_steps if u < peak_step]
        after = [u for u in use_steps if u > peak_step]
        birth = next(i for i, n in enumerate(schedule) if n is node)
        if birth >= peak_step or not after:
            continue  # not live across the peak, or never used again
        last_before = max(before) if before else birth
        idle = min(after) - last_before
        if idle < 2:
            continue  # recomputing right away frees nothing
        found.append((graph.spec(value).nbytes, idle, value, node))
    found.sort(key=lambda item: (item[0], item[1]), reverse=True)
    return found


def rematerialize(
    graph: Graph,
    schedule: list[Node] | None = None,
    budget_bytes: int = 0,
    max_evictions: int = 64,
    max_attempts_per_round: int = 8,
) -> RematResult:
    """Evict-and-recompute activations until peak memory fits the budget.

    Greedy hill climbing with a best-state snapshot. Each round profiles
    the schedule, tentatively applies up to ``max_attempts_per_round``
    candidates at the peak step, and keeps the one yielding the lowest
    resulting peak — *even if that is temporarily higher* (recomputing
    extends producer-input lifetimes across the peak; evicting those in
    later rounds is often what unlocks deep savings). The best state seen
    is snapshotted and restored at the end, so the returned peak is never
    worse than the input's; the loop stops at the budget, at
    ``max_evictions``, when candidates run out, or after ``patience``
    rounds without a new best.

    The returned graph/schedule are numerically equivalent to the input —
    property-tested against the executor — and strictly larger in FLOPs.
    """
    graph = graph.clone()
    name_to_node = {n.name: n for n in graph.nodes}
    if schedule is None:
        schedule = graph.topological_order()
    else:
        schedule = [name_to_node[n.name] for n in schedule]

    base_profile = profile_memory(graph, schedule)
    result = RematResult(
        graph=graph, schedule=schedule, budget_bytes=budget_bytes,
        fits=base_profile.peak_total_bytes <= budget_bytes,
        peak_before=base_profile.peak_total_bytes,
        peak_after=base_profile.peak_total_bytes,
    )
    counter = 0

    def apply(value: str, producer: Node, peak_step: int):
        """Insert a recompute of ``value``; returns an undo record."""
        nonlocal counter
        counter += 1
        alias = f"{value}.remat{counter}"
        spec = graph.spec(value)
        added_values = [alias]
        graph.values[alias] = type(spec)(alias, spec.shape, spec.dtype)
        clone = Node(producer.op_type, f"{producer.name}.remat{counter}",
                     tuple(producer.inputs),
                     tuple(alias if o == value else f"{alias}.sib{i}"
                           for i, o in enumerate(producer.outputs)),
                     dict(producer.attrs))
        for i, out in enumerate(producer.outputs):
            if out != value:
                sib_spec = graph.spec(out)
                sib = f"{alias}.sib{i}"
                graph.values[sib] = type(sib_spec)(
                    sib, sib_spec.shape, sib_spec.dtype)
                added_values.append(sib)

        uses = _uses(schedule)
        # Deduplicate: a node like add(v, v) lists the step twice, and a
        # second visit would snapshot already-rewritten inputs.
        after = sorted({u for u in uses[value] if u > peak_step})
        rewired = []
        for step in after:
            node = schedule[step]
            rewired.append((node, node.inputs))
            node.inputs = tuple(alias if i == value else i
                                for i in node.inputs)
        schedule.insert(after[0], clone)
        graph.nodes = list(schedule)
        return clone, alias, rewired, added_values

    def undo(record) -> None:
        clone, _, rewired, added_values = record
        schedule.remove(clone)
        for node, inputs in reversed(rewired):
            node.inputs = inputs
        for name in added_values:
            del graph.values[name]
        graph.nodes = list(schedule)

    def snapshot():
        return (list(schedule), [(n, n.inputs) for n in schedule],
                list(result.evictions), result.extra_flops)

    def restore(state) -> None:
        saved_schedule, saved_inputs, evictions, flops = state
        schedule[:] = saved_schedule
        for node, inputs in saved_inputs:
            node.inputs = inputs
        result.evictions[:] = evictions
        result.extra_flops = flops
        graph.nodes = list(schedule)

    best_peak = base_profile.peak_total_bytes
    best_state = snapshot()
    patience = 24
    since_best = 0
    while not result.fits and len(result.evictions) < max_evictions:
        profile = profile_memory(graph, schedule)
        if profile.peak_total_bytes <= budget_bytes:
            result.fits = True
            break
        options = _candidates(graph, schedule, profile.peak_step)
        chosen = None  # (new_peak, option)
        for option in options[:max_attempts_per_round]:
            _, _, value, producer = option
            record = apply(value, producer, profile.peak_step)
            new_peak = profile_memory(graph, schedule).peak_total_bytes
            undo(record)
            if chosen is None or new_peak < chosen[0]:
                chosen = (new_peak, option)
            if new_peak < profile.peak_total_bytes:
                break  # a strict improvement is good enough; take it
        if chosen is None:
            break
        new_peak, (nbytes, idle, value, producer) = chosen
        clone, alias, _, _ = apply(value, producer, profile.peak_step)
        result.evictions.append(Eviction(
            value=value, alias=alias, producer=producer.name,
            recompute=clone.name, bytes=nbytes, idle_steps=idle))
        in_specs = [graph.spec(i) for i in clone.inputs]
        out_specs = [graph.spec(o) for o in clone.outputs]
        result.extra_flops += op_flops(
            clone.op_type, in_specs, out_specs, clone.attrs)
        if new_peak < best_peak:
            best_peak = new_peak
            best_state = snapshot()
            since_best = 0
        else:
            since_best += 1
            if since_best > patience:
                break

    if profile_memory(graph, schedule).peak_total_bytes > best_peak:
        restore(best_state)
    graph._drop_orphan_values()
    final = profile_memory(graph, schedule)
    result.peak_after = final.peak_total_bytes
    result.fits = final.peak_total_bytes <= budget_bytes
    result.schedule = schedule
    return result


@dataclass
class PagingPlan:
    """Analytic flash-spill plan (POET's second mechanism)."""

    budget_bytes: int
    fits: bool
    paged_values: list[str]
    peak_before: int
    peak_after: int
    flash_traffic_bytes: int     # write at eviction + read at reuse

    def transfer_ms(self, flash_bw_gbs: float) -> float:
        """Time spent moving spilled tensors at ``flash_bw_gbs`` GB/s."""
        if flash_bw_gbs <= 0:
            raise MemoryPlanError("flash bandwidth must be positive")
        return self.flash_traffic_bytes / (flash_bw_gbs * 1e9) * 1e3


def plan_paging(graph: Graph, schedule: list[Node] | None = None,
                budget_bytes: int = 0, max_spills: int = 128) -> PagingPlan:
    """Choose values to spill to flash until the peak fits the budget.

    Unlike :func:`rematerialize` this does not transform the graph — the
    saving comes from IO, which the plan prices as 2x the spilled bytes
    (write out, read back) per training iteration.
    """
    if schedule is None:
        schedule = graph.topological_order()
    lifetimes = value_lifetimes(graph, schedule)
    sizes = {name: graph.spec(name).nbytes for name in lifetimes}
    resident = profile_memory(graph, schedule).resident_bytes
    alias = {out for node in schedule if get_schema(node.op_type).inplace
             for out in node.outputs}

    # Mutable interval table: paging a value across the peak splits its
    # lifetime into [start, last_use_before] + [next_use_after, end].
    intervals: dict[str, list[tuple[int, int]]] = {
        name: [(life.start, life.end)] for name, life in lifetimes.items()
        if name not in graph.initializers and name not in alias
    }
    uses = _uses(schedule)
    horizon = len(schedule)

    def peak() -> tuple[int, int]:
        deltas = [0] * (horizon + 2)
        for name, spans in intervals.items():
            for birth, death in spans:
                deltas[max(birth, 0)] += sizes[name]
                deltas[min(death + 1, horizon + 1)] -= sizes[name]
        best = step = current = 0
        for i in range(horizon + 1):
            current += deltas[i]
            if current > best:
                best, step = current, i
        return best + resident, step

    peak_before, _ = peak()
    paged: list[str] = []
    traffic = 0
    current_peak, peak_step = peak()
    while current_peak > budget_bytes and len(paged) < max_spills:
        best = None
        for name, spans in intervals.items():
            if name in paged or name in graph.outputs:
                continue
            for si, (birth, death) in enumerate(spans):
                if not birth < peak_step <= death:
                    continue
                use_steps = [u for u in uses.get(name, [])
                             if birth < u <= death]
                if peak_step in use_steps:
                    continue  # consumed at the peak itself
                before = [u for u in use_steps if u < peak_step]
                after = [u for u in use_steps if u > peak_step]
                if not after:
                    continue
                last_before = max(before) if before else birth
                if min(after) - last_before < 2:
                    continue
                key = (sizes[name], min(after) - last_before)
                if best is None or key > best[0]:
                    best = (key, name, si, last_before, min(after))
        if best is None:
            break
        _, name, si, last_before, next_after = best
        birth, death = intervals[name][si]
        # Resident again from the step that consumes it (the read-back
        # overlaps the preceding kernel, as POET's DMA prefetch does).
        intervals[name][si:si + 1] = [(birth, last_before),
                                      (next_after, death)]
        paged.append(name)
        traffic += 2 * sizes[name]
        current_peak, peak_step = peak()

    return PagingPlan(
        budget_bytes=budget_bytes,
        fits=current_peak <= budget_bytes,
        paged_values=paged,
        peak_before=peak_before,
        peak_after=current_peak,
        flash_traffic_bytes=traffic,
    )
