"""Peak-memory profiling of a scheduled training graph.

Separates the components the paper discusses:

* parameters + optimizer state (always resident),
* transient activations/gradients (the paper's "training memory bottleneck"),
* the gradient buffers specifically — which the operator-reordering pass
  shrinks by applying updates as soon as each gradient is produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import Graph
from ..ir.node import Node
from ..ir.ops import get_schema
from .liveness import value_lifetimes


@dataclass
class MemoryProfile:
    """Byte-level memory breakdown for one schedule."""

    peak_transient_bytes: int
    resident_bytes: int          # parameters + optimizer state + constants
    peak_total_bytes: int
    peak_step: int               # schedule index at which the peak occurs
    timeline: list[int] = field(default_factory=list, repr=False)

    @property
    def peak_total_mb(self) -> float:
        return self.peak_total_bytes / (1024 * 1024)


def profile_memory(graph: Graph, schedule: list[Node] | None = None,
                   keep_timeline: bool = False) -> MemoryProfile:
    """Simulate buffer allocation over ``schedule`` and report the peak.

    A transient value occupies memory from its producing step through its
    last use; in-place op outputs alias their parameter and occupy nothing.
    """
    if schedule is None:
        schedule = graph.topological_order()
    lifetimes = value_lifetimes(graph, schedule)

    resident = set(graph.initializers)
    alias: set[str] = set()
    for node in schedule:
        if get_schema(node.op_type).inplace:
            alias.update(node.outputs)

    resident_bytes = sum(graph.spec(n).nbytes for n in resident)

    horizon = len(schedule)
    deltas = [0] * (horizon + 1)
    for name, life in lifetimes.items():
        if name in resident or name in alias:
            continue
        size = graph.spec(name).nbytes
        birth = max(life.start, 0)
        deltas[birth] += size
        if life.end + 1 <= horizon:
            deltas[min(life.end + 1, horizon)] -= size

    timeline: list[int] = []
    current = 0
    peak = 0
    peak_step = 0
    for step in range(horizon):
        current += deltas[step]
        if keep_timeline:
            timeline.append(current)
        if current > peak:
            peak = current
            peak_step = step

    return MemoryProfile(
        peak_transient_bytes=peak,
        resident_bytes=resident_bytes,
        peak_total_bytes=peak + resident_bytes,
        peak_step=peak_step,
        timeline=timeline,
    )
