"""Memory analysis: tensor liveness, peak-usage profiling, arena planning.

Training memory is the binding constraint on edge devices (paper Table 4);
this package turns a compiled schedule into the numbers the paper reports —
peak transient bytes, parameter/optimizer-state bytes, and a static arena
layout for MCU-class targets.
"""

from .liveness import Lifetime, value_lifetimes
from .planner import ArenaPlan, plan_arena
from .profiler import MemoryProfile, profile_memory
from .remat import (Eviction, PagingPlan, RematResult, plan_paging,
                    rematerialize)

__all__ = [
    "ArenaPlan",
    "Eviction",
    "Lifetime",
    "MemoryProfile",
    "PagingPlan",
    "RematResult",
    "plan_arena",
    "plan_paging",
    "profile_memory",
    "rematerialize",
    "value_lifetimes",
]
