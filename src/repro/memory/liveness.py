"""Tensor lifetime analysis over a concrete schedule.

A value is *live* from the step that produces it until the last step that
consumes it. Graph inputs and initializers are born before step 0; graph
outputs (and in-place optimizer outputs) die after the last step.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MemoryPlanError
from ..ir import Graph
from ..ir.node import Node
from ..ir.ops import get_schema


@dataclass(frozen=True)
class Lifetime:
    """Half-open interval of schedule steps during which a value is live."""

    start: int  # step producing the value (-1 for inputs/initializers)
    end: int    # last step consuming it (len(schedule) if a graph output)

    def overlaps(self, other: "Lifetime") -> bool:
        return not (self.end < other.start or other.end < self.start)


def value_lifetimes(graph: Graph, schedule: list[Node]) -> dict[str, Lifetime]:
    """Compute the lifetime of every value under ``schedule``.

    Raises:
        MemoryPlanError: if the schedule references unknown values or uses a
            value before it is produced.
    """
    position = {node.name: i for i, node in enumerate(schedule)}
    if len(position) != len(schedule):
        raise MemoryPlanError("schedule contains duplicate nodes")

    start: dict[str, int] = {}
    for name in graph.inputs:
        start[name] = -1
    for name in graph.initializers:
        start[name] = -1

    end: dict[str, int] = {name: -1 for name in start}
    horizon = len(schedule)

    for i, node in enumerate(schedule):
        for inp in node.inputs:
            if inp not in start:
                raise MemoryPlanError(
                    f"step {i} ({node.name}) reads {inp!r} before production"
                )
            end[inp] = max(end[inp], i)
        for out in node.outputs:
            if out in start:
                raise MemoryPlanError(f"value {out!r} produced twice")
            start[out] = i
            end[out] = i

    for name in graph.outputs:
        if name in end:
            end[name] = horizon
    # In-place optimizer updates keep their parameter alive forever.
    for node in schedule:
        if get_schema(node.op_type).inplace:
            end[node.inputs[0]] = horizon
            for out in node.outputs:
                end[out] = horizon

    return {
        name: Lifetime(start[name], end[name])
        for name in start
    }
