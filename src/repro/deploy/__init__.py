"""Deployment: self-contained artifacts and the slim-binary size model.

PockEngine "compiles used operators only to ship slim binaries" and runs
"without host language" (paper Table 1, §2.5). This package provides the
matching final stage: :func:`save_artifact` freezes a compiled program
(graph, schedule, arena plan, weights) into a directory any minimal
runtime can execute, and :mod:`~repro.deploy.binsize` accounts for the
flash footprint of linking exactly the kernels the schedule uses.
"""

from .artifact import DeployedProgram, load_artifact, save_artifact
from .binsize import (FRAMEWORK_BINARY_BYTES, KERNEL_CODE_BYTES,
                      RUNTIME_CORE_BYTES, BinarySizeReport,
                      estimate_binary_size)

__all__ = [
    "BinarySizeReport",
    "DeployedProgram",
    "FRAMEWORK_BINARY_BYTES",
    "KERNEL_CODE_BYTES",
    "RUNTIME_CORE_BYTES",
    "estimate_binary_size",
    "load_artifact",
    "save_artifact",
]
