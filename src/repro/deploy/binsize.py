"""Binary-size accounting for deployed programs.

The paper's runtime claim (§2.1, §2.5): host-language frameworks drag in
hundreds of megabytes, while a compilation-based engine links *only the
kernels the schedule uses* on top of a tiny scheduler core. This module
prices that: per-kernel compiled code sizes (CMSIS-NN/TinyEngine-class
ARM builds, -Os), a fixed runtime core, and the weight payload.

The code sizes are estimates of a representative embedded build and exist
to make the *structure* of the claim measurable — the slim binary grows
only with the operator set, not with the framework.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import Graph
from ..ir.node import Node

#: Compiled code bytes per kernel (ARM Thumb-2, -Os, CMSIS-NN-class).
KERNEL_CODE_BYTES: dict[str, int] = {
    "conv2d": 7400,           # im2col + tiled GEMM inner kernels
    "conv2d_dx": 8200,        # transposed conv (col2im path)
    "conv2d_dw": 6800,
    "conv2d_i8": 5200,        # int8 direct conv + requantization
    "matmul": 3600,
    "matmul_i8": 2900,
    "bias_add": 520,
    "add_i8": 680,
    "maxpool2d": 980,
    "avgpool2d": 1040,
    "maxpool2d_grad": 1240,
    "avgpool2d_grad": 1180,
    "global_avg_pool": 620,
    "global_avg_pool_i8": 660,
    "layernorm": 1380,
    "rmsnorm": 1240,
    "softmax": 1100,
    "log_softmax": 1160,
    "embedding": 540,
    "embedding_grad": 760,
    "onehot": 430,
    "quantize_linear": 470,
    "dequantize_linear": 450,
    "fake_quant": 620,
    "apply_sgd": 700,
    "apply_adam": 1150,
    "apply_lion": 860,
    "reduce_sum": 760,
    "reduce_mean": 800,
    "reduce_max": 760,
    "transpose": 880,
    "broadcast_to": 410,
    "concat": 520,
    "pad": 640,
    # reshape/slice are views: pointer arithmetic inside the core.
    "reshape": 0,
    "slice": 0,
}

#: Anything unlisted links a generic elementwise kernel.
DEFAULT_KERNEL_BYTES = 500

#: Scheduler + arena allocator + tensor structs (no interpreter, no GC).
RUNTIME_CORE_BYTES = 18 * 1024

#: On-disk installation footprint of the baselines, for scale. Public pip
#: wheel / SDK sizes (CPU builds), not fine calibration.
FRAMEWORK_BINARY_BYTES: dict[str, int] = {
    "pytorch": 900 * 2 ** 20,
    "tensorflow": 1100 * 2 ** 20,
    "jax": 450 * 2 ** 20,
    "mnn": 5 * 2 ** 20,
    "tflite_micro": 120 * 2 ** 10,
    "pockengine": RUNTIME_CORE_BYTES,  # plus per-model kernels, see report
}


@dataclass
class BinarySizeReport:
    """Flash footprint of one deployed program."""

    model: str
    kernel_bytes: dict[str, int] = field(default_factory=dict)
    runtime_bytes: int = RUNTIME_CORE_BYTES
    weight_bytes: int = 0

    @property
    def code_bytes(self) -> int:
        return self.runtime_bytes + sum(self.kernel_bytes.values())

    @property
    def total_bytes(self) -> int:
        return self.code_bytes + self.weight_bytes

    @property
    def num_kernels(self) -> int:
        return len(self.kernel_bytes)


def kernel_code_size(op_type: str) -> int:
    return KERNEL_CODE_BYTES.get(op_type, DEFAULT_KERNEL_BYTES)


def estimate_binary_size(graph: Graph,
                         schedule: list[Node] | None = None
                         ) -> BinarySizeReport:
    """Account the flash bytes for deploying ``graph``.

    Each distinct op type links its kernel once; weights ship at their
    stored precision (int8 graphs pay 4x less here too).
    """
    nodes = schedule if schedule is not None else graph.nodes
    report = BinarySizeReport(model=graph.name)
    for node in nodes:
        if node.op_type not in report.kernel_bytes:
            report.kernel_bytes[node.op_type] = kernel_code_size(
                node.op_type)
    report.weight_bytes = sum(
        arr.nbytes for arr in graph.initializers.values())
    return report
