"""Worker-process entry points for the serve layer's process backend.

This module is what actually runs inside a step worker, and it lives in
:mod:`repro.deploy` — not :mod:`repro.serve` — deliberately: unpickling a
submitted task imports the entry point's module *and its package inits*,
and ``repro.serve`` pulls in the compiler (cache keys hash
``CompileOptions``, the service compiles). The deployed engine must not.
From here the worker's import closure is exactly the artifact loader, the
executor, and the kernel registry — :func:`probe` reports whether that
held in a live worker.

One worker serves many (program, session) pairs: programs are bound once
per key from their persisted artifact and cached in :data:`_BOUND`
(module state is per-process, so each worker pays each artifact load
once); sessions ship only their mutable state overlay per step.

Two transports deliver that overlay + batch:

* :func:`run_step` — the original pickle path: arrays cross the pool
  pipe by value, the mutated overlay is pickled back;
* :func:`run_step_shm` — the zero-copy path: the parent writes one wire
  frame into a shared-memory slab slot (:mod:`repro.serve.shm`) and the
  task carries only ``(ring name, slot index)``; the worker executes the
  step on **writable views into shared memory**, so the in-place apply
  kernels land the updated overlay directly in the parent's segment and
  only a tiny stub (fetched scalars, observability payload) is pickled
  back. ``repro.serve`` is import-lazy (PEP 562), so attaching the ring
  pulls in exactly ``serve.shm`` + ``serve.wire`` — still no compiler.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import time
from collections import OrderedDict
from time import perf_counter

import numpy as np

#: per-process LRU: program key -> (base program, reusable executor).
#: Bounded — a bound entry holds the full template state plus executor
#: arenas, and a long-lived worker would otherwise retain every program
#: configuration it ever served even after the parent's cache evicted it.
_BOUND: OrderedDict = OrderedDict()
MAX_BOUND_PROGRAMS = 8

#: per-process kernel-time aggregate: (op_type, variant) -> [count, total
#: seconds], fed by sampled steps and reported through :func:`probe`.
_KERNEL_STATS: dict = {}


def _load_fault_spec() -> dict | None:
    """The ``worker.step`` entry of the ``REPRO_FAULTS`` env var, if any.

    A deliberately minimal inline mirror of the arming half of
    :mod:`repro.serve.faults` — this module must NOT import anything
    under ``repro.serve`` (the package init drags in the compiler, which
    :func:`probe` verifies never loads inside a worker). Spawned workers
    inherit the parent's environment, so chaos tests arm worker kills by
    exporting ``REPRO_FAULTS='{"worker.step": {"times": null, "skip": 5,
    "action": "kill"}}'`` before the pool starts.
    """
    raw = os.environ.get("REPRO_FAULTS")
    if not raw:
        return None
    try:
        spec = json.loads(raw).get("worker.step")
    except (ValueError, AttributeError):
        return None
    return spec if isinstance(spec, dict) else None


_FAULT_SPEC = _load_fault_spec()
_fault_calls = 0


def _maybe_fault() -> None:
    """Fire the armed ``worker.step`` fault per its spec (see above)."""
    global _fault_calls
    spec = _FAULT_SPEC
    if not spec:
        return
    _fault_calls += 1
    skip = int(spec.get("skip", 0) or 0)
    if _fault_calls <= skip:
        return
    times = spec.get("times", 1)
    if times is not None and _fault_calls - skip > int(times):
        return
    delay = float(spec.get("delay", 0) or 0)
    if delay:
        time.sleep(delay)
    if spec.get("action") == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    raise RuntimeError("fault injected at worker.step")


def bind(artifact_dir: str, key: str):
    """Load + bind the artifact for ``key`` once per worker process.

    Re-binding after an LRU eviction costs one artifact load — the same
    price as the first touch, never a compile.
    """
    cached = _BOUND.get(key)
    if cached is None:
        from ..runtime.executor import Executor
        from .artifact import load_artifact

        program = load_artifact(artifact_dir).program
        cached = _BOUND[key] = (program, Executor(program))
        while len(_BOUND) > MAX_BOUND_PROGRAMS:
            _BOUND.popitem(last=False)
    else:
        _BOUND.move_to_end(key)
    return cached


def run_step(artifact_dir: str, key: str,
             state: dict[str, np.ndarray],
             feeds: dict[str, np.ndarray],
             fetch: tuple[str, ...],
             trace=None):
    """Execute one plan step; returns ``(fetched_outputs, updated_state,
    peak_transient_bytes, fresh_allocs, obs_payload)``.

    ``trace`` is an optional :class:`repro.obs.TraceCarrier` — the slim
    picklable projection of the parent's trace contexts. When present the
    worker echoes its request IDs back in ``obs_payload`` (with this
    process's pid and the execute interval on the shared monotonic
    clock), and when ``trace.sample`` is set it additionally records
    per-instruction kernel timings. Observations travel in the return
    value, never through shared state, so a crashed worker can't corrupt
    the parent's trace ring. ``obs_payload`` is None for untraced steps.
    """
    _maybe_fault()
    # The in-place apply kernels mutate the overlay arrays we just
    # unpickled, which are exactly what gets shipped back.
    fetched, peak, allocs, obs_payload = _execute(
        artifact_dir, key, state, feeds, fetch, trace)
    return fetched, state, peak, allocs, obs_payload


#: per-process cache of attached shm ring segments, name -> SharedMemory;
#: one attach per (worker, ring) for the pool's lifetime
_SHM_SEGMENTS: dict = {}


def _ring_segment(name: str):
    seg = _SHM_SEGMENTS.get(name)
    if seg is None:
        from ..serve import shm as shm_mod  # lazy package init: no compiler

        seg = _SHM_SEGMENTS[name] = shm_mod.attach(name)
    return seg


def run_step_shm(artifact_dir: str, key: str,
                 ring_name: str, slot: int, slot_bytes: int,
                 fetch: tuple[str, ...],
                 trace=None):
    """Zero-copy variant of :func:`run_step` (see the module docstring).

    The slot's frame meta names which tensors are state overlay vs batch
    feeds. State views are mutated in place in shared memory — there is
    no state in the return value, only ``(fetched, peak_transient_bytes,
    fresh_allocs, obs_payload)``. The slot's sequence counter is held odd
    for the duration of the step so a parent inspecting the slot after a
    worker crash sees "torn", never a half-applied overlay.
    """
    _maybe_fault()
    from ..serve import shm as shm_mod

    seg = _ring_segment(ring_name)
    meta, tensors, _ = shm_mod.read_frame(seg.buf, slot, slot_bytes)
    state = {name: tensors[name] for name in meta["state"]}
    feeds = {name: tensors[name] for name in meta["feeds"]}
    shm_mod.mark_busy(seg.buf, slot, slot_bytes)
    try:
        fetched, peak, allocs, obs_payload = _execute(
            artifact_dir, key, state, feeds, fetch, trace)
    finally:
        shm_mod.mark_done(seg.buf, slot, slot_bytes)
        # rebind the cached executor to its base program and drop its
        # register bindings so no shm views linger between steps — a
        # pinned view would block unmapping the (already released) slot
        # buffer for the life of this worker
        cached = _BOUND.get(key)
        if cached is not None:
            cached[1].program = cached[0]
            cached[1].detach()
    # fetched outputs are executor arena views; pickling copies them, so
    # nothing here aliases the arena after return
    return fetched, peak, allocs, obs_payload


def _execute(artifact_dir: str, key: str,
             state: dict[str, np.ndarray],
             feeds: dict[str, np.ndarray],
             fetch: tuple[str, ...],
             trace=None):
    """The shared step core: bind, overlay state, run, observe."""
    program, executor = bind(artifact_dir, key)
    executor.program = program.with_state(state)
    kernels: list[tuple[str, str, float, float]] = []
    sample = trace is not None and trace.sample
    if sample:
        def _observe(instr, t0, t1):
            kernels.append((instr.node.op_type, instr.variant, t0, t1))
            stat = _KERNEL_STATS.setdefault(
                (instr.node.op_type, instr.variant), [0, 0.0])
            stat[0] += 1
            stat[1] += t1 - t0
        executor.instr_observer = _observe
    began = perf_counter()
    try:
        outputs = executor.run(feeds)
    finally:
        executor.instr_observer = None
    ended = perf_counter()
    fetched = {name: outputs[name] for name in fetch}
    obs_payload = None
    if trace is not None:
        obs_payload = {
            "pid": os.getpid(),
            "request_ids": list(trace.request_ids),
            "execute": (began, ended),
            "kernels": kernels,
        }
    return (fetched, executor.peak_transient_bytes,
            executor.last_step_fresh_allocs, obs_payload)


def probe():
    """Report what this worker process actually imported (honesty check),
    plus the lowering shape of every bound plan (fused instruction counts,
    precomputed constant slots, const-folded scalars, autotune decisions)
    so operators can see which optimizations the data plane is actually
    running."""
    plans = {}
    for key, (program, _executor) in _BOUND.items():
        spec = program.plan_spec()
        tuned_kept = sum(1 for t in spec.tuned_variants
                         if t.variant != "base")
        plans[key[:12]] = {
            "passes": list(spec.passes),
            "instructions": len(spec.instructions),
            "fused_instructions": sum(
                1 for instr in spec.instructions if instr.fused is not None),
            "precomputed_slots": len(spec.precomputed),
            "const_folded_args": sum(
                len(instr.const_args) for instr in spec.instructions),
            "tuned_instructions": len(spec.tuned_variants),
            "tuned_variants_kept": tuned_kept,
        }
    return {
        "pid": os.getpid(),
        "programs_bound": sorted(key[:12] for key in _BOUND),
        "plans": plans,
        "kernel_stats": {
            f"{op}/{variant}": {"count": stat[0], "total_ms": stat[1] * 1e3}
            for (op, variant), stat in sorted(_KERNEL_STATS.items())
        },
        "shm_rings_attached": sorted(_SHM_SEGMENTS),
        "compiler_imported": "repro.runtime.compiler" in sys.modules,
        "autodiff_imported": any(
            name.startswith("repro.autodiff") for name in sys.modules),
    }
