"""Deployable artifacts: freeze a compiled program, reload it anywhere.

An artifact is a directory:

* ``manifest.json`` — format version, model name, execution order, the
  static arena plan, the list of kernels the binary must link, the
  program's meta entries (loss/label names for training artifacts), and —
  since manifest v2 — the serialized execution plan
  (:class:`~repro.runtime.plan.PlanSpec`),
* ``graph.json`` / ``graph.npz`` — the ONNX-like graph-def plus weights
  (the existing :mod:`repro.ir.serialize` format).

The loader needs only the kernel registry and the executor — none of the
compiler passes — mirroring how the real engine ships a binary that knows
nothing about autodiff or graph optimization. With a v2 manifest the
loader does not even lower the graph: the embedded plan spec is bound
against the kernel registry (:func:`repro.runtime.plan.bind_plan`) and the
reloaded program executes the exact instruction stream the compiling
process produced. v1 artifacts (no embedded plan) still load; their plan
is lowered locally on first run.
"""

from __future__ import annotations

import json
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

# planlint is deliberately compiler-free, so importing it here keeps the
# step worker's import closure clean (asynclint's worker-import check
# walks module-level imports and would flag anything heavier).
from ..analysis.planlint import check_plan, verify_enabled
from ..errors import (ExecutionError, GraphError, PlanVersionError,
                      ReproError)
from ..ir import Graph
from ..ir.serialize import load_graph, save_graph
from ..memory.planner import plan_arena
from ..runtime.executor import Executor
from ..runtime.plan import PlanSpec, bind_plan
from ..runtime.program import Program

MANIFEST = "manifest.json"

#: v1: graph + schedule + kernels list. v2 adds the serialized plan spec.
MANIFEST_VERSION = 2
SUPPORTED_MANIFEST_VERSIONS = (1, 2)


@dataclass
class DeployedProgram:
    """A reloaded artifact, ready to execute."""

    graph: Graph
    program: Program
    required_kernels: tuple[str, ...]
    arena_bytes: int
    meta: dict

    def run(self, feeds: dict[str, np.ndarray] | None = None
            ) -> dict[str, np.ndarray]:
        """Execute one step (inference forward, or a full training step
        for artifacts compiled from a training program)."""
        return Executor(self.program).run(feeds)

    @property
    def flash_bytes(self) -> int:
        """Weights + code footprint per the binary-size model."""
        from .binsize import estimate_binary_size

        return estimate_binary_size(self.graph).total_bytes


def _meta_to_json(meta: dict) -> dict:
    """Keep only the JSON-safe, load-time-useful meta entries."""
    out = {}
    for key in ("loss", "logits", "labels"):
        value = meta.get(key)
        if isinstance(value, str):
            out[key] = value
    return out


def save_artifact(program: Program, path: str | Path) -> Path:
    """Write ``program`` to ``path`` (a directory, created if missing).

    The manifest embeds the program's serialized execution plan
    (:meth:`Program.plan_spec` — cached, so saving an already-lowered
    program costs no extra lowering) alongside the graph, schedule, and
    kernel list.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    graph = program.graph
    save_graph(graph, path / "graph")
    arena = plan_arena(graph, program.schedule)
    plan_spec = program.plan_spec()
    manifest = {
        "format_version": MANIFEST_VERSION,
        "model": graph.name,
        "schedule": [node.name for node in program.schedule],
        "kernels": sorted({node.op_type for node in program.schedule}),
        "kernel_variants": {
            name: sorted(variants)
            for name, variants in sorted(plan_spec.required_kernels().items())
        },
        "plan_passes": list(plan_spec.passes),
        "transforms": sorted(plan_spec.required_transforms()),
        "tuned_variants": {
            entry.node: entry.variant
            for entry in plan_spec.tuned_variants
        },
        "arena": {
            "bytes": arena.arena_bytes,
            "offsets": arena.offsets,
        },
        "plan": plan_spec.to_dict(),
        "meta": _meta_to_json(program.meta),
    }
    (path / MANIFEST).write_text(json.dumps(manifest, indent=1))
    return path


def load_artifact(path: str | Path, *,
                  verify: bool | None = None) -> DeployedProgram:
    """Reload an artifact saved by :func:`save_artifact`.

    For v2 manifests the embedded plan spec is deserialized and bound
    against the live kernel registry, so the returned program executes the
    compiling process's instruction stream without re-lowering — and
    without importing anything from the compiler or autodiff.

    Raises:
        GraphError: on a missing/garbled manifest, an unsupported version,
            a schedule referencing unknown nodes, a kernel the runtime does
            not provide, or a corrupted embedded plan.
        PlanVersionError: when the embedded plan speaks a spec version this
            runtime does not — the artifact itself may be fine for another
            build, so the error stays distinguishable (the program cache
            catches it and recompiles instead of failing the request).
        PlanVerifyError: when the embedded plan decodes but fails static
            verification (:mod:`repro.analysis.planlint`) — executing it
            could corrupt state, so it is rejected before binding. On by
            default; ``REPRO_VERIFY_PLANS=0`` (or ``verify=False``) opts
            out. The program cache quarantines such artifacts like
            corrupt ones. ``verify=None`` defers to the environment;
            ``repro lint-plan`` passes ``verify=False`` so it can collect
            every finding into a report instead of stopping at the first.
    """
    path = Path(path)
    try:
        manifest = json.loads((path / MANIFEST).read_text())
    except FileNotFoundError:
        raise GraphError(f"no artifact manifest in {path}") from None
    except json.JSONDecodeError as exc:
        raise GraphError(f"garbled artifact manifest: {exc}") from None
    version = manifest.get("format_version")
    if version not in SUPPORTED_MANIFEST_VERSIONS:
        raise GraphError(f"unsupported artifact version {version}")

    try:
        graph = load_graph(path / "graph")
    except ReproError:
        raise
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
        # Missing/truncated graph.json or graph.npz (json and zipfile
        # errors are ValueError/OSError subclasses): honour the GraphError
        # contract so callers like the persistent program cache can treat
        # an unreadable artifact as a miss instead of crashing a request.
        raise GraphError(f"unreadable artifact graph in {path}: {exc}") \
            from None
    by_name = {node.name: node for node in graph.nodes}
    try:
        schedule = [by_name[name] for name in manifest["schedule"]]
    except KeyError as exc:
        raise GraphError(f"schedule references unknown node {exc}") from None

    from ..kernels import KERNELS
    missing = [k for k in manifest["kernels"] if k not in KERNELS]
    if missing:
        raise GraphError(f"runtime lacks kernels for {missing}")

    program = Program.from_graph(graph, schedule)
    meta = dict(manifest.get("meta", {}))
    # Loss/logits/labels names ride along so serving layers can drive the
    # reloaded program exactly like a freshly compiled one.
    program.meta.update(meta)

    if version >= 2:
        try:
            spec = PlanSpec.from_dict(manifest["plan"])
        except KeyError:
            raise GraphError(
                "artifact manifest v2 lacks an embedded plan") from None
        except PlanVersionError:
            raise  # version skew, not corruption: callers may recompile
        except ExecutionError as exc:
            raise GraphError(f"corrupted artifact plan: {exc}") from None
        produced = {name for name, _ in spec.output_slots}
        if produced != set(program.outputs):
            raise GraphError(
                f"artifact plan outputs {sorted(produced)} disagree with "
                f"graph outputs {sorted(program.outputs)}")
        # Static verification before binding: a structurally-decodable
        # plan can still be a miscompile (tampered slots, lying byte
        # accounting). PlanVerifyError propagates as itself — it is not
        # "corruption we can shrug at" but a plan that would silently
        # trash state; the program cache quarantines the artifact.
        run_verify = verify if verify is not None \
            else verify_enabled(default=True)  # REPRO_VERIFY_PLANS=0 opts out
        if run_verify:
            check_plan(spec, program, stage=f"artifact load ({path})")
        try:
            program.attach_plan_spec(spec)
            program.meta["__plan__"] = bind_plan(spec, by_name)
        except ExecutionError as exc:
            raise GraphError(f"corrupted artifact plan: {exc}") from None

    return DeployedProgram(
        graph=graph,
        program=program,
        required_kernels=tuple(manifest["kernels"]),
        arena_bytes=int(manifest["arena"]["bytes"]),
        meta=meta,
    )
