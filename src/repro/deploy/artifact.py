"""Deployable artifacts: freeze a compiled program, reload it anywhere.

An artifact is a directory:

* ``manifest.json`` — format version, model name, execution order, the
  static arena plan, the list of kernels the binary must link, and the
  program's meta entries (loss/label names for training artifacts),
* ``graph.json`` / ``graph.npz`` — the ONNX-like graph-def plus weights
  (the existing :mod:`repro.ir.serialize` format).

The loader needs only the kernel registry and the executor — none of the
compiler passes — mirroring how the real engine ships a binary that knows
nothing about autodiff or graph optimization.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..errors import GraphError
from ..ir import Graph
from ..ir.serialize import FORMAT_VERSION, load_graph, save_graph
from ..memory.planner import plan_arena
from ..runtime.executor import Executor
from ..runtime.program import Program

MANIFEST = "manifest.json"


@dataclass
class DeployedProgram:
    """A reloaded artifact, ready to execute."""

    graph: Graph
    program: Program
    required_kernels: tuple[str, ...]
    arena_bytes: int
    meta: dict

    def run(self, feeds: dict[str, np.ndarray] | None = None
            ) -> dict[str, np.ndarray]:
        """Execute one step (inference forward, or a full training step
        for artifacts compiled from a training program)."""
        return Executor(self.program).run(feeds)

    @property
    def flash_bytes(self) -> int:
        """Weights + code footprint per the binary-size model."""
        from .binsize import estimate_binary_size

        return estimate_binary_size(self.graph).total_bytes


def _meta_to_json(meta: dict) -> dict:
    """Keep only the JSON-safe, load-time-useful meta entries."""
    out = {}
    for key in ("loss", "logits", "labels"):
        value = meta.get(key)
        if isinstance(value, str):
            out[key] = value
    return out


def save_artifact(program: Program, path: str | Path) -> Path:
    """Write ``program`` to ``path`` (a directory, created if missing)."""
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    graph = program.graph
    save_graph(graph, path / "graph")
    arena = plan_arena(graph, program.schedule)
    manifest = {
        "format_version": FORMAT_VERSION,
        "model": graph.name,
        "schedule": [node.name for node in program.schedule],
        "kernels": sorted({node.op_type for node in program.schedule}),
        "arena": {
            "bytes": arena.arena_bytes,
            "offsets": arena.offsets,
        },
        "meta": _meta_to_json(program.meta),
    }
    (path / MANIFEST).write_text(json.dumps(manifest, indent=1))
    return path


def load_artifact(path: str | Path) -> DeployedProgram:
    """Reload an artifact saved by :func:`save_artifact`.

    Raises:
        GraphError: on a missing/garbled manifest, a schedule referencing
            unknown nodes, or a kernel the runtime does not provide.
    """
    path = Path(path)
    try:
        manifest = json.loads((path / MANIFEST).read_text())
    except FileNotFoundError:
        raise GraphError(f"no artifact manifest in {path}") from None
    except json.JSONDecodeError as exc:
        raise GraphError(f"garbled artifact manifest: {exc}") from None
    if manifest.get("format_version") != FORMAT_VERSION:
        raise GraphError(
            f"unsupported artifact version {manifest.get('format_version')}")

    graph = load_graph(path / "graph")
    by_name = {node.name: node for node in graph.nodes}
    try:
        schedule = [by_name[name] for name in manifest["schedule"]]
    except KeyError as exc:
        raise GraphError(f"schedule references unknown node {exc}") from None

    from ..kernels import KERNELS
    missing = [k for k in manifest["kernels"] if k not in KERNELS]
    if missing:
        raise GraphError(f"runtime lacks kernels for {missing}")

    return DeployedProgram(
        graph=graph,
        program=Program.from_graph(graph, schedule),
        required_kernels=tuple(manifest["kernels"]),
        arena_bytes=int(manifest["arena"]["bytes"]),
        meta=dict(manifest.get("meta", {})),
    )
