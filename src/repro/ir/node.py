"""Graph nodes: a single operator application.

Nodes reference tensors by name; the owning :class:`~repro.ir.graph.Graph`
maps names to :class:`~repro.ir.tensor.TensorSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class Node:
    """One operator in the computation graph.

    Attributes:
        op_type: registered operator name, e.g. ``"conv2d"``.
        name: unique node name within its graph.
        inputs: names of consumed tensors, in operator order.
        outputs: names of produced tensors.
        attrs: operator attributes (stride, axes, fused activation, ...).
    """

    op_type: str
    name: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    attrs: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.inputs = tuple(self.inputs)
        self.outputs = tuple(self.outputs)

    def attr_key(self) -> tuple:
        """A hashable, order-independent rendering of the attributes.

        Used by common-subexpression elimination to decide whether two nodes
        compute the same thing.
        """
        return tuple(sorted((k, _freeze(v)) for k, v in self.attrs.items()))

    def replace_input(self, old: str, new: str) -> None:
        """Rewire every occurrence of input ``old`` to ``new``."""
        self.inputs = tuple(new if name == old else name for name in self.inputs)

    def __str__(self) -> str:
        attrs = ", ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
        suffix = f" {{{attrs}}}" if attrs else ""
        return (
            f"{', '.join(self.outputs)} = {self.op_type}"
            f"({', '.join(self.inputs)}){suffix}"
        )


def _freeze(value: Any) -> Any:
    """Recursively convert lists/tuples/dicts into hashable tuples."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    return value
