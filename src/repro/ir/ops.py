"""Operator schema registry: shape inference, FLOP and byte estimates.

Every operator the engine understands is registered here with:

* a shape/dtype inference function (used by the graph builder and validator),
* a FLOP estimate (used by the device latency cost model),
* the attribute names it accepts.

The op set is deliberately the *inference* op set (paper section 2.5):
gradient rules in :mod:`repro.autodiff` emit these same primitives, which is
what lets inference-only backends execute training graphs. The only
training-flavoured ops are ``conv2d_dx`` (a transposed convolution, itself
used by inference decoders), ``conv2d_dw``, ``maxpool2d_grad``,
``embedding_grad`` (a scatter-add) and the in-place ``apply_*`` optimizer
steps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..errors import ShapeError
from .dtype import DType
from .tensor import TensorSpec

# An inference function maps (input specs, attrs) -> list of (shape, dtype).
InferFn = Callable[[list[TensorSpec], dict], list[tuple[tuple[int, ...], DType]]]
FlopsFn = Callable[[list[TensorSpec], list[TensorSpec], dict], int]


@dataclass(frozen=True)
class OpSchema:
    """Static description of one operator type."""

    name: str
    min_inputs: int
    max_inputs: int
    infer: InferFn
    flops: FlopsFn
    attrs: frozenset[str] = field(default_factory=frozenset)
    inplace: bool = False  # optimizer apply ops mutate their first input

    def check_arity(self, n: int) -> None:
        if not (self.min_inputs <= n <= self.max_inputs):
            raise ShapeError(
                f"op {self.name!r} expects between {self.min_inputs} and "
                f"{self.max_inputs} inputs, got {n}"
            )


OPS: dict[str, OpSchema] = {}


def register_op(
    name: str,
    min_inputs: int,
    max_inputs: int | None = None,
    attrs: tuple[str, ...] = (),
    flops: FlopsFn | None = None,
    inplace: bool = False,
) -> Callable[[InferFn], InferFn]:
    """Decorator registering ``fn`` as the shape-inference rule for ``name``."""

    def wrap(fn: InferFn) -> InferFn:
        OPS[name] = OpSchema(
            name=name,
            min_inputs=min_inputs,
            max_inputs=max_inputs if max_inputs is not None else min_inputs,
            infer=fn,
            flops=flops or _zero_flops,
            attrs=frozenset(attrs),
            inplace=inplace,
        )
        return fn

    return wrap


def get_schema(op_type: str) -> OpSchema:
    try:
        return OPS[op_type]
    except KeyError:
        raise ShapeError(f"unknown operator {op_type!r}") from None


def _zero_flops(inputs, outputs, attrs) -> int:
    return 0


def _elem_flops(inputs, outputs, attrs) -> int:
    return outputs[0].num_elements


def _nelem(shape: tuple[int, ...]) -> int:
    return math.prod(shape) if shape else 1


def broadcast_shapes(a: tuple[int, ...], b: tuple[int, ...]) -> tuple[int, ...]:
    """Numpy-style broadcasting; raises :class:`ShapeError` on mismatch."""
    try:
        return tuple(int(d) for d in np.broadcast_shapes(a, b))
    except ValueError:
        raise ShapeError(f"cannot broadcast {a} with {b}") from None


# ---------------------------------------------------------------------------
# Elementwise ops
# ---------------------------------------------------------------------------

def _binary_infer(inputs, attrs):
    a, b = inputs
    return [(broadcast_shapes(a.shape, b.shape), a.dtype)]


def _unary_infer(inputs, attrs):
    (a,) = inputs
    return [(a.shape, a.dtype)]


for _name in ("add", "sub", "mul", "div", "maximum", "minimum"):
    register_op(_name, 2, attrs=(), flops=_elem_flops)(_binary_infer)

for _name in ("neg", "exp", "log", "sqrt", "step", "abs", "sign"):
    register_op(_name, 1, flops=_elem_flops)(_unary_infer)

# Activations carry a higher per-element cost than simple arithmetic.
def _act_flops(inputs, outputs, attrs) -> int:
    return 4 * outputs[0].num_elements


for _name in ("relu", "relu6", "sigmoid", "tanh"):
    register_op(_name, 1, flops=_act_flops)(_unary_infer)

register_op("gelu", 1, flops=lambda i, o, a: 8 * o[0].num_elements)(_unary_infer)


@register_op("equal", 2, flops=_elem_flops)
def _equal_infer(inputs, attrs):
    a, b = inputs
    # Produces a float mask (1.0 where equal) so it composes with mul.
    return [(broadcast_shapes(a.shape, b.shape), DType.FLOAT32)]


@register_op("cast", 1, attrs=("dtype",))
def _cast_infer(inputs, attrs):
    (a,) = inputs
    return [(a.shape, DType(attrs["dtype"]))]


# ---------------------------------------------------------------------------
# Shape manipulation
# ---------------------------------------------------------------------------

@register_op("reshape", 1, attrs=("shape",))
def _reshape_infer(inputs, attrs):
    (a,) = inputs
    shape = tuple(int(d) for d in attrs["shape"])
    if shape.count(-1) > 1:
        raise ShapeError(f"reshape accepts at most one -1: {shape}")
    if -1 in shape:
        known = -_nelem(shape)  # product of the other dims (negated by -1)
        if known == 0 or a.num_elements % known:
            raise ShapeError(f"cannot reshape {a.shape} to {shape}")
        shape = tuple(a.num_elements // known if d == -1 else d for d in shape)
    if _nelem(shape) != a.num_elements:
        raise ShapeError(f"cannot reshape {a.shape} ({a.num_elements}) to {shape}")
    return [(shape, a.dtype)]


@register_op("transpose", 1, attrs=("perm",))
def _transpose_infer(inputs, attrs):
    (a,) = inputs
    perm = tuple(int(p) for p in attrs["perm"])
    if sorted(perm) != list(range(a.rank)):
        raise ShapeError(f"bad permutation {perm} for rank {a.rank}")
    return [(tuple(a.shape[p] for p in perm), a.dtype)]


@register_op("slice", 1, attrs=("axis", "start", "end"))
def _slice_infer(inputs, attrs):
    (a,) = inputs
    axis = int(attrs["axis"])
    start, end = int(attrs["start"]), int(attrs["end"])
    if not (0 <= axis < a.rank):
        raise ShapeError(f"slice axis {axis} out of range for {a.shape}")
    end = min(end, a.shape[axis])
    if not (0 <= start <= end):
        raise ShapeError(f"bad slice [{start}:{end}] on dim {a.shape[axis]}")
    shape = list(a.shape)
    shape[axis] = end - start
    return [(tuple(shape), a.dtype)]


@register_op("concat", 2, max_inputs=64, attrs=("axis",))
def _concat_infer(inputs, attrs):
    axis = int(attrs["axis"])
    base = list(inputs[0].shape)
    total = 0
    for spec in inputs:
        if spec.rank != len(base):
            raise ShapeError("concat inputs must share rank")
        for dim in range(spec.rank):
            if dim != axis and spec.shape[dim] != base[dim]:
                raise ShapeError(f"concat mismatch at axis {dim}")
        total += spec.shape[axis]
    base[axis] = total
    return [(tuple(base), inputs[0].dtype)]


@register_op("pad", 1, attrs=("pads",), flops=_elem_flops)
def _pad_infer(inputs, attrs):
    (a,) = inputs
    pads = [tuple(int(x) for x in p) for p in attrs["pads"]]
    if len(pads) != a.rank:
        raise ShapeError(f"pad needs {a.rank} (before, after) pairs, got {len(pads)}")
    shape = tuple(d + lo + hi for d, (lo, hi) in zip(a.shape, pads))
    return [(shape, a.dtype)]


@register_op("broadcast_to", 1, attrs=("shape",), flops=_elem_flops)
def _broadcast_infer(inputs, attrs):
    (a,) = inputs
    shape = tuple(int(d) for d in attrs["shape"])
    if broadcast_shapes(a.shape, shape) != shape:
        raise ShapeError(f"cannot broadcast {a.shape} to {shape}")
    return [(shape, a.dtype)]


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------

def _reduce_shape(spec: TensorSpec, attrs) -> tuple[int, ...]:
    axes = attrs.get("axes")
    axes = tuple(range(spec.rank)) if axes is None else tuple(int(x) for x in axes)
    keepdims = bool(attrs.get("keepdims", False))
    for axis in axes:
        if not (0 <= axis < spec.rank):
            raise ShapeError(f"reduce axis {axis} out of range for {spec.shape}")
    if keepdims:
        return tuple(1 if i in axes else d for i, d in enumerate(spec.shape))
    return tuple(d for i, d in enumerate(spec.shape) if i not in axes)


def _reduce_infer(inputs, attrs):
    (a,) = inputs
    return [(_reduce_shape(a, attrs), a.dtype)]


def _reduce_flops(inputs, outputs, attrs) -> int:
    return inputs[0].num_elements


for _name in ("reduce_sum", "reduce_mean", "reduce_max"):
    register_op(_name, 1, attrs=("axes", "keepdims"), flops=_reduce_flops)(
        _reduce_infer
    )


# ---------------------------------------------------------------------------
# Linear algebra
# ---------------------------------------------------------------------------

def _trans_last2(shape, flag) -> tuple:
    """Swap the last two dims of ``shape`` when ``flag`` is truthy."""
    if flag:
        return shape[:-2] + (shape[-1], shape[-2])
    return shape


def _matmul_flops(inputs, outputs, attrs) -> int:
    a = inputs[0]  # a third (fused bias) input does not change the FLOPs
    k = _trans_last2(a.shape, attrs.get("trans_a"))[-1]
    return 2 * outputs[0].num_elements * k


@register_op(
    "matmul", 2, max_inputs=3,
    attrs=("activation", "trans_a", "trans_b"), flops=_matmul_flops,
)
def _matmul_infer(inputs, attrs):
    a, b = inputs[0], inputs[1]
    if a.rank < 2 or b.rank < 2:
        raise ShapeError("matmul inputs must have rank >= 2")
    a_shape = _trans_last2(a.shape, attrs.get("trans_a"))
    b_shape = _trans_last2(b.shape, attrs.get("trans_b"))
    if a_shape[-1] != b_shape[-2]:
        raise ShapeError(f"matmul inner dims differ: {a_shape} @ {b_shape}")
    batch = broadcast_shapes(a_shape[:-2], b_shape[:-2])
    shape = batch + (a_shape[-2], b_shape[-1])
    if len(inputs) == 3:  # fused bias
        bias = inputs[2]
        if bias.shape != (b_shape[-1],):
            raise ShapeError(
                f"fused matmul bias shape {bias.shape} != ({b_shape[-1]},)")
    return [(shape, a.dtype)]


# ---------------------------------------------------------------------------
# Convolution family (NCHW layout; layout pass may retarget to NHWC)
# ---------------------------------------------------------------------------

def _pair(value) -> tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _conv_out_hw(h, w, kh, kw, stride, padding) -> tuple[int, int]:
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    ho = (h + 2 * ph - kh) // sh + 1
    wo = (w + 2 * pw - kw) // sw + 1
    if ho <= 0 or wo <= 0:
        raise ShapeError(f"conv output would be empty: in={h}x{w} k={kh}x{kw}")
    return ho, wo


def _conv2d_flops(inputs, outputs, attrs) -> int:
    w = inputs[1]
    cout, cin_g, kh, kw = w.shape
    macs = outputs[0].num_elements * cin_g * kh * kw
    return 2 * macs


@register_op(
    "conv2d",
    2,
    max_inputs=3,
    attrs=("stride", "padding", "groups", "activation", "algo", "layout"),
    flops=_conv2d_flops,
)
def _conv2d_infer(inputs, attrs):
    x, w = inputs[0], inputs[1]
    if x.rank != 4 or w.rank != 4:
        raise ShapeError("conv2d expects NCHW input and OIHW weight")
    n, c, h, wdim = x.shape
    cout, cin_g, kh, kw = w.shape
    groups = int(attrs.get("groups", 1))
    if c != cin_g * groups:
        raise ShapeError(
            f"conv2d channels mismatch: input C={c}, weight Cin/groups={cin_g}, "
            f"groups={groups}"
        )
    if cout % groups:
        raise ShapeError(f"conv2d Cout={cout} not divisible by groups={groups}")
    ho, wo = _conv_out_hw(
        h, wdim, kh, kw, attrs.get("stride", 1), attrs.get("padding", 0)
    )
    if len(inputs) == 3 and inputs[2].shape != (cout,):
        raise ShapeError(f"fused conv bias shape {inputs[2].shape} != ({cout},)")
    return [((n, cout, ho, wo), x.dtype)]


@register_op(
    "conv2d_dx",
    2,
    attrs=("stride", "padding", "groups", "input_shape"),
    flops=_conv2d_flops,
)
def _conv2d_dx_infer(inputs, attrs):
    grad, w = inputs
    in_shape = tuple(int(d) for d in attrs["input_shape"])
    if len(in_shape) != 4:
        raise ShapeError("conv2d_dx input_shape must be NCHW")
    return [(in_shape, grad.dtype)]


def _conv2d_dw_flops(inputs, outputs, attrs) -> int:
    x, grad = inputs
    cout, cin_g, kh, kw = outputs[0].shape
    return 2 * grad.num_elements * cin_g * kh * kw


@register_op(
    "conv2d_dw",
    2,
    attrs=("stride", "padding", "groups", "kernel_hw"),
    flops=_conv2d_dw_flops,
)
def _conv2d_dw_infer(inputs, attrs):
    x, grad = inputs
    kh, kw = _pair(attrs["kernel_hw"])
    groups = int(attrs.get("groups", 1))
    cin, cout = x.shape[1], grad.shape[1]
    if cin % groups or cout % groups:
        raise ShapeError("conv2d_dw channels not divisible by groups")
    return [((cout, cin // groups, kh, kw), x.dtype)]


@register_op("bias_add", 2, attrs=("axis",), flops=_elem_flops)
def _bias_add_infer(inputs, attrs):
    x, b = inputs
    axis = int(attrs.get("axis", 1))
    if b.rank != 1 or b.shape[0] != x.shape[axis]:
        raise ShapeError(f"bias {b.shape} does not match axis {axis} of {x.shape}")
    return [(x.shape, x.dtype)]


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------

def _pool_infer(inputs, attrs):
    (x,) = inputs
    if x.rank != 4:
        raise ShapeError("pooling expects NCHW input")
    n, c, h, w = x.shape
    kh, kw = _pair(attrs["kernel"])
    stride = attrs.get("stride", attrs["kernel"])
    ho, wo = _conv_out_hw(h, w, kh, kw, stride, attrs.get("padding", 0))
    return [((n, c, ho, wo), x.dtype)]


register_op(
    "maxpool2d", 1, attrs=("kernel", "stride", "padding"), flops=_elem_flops
)(_pool_infer)
register_op(
    "avgpool2d", 1, attrs=("kernel", "stride", "padding"), flops=_elem_flops
)(_pool_infer)


@register_op("maxpool2d_grad", 2, attrs=("kernel", "stride", "padding"),
             flops=lambda i, o, a: 2 * i[0].num_elements)
def _maxpool_grad_infer(inputs, attrs):
    x, grad = inputs
    return [(x.shape, x.dtype)]


@register_op("avgpool2d_grad", 1, attrs=("kernel", "stride", "padding",
                                         "input_shape"),
             flops=lambda i, o, a: 2 * o[0].num_elements)
def _avgpool_grad_infer(inputs, attrs):
    (grad,) = inputs
    return [(tuple(int(d) for d in attrs["input_shape"]), grad.dtype)]


@register_op("global_avg_pool", 1, flops=_reduce_flops)
def _gap_infer(inputs, attrs):
    (x,) = inputs
    if x.rank != 4:
        raise ShapeError("global_avg_pool expects NCHW input")
    n, c, _, _ = x.shape
    return [((n, c), x.dtype)]


# ---------------------------------------------------------------------------
# Normalization / softmax
# ---------------------------------------------------------------------------

@register_op("softmax", 1, attrs=("axis",),
             flops=lambda i, o, a: 5 * o[0].num_elements)
def _softmax_infer(inputs, attrs):
    (x,) = inputs
    return [(x.shape, x.dtype)]


@register_op("log_softmax", 1, attrs=("axis",),
             flops=lambda i, o, a: 5 * o[0].num_elements)
def _log_softmax_infer(inputs, attrs):
    (x,) = inputs
    return [(x.shape, x.dtype)]


@register_op("layernorm", 3, attrs=("eps",),
             flops=lambda i, o, a: 8 * o[0].num_elements)
def _layernorm_infer(inputs, attrs):
    x, gamma, beta = inputs
    dim = x.shape[-1]
    if gamma.shape != (dim,) or beta.shape != (dim,):
        raise ShapeError(f"layernorm scale/shift must be ({dim},)")
    return [(x.shape, x.dtype)]


@register_op("rmsnorm", 2, attrs=("eps",),
             flops=lambda i, o, a: 5 * o[0].num_elements)
def _rmsnorm_infer(inputs, attrs):
    x, gamma = inputs
    if gamma.shape != (x.shape[-1],):
        raise ShapeError(f"rmsnorm scale must be ({x.shape[-1]},)")
    return [(x.shape, x.dtype)]


# ---------------------------------------------------------------------------
# Embedding / indexing
# ---------------------------------------------------------------------------

@register_op("embedding", 2)
def _embedding_infer(inputs, attrs):
    table, ids = inputs
    if table.rank != 2:
        raise ShapeError("embedding table must be 2-D")
    if ids.dtype not in (DType.INT32, DType.INT64):
        raise ShapeError("embedding ids must be integer")
    return [(ids.shape + (table.shape[1],), table.dtype)]


@register_op("embedding_grad", 2, attrs=("num_rows",),
             flops=lambda i, o, a: i[1].num_elements)
def _embedding_grad_infer(inputs, attrs):
    ids, grad = inputs
    rows = int(attrs["num_rows"])
    return [((rows, grad.shape[-1]), grad.dtype)]


@register_op("onehot", 1, attrs=("depth",))
def _onehot_infer(inputs, attrs):
    (ids,) = inputs
    if ids.dtype not in (DType.INT32, DType.INT64):
        raise ShapeError("onehot ids must be integer")
    return [(ids.shape + (int(attrs["depth"]),), DType.FLOAT32)]


# ---------------------------------------------------------------------------
# Quantization ops (int8 deployment + quantization-aware training)
#
# The paper's SNPE/TinyEngine backends run integer models; these ops are the
# IR for that path. ``fake_quant`` simulates int8 rounding during training
# (QAT); ``quantize_linear``/``dequantize_linear`` move tensors between the
# float and int8 domains; ``conv2d_i8``/``matmul_i8`` are the fused integer
# compute ops with int32 accumulation and requantization, the form vendor
# libraries execute.
# ---------------------------------------------------------------------------

def _qdtype(bits) -> DType:
    bits = int(bits)
    if bits == 8:
        return DType.INT8
    if bits == 32:
        return DType.INT32
    raise ShapeError(f"unsupported quantized width: {bits} bits")


_QUANT_SCALE_ATTRS = ("scale", "zero_point", "bits", "axis")


@register_op("fake_quant", 1, attrs=_QUANT_SCALE_ATTRS,
             flops=lambda i, o, a: 3 * o[0].num_elements)
def _fake_quant_infer(inputs, attrs):
    (x,) = inputs
    if not x.dtype.is_float:
        raise ShapeError("fake_quant input must be float")
    return [(x.shape, x.dtype)]


@register_op("quantize_linear", 1, attrs=_QUANT_SCALE_ATTRS,
             flops=_elem_flops)
def _quantize_infer(inputs, attrs):
    (x,) = inputs
    return [(x.shape, _qdtype(attrs.get("bits", 8)))]


@register_op("dequantize_linear", 1, attrs=_QUANT_SCALE_ATTRS,
             flops=_elem_flops)
def _dequantize_infer(inputs, attrs):
    (x,) = inputs
    return [(x.shape, DType.FLOAT32)]


_REQUANT_ATTRS = (
    "x_scale", "x_zero_point", "w_scale", "out_scale", "out_zero_point",
    "activation",
)


@register_op(
    "conv2d_i8", 2, max_inputs=3,
    attrs=("stride", "padding", "groups", "layout") + _REQUANT_ATTRS,
    flops=_conv2d_flops,
)
def _conv2d_i8_infer(inputs, attrs):
    x, w = inputs[0], inputs[1]
    if x.dtype != DType.INT8 or w.dtype != DType.INT8:
        raise ShapeError("conv2d_i8 expects int8 input and weight")
    if len(inputs) == 3 and inputs[2].dtype != DType.INT32:
        raise ShapeError("conv2d_i8 bias must be int32")
    ((shape, _),) = _conv2d_infer(inputs, attrs)
    return [(shape, DType.INT8)]


@register_op(
    "add_i8", 2,
    attrs=("a_scale", "a_zero_point", "b_scale", "b_zero_point",
           "out_scale", "out_zero_point", "activation"),
    flops=_elem_flops,
)
def _add_i8_infer(inputs, attrs):
    a, b = inputs
    if a.dtype != DType.INT8 or b.dtype != DType.INT8:
        raise ShapeError("add_i8 expects int8 operands")
    return [(broadcast_shapes(a.shape, b.shape), DType.INT8)]


@register_op("global_avg_pool_i8", 1, flops=_reduce_flops)
def _global_avg_pool_i8_infer(inputs, attrs):
    (x,) = inputs
    if x.rank != 4:
        raise ShapeError("global_avg_pool_i8 expects NCHW input")
    if x.dtype != DType.INT8:
        raise ShapeError("global_avg_pool_i8 expects an int8 input")
    n, c, _, _ = x.shape
    return [((n, c), DType.INT8)]


@register_op(
    "matmul_i8", 2, max_inputs=3,
    attrs=_REQUANT_ATTRS, flops=_matmul_flops,
)
def _matmul_i8_infer(inputs, attrs):
    a, b = inputs[0], inputs[1]
    if a.dtype != DType.INT8 or b.dtype != DType.INT8:
        raise ShapeError("matmul_i8 expects int8 operands")
    if len(inputs) == 3 and inputs[2].dtype != DType.INT32:
        raise ShapeError("matmul_i8 bias must be int32")
    ((shape, _),) = _matmul_infer(inputs[:2], {})
    if len(inputs) == 3 and inputs[2].shape != (shape[-1],):
        raise ShapeError(
            f"matmul_i8 bias shape {inputs[2].shape} != ({shape[-1]},)")
    return [(shape, DType.INT8)]


# ---------------------------------------------------------------------------
# Optimizer apply ops (in-place on the first input)
# ---------------------------------------------------------------------------

def _apply_flops(inputs, outputs, attrs) -> int:
    return 6 * inputs[0].num_elements


def _apply_infer(inputs, attrs):
    param = inputs[0]
    return [(param.shape, param.dtype)]


register_op(
    "apply_sgd", 2, max_inputs=5,
    attrs=("lr", "momentum", "weight_decay", "slice_k", "slice_axis",
           "qas_scale", "accum_steps"),
    flops=_apply_flops, inplace=True,
)(_apply_infer)

register_op(
    "apply_adam", 5, max_inputs=7,
    attrs=("lr", "beta1", "beta2", "eps", "weight_decay", "slice_k",
           "slice_axis", "accum_steps"),
    flops=_apply_flops, inplace=True,
)(_apply_infer)

register_op(
    "apply_lion", 3, max_inputs=5,
    attrs=("lr", "beta1", "beta2", "weight_decay", "slice_k", "slice_axis",
           "accum_steps"),
    flops=_apply_flops, inplace=True,
)(_apply_infer)


def op_bytes(in_specs: list[TensorSpec], out_specs: list[TensorSpec]) -> int:
    """Total bytes moved by one op (all inputs read + all outputs written)."""
    return sum(s.nbytes for s in in_specs) + sum(s.nbytes for s in out_specs)


def op_flops(op_type: str, in_specs, out_specs, attrs) -> int:
    """FLOPs executed by one op, per the registered estimate."""
    return int(get_schema(op_type).flops(in_specs, out_specs, attrs))
