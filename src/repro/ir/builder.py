"""GraphBuilder: the ergonomic way to construct IR graphs.

The builder owns name uniquing and runs shape inference on every emitted
node, so a graph produced through it is valid by construction. Both the
frontend tracer and the autodiff engine build graphs exclusively through
this class.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..errors import GraphError
from .dtype import DType
from .graph import Graph
from .node import Node
from .ops import get_schema
from .tensor import TensorSpec


class GraphBuilder:
    """Incrementally builds a :class:`Graph` with inferred shapes."""

    def __init__(self, name: str = "graph", graph: Graph | None = None) -> None:
        self.graph = graph if graph is not None else Graph(name)
        self._counter = 0
        # Seed the counter past any existing names to keep uniqueness when
        # extending a graph (autodiff extends the forward graph in place).
        self._existing = set(self.graph.values)
        self._node_names = {n.name for n in self.graph.nodes}

    # -- naming -------------------------------------------------------------

    def fresh(self, hint: str) -> str:
        """Return a value name not yet used in the graph."""
        while True:
            name = f"{hint}.{self._counter}"
            self._counter += 1
            if name not in self._existing:
                self._existing.add(name)
                return name

    def _fresh_node(self, hint: str) -> str:
        while True:
            name = f"{hint}_{self._counter}"
            self._counter += 1
            if name not in self._node_names:
                self._node_names.add(name)
                return name

    # -- graph boundary -----------------------------------------------------

    def input(self, name: str, shape: Sequence[int],
              dtype: DType = DType.FLOAT32) -> str:
        self.graph.add_value(TensorSpec(name, tuple(shape), dtype))
        self._existing.add(name)
        self.graph.inputs.append(name)
        return name

    def initializer(self, name: str, array: np.ndarray,
                    trainable: bool = False) -> str:
        array = np.asarray(array)
        if name in self._existing:
            name = self.fresh(name)
        spec = TensorSpec(name, array.shape, DType.from_numpy(array.dtype))
        self.graph.add_value(spec)
        self._existing.add(name)
        self.graph.add_initializer(name, array, trainable=trainable)
        return name

    def constant(self, value, hint: str = "const",
                 dtype: np.dtype = np.float32) -> str:
        """Embed a (small) constant as a non-trainable initializer."""
        return self.initializer(self.fresh(hint), np.asarray(value, dtype=dtype))

    def mark_output(self, name: str) -> None:
        if name not in self.graph.values:
            raise GraphError(f"cannot mark unknown value {name!r} as output")
        if name not in self.graph.outputs:
            self.graph.outputs.append(name)

    # -- node emission ------------------------------------------------------

    def emit(
        self,
        op_type: str,
        inputs: Sequence[str],
        attrs: dict[str, Any] | None = None,
        name_hint: str | None = None,
        n_outputs: int = 1,
    ) -> str | list[str]:
        """Create a node, infer output specs, and append it to the graph.

        Returns the single output name, or a list when ``n_outputs > 1``.
        """
        attrs = dict(attrs or {})
        schema = get_schema(op_type)
        schema.check_arity(len(inputs))
        unknown = set(attrs) - set(schema.attrs)
        if unknown:
            raise GraphError(f"op {op_type!r} got unknown attrs {sorted(unknown)}")
        in_specs = [self.graph.spec(i) for i in inputs]
        inferred = schema.infer(in_specs, attrs)
        if len(inferred) != n_outputs:
            raise GraphError(
                f"op {op_type!r} inferred {len(inferred)} outputs, "
                f"expected {n_outputs}"
            )
        hint = name_hint or op_type
        out_names = []
        for shape, dtype in inferred:
            out = self.fresh(hint)
            self.graph.add_value(TensorSpec(out, shape, dtype))
            out_names.append(out)
        node = Node(op_type, self._fresh_node(hint), tuple(inputs),
                    tuple(out_names), attrs)
        self.graph.add_node(node)
        return out_names[0] if n_outputs == 1 else out_names

    # -- convenience wrappers (the ops used most) ----------------------------

    def matmul(self, a: str, b: str) -> str:
        return self.emit("matmul", [a, b])

    def add(self, a: str, b: str) -> str:
        return self.emit("add", [a, b])

    def sub(self, a: str, b: str) -> str:
        return self.emit("sub", [a, b])

    def mul(self, a: str, b: str) -> str:
        return self.emit("mul", [a, b])

    def div(self, a: str, b: str) -> str:
        return self.emit("div", [a, b])

    def neg(self, a: str) -> str:
        return self.emit("neg", [a])

    def reshape(self, a: str, shape: Sequence[int]) -> str:
        return self.emit("reshape", [a], {"shape": tuple(shape)})

    def transpose(self, a: str, perm: Sequence[int]) -> str:
        return self.emit("transpose", [a], {"perm": tuple(perm)})

    def reduce_sum(self, a: str, axes=None, keepdims: bool = False) -> str:
        return self.emit("reduce_sum", [a],
                         {"axes": axes, "keepdims": keepdims})

    def reduce_mean(self, a: str, axes=None, keepdims: bool = False) -> str:
        return self.emit("reduce_mean", [a],
                         {"axes": axes, "keepdims": keepdims})

    def broadcast_to(self, a: str, shape: Sequence[int]) -> str:
        return self.emit("broadcast_to", [a], {"shape": tuple(shape)})

    def slice(self, a: str, axis: int, start: int, end: int) -> str:
        return self.emit("slice", [a], {"axis": axis, "start": start, "end": end})

    def conv2d(self, x: str, w: str, stride=1, padding=0, groups: int = 1) -> str:
        return self.emit("conv2d", [x, w],
                         {"stride": stride, "padding": padding, "groups": groups})

    def bias_add(self, x: str, b: str, axis: int = 1) -> str:
        return self.emit("bias_add", [x, b], {"axis": axis})

    def spec(self, name: str) -> TensorSpec:
        return self.graph.spec(name)

    def shape(self, name: str) -> tuple[int, ...]:
        return self.graph.spec(name).shape
