"""Human-readable text rendering of IR graphs (for debugging and docs)."""

from __future__ import annotations

from .graph import Graph


def format_graph(graph: Graph, max_nodes: int | None = None) -> str:
    """Render a graph as indented pseudo-assembly.

    Args:
        graph: the graph to render.
        max_nodes: truncate the body after this many nodes (None = all).
    """
    lines = [f"graph {graph.name} {{"]
    for name in graph.inputs:
        lines.append(f"  input  {graph.spec(name)}")
    n_params = len(graph.initializers)
    n_train = len(graph.trainable)
    lines.append(f"  # {n_params} initializers ({n_train} trainable)")
    body = graph.nodes if max_nodes is None else graph.nodes[:max_nodes]
    for node in body:
        lines.append(f"  {node}")
    if max_nodes is not None and len(graph.nodes) > max_nodes:
        lines.append(f"  ... {len(graph.nodes) - max_nodes} more nodes")
    for name in graph.outputs:
        lines.append(f"  output {graph.spec(name)}")
    lines.append("}")
    return "\n".join(lines)


def summarize(graph: Graph) -> str:
    """One-line structural summary used in logs and reports."""
    from collections import Counter

    counts = Counter(node.op_type for node in graph.nodes)
    top = ", ".join(f"{op}x{n}" for op, n in counts.most_common(5))
    return (
        f"{graph.name}: {len(graph.nodes)} nodes, "
        f"{len(graph.initializers)} initializers "
        f"({len(graph.trainable)} trainable) [{top}]"
    )
