"""Structural and semantic validation of IR graphs.

Run after every compiler pass in debug mode: passes must preserve validity.
"""

from __future__ import annotations

from ..errors import GraphError, ShapeError
from .graph import Graph
from .ops import get_schema


def validate_graph(graph: Graph) -> None:
    """Raise :class:`GraphError`/:class:`ShapeError` when a graph is invalid.

    Checks performed:

    * every node's op type is registered and arity/attrs are accepted,
    * every value a node reads is an input, initializer, or produced earlier,
    * no value is produced twice,
    * node output specs match what shape inference predicts,
    * all graph outputs exist,
    * the node list is a valid topological order.
    """
    available = set(graph.inputs) | set(graph.initializers)
    produced: set[str] = set()
    for node in graph.nodes:
        schema = get_schema(node.op_type)
        schema.check_arity(len(node.inputs))
        unknown = set(node.attrs) - set(schema.attrs)
        if unknown:
            raise GraphError(
                f"node {node.name!r} has unknown attrs {sorted(unknown)}"
            )
        for inp in node.inputs:
            if inp not in available:
                raise GraphError(
                    f"node {node.name!r} reads {inp!r} before it is defined"
                )
        in_specs = [graph.spec(i) for i in node.inputs]
        inferred = schema.infer(in_specs, node.attrs)
        if len(inferred) != len(node.outputs):
            raise GraphError(
                f"node {node.name!r} has {len(node.outputs)} outputs, "
                f"inference yields {len(inferred)}"
            )
        for out, (shape, dtype) in zip(node.outputs, inferred):
            if out in produced:
                raise GraphError(f"value {out!r} produced twice")
            produced.add(out)
            spec = graph.spec(out)
            if spec.shape != tuple(shape) or spec.dtype != dtype:
                raise ShapeError(
                    f"node {node.name!r} output {out!r} declared "
                    f"{spec.shape}/{spec.dtype.value}, inferred "
                    f"{tuple(shape)}/{dtype.value}"
                )
            available.add(out)
    for out in graph.outputs:
        if out not in graph.values:
            raise GraphError(f"graph output {out!r} has no spec")
        if out not in available:
            raise GraphError(f"graph output {out!r} is never produced")
