"""Tensor metadata: the IR describes tensors by shape and dtype only.

Actual numeric storage lives either in ``Graph.initializers`` (weights,
constants) or inside the runtime executor's value environment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .dtype import DType


@dataclass(frozen=True)
class TensorSpec:
    """Static description of a tensor: name, shape, and element type.

    Shapes are concrete (no symbolic dimensions): PockEngine compiles one
    program per (model, batch size, sequence length) configuration, which
    matches the paper's static-graph design.
    """

    name: str
    shape: tuple[int, ...]
    dtype: DType = DType.FLOAT32

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(int(d) for d in self.shape))
        for dim in self.shape:
            if dim < 0:
                raise ValueError(f"negative dimension in {self.name}: {self.shape}")

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def num_elements(self) -> int:
        return math.prod(self.shape) if self.shape else 1

    @property
    def nbytes(self) -> int:
        """Bytes needed to store this tensor densely."""
        return self.num_elements * self.dtype.itemsize

    def with_name(self, name: str) -> "TensorSpec":
        return TensorSpec(name, self.shape, self.dtype)

    def __str__(self) -> str:
        dims = "x".join(str(d) for d in self.shape) or "scalar"
        return f"{self.name}:{self.dtype.value}[{dims}]"
