"""Data types supported by the IR.

The engine targets edge devices, so reduced-precision types matter: the
memory planner and device cost models both consult :attr:`DType.itemsize`.
"""

from __future__ import annotations

import enum

import numpy as np


class DType(enum.Enum):
    """Tensor element types understood by every subsystem."""

    FLOAT32 = "float32"
    FLOAT16 = "float16"
    INT64 = "int64"
    INT32 = "int32"
    INT8 = "int8"
    BOOL = "bool"

    @property
    def itemsize(self) -> int:
        """Size of one element in bytes."""
        return _ITEMSIZE[self]

    @property
    def np(self) -> np.dtype:
        """The corresponding numpy dtype."""
        return np.dtype(self.value)

    @property
    def is_float(self) -> bool:
        return self in (DType.FLOAT32, DType.FLOAT16)

    @classmethod
    def from_numpy(cls, dtype: np.dtype) -> "DType":
        """Map a numpy dtype to a :class:`DType`.

        Raises:
            ValueError: if the numpy dtype has no IR equivalent.
        """
        name = np.dtype(dtype).name
        try:
            return cls(name)
        except ValueError:
            raise ValueError(f"unsupported numpy dtype: {name!r}") from None


_ITEMSIZE = {
    DType.FLOAT32: 4,
    DType.FLOAT16: 2,
    DType.INT64: 8,
    DType.INT32: 4,
    DType.INT8: 1,
    DType.BOOL: 1,
}
