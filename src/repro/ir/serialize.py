"""Graph serialization: an ONNX-like JSON structure plus an .npz sidecar.

The paper's engine interoperates through "standard ONNX format"; we mirror
that with a JSON graph-def (structure, shapes, attributes) and store tensor
payloads in a companion ``.npz`` so graphs survive round trips exactly.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

import numpy as np

from ..errors import GraphError
from .dtype import DType
from .graph import Graph
from .node import Node
from .tensor import TensorSpec

FORMAT_VERSION = 1


def graph_to_dict(graph: Graph, include_weights: bool = True) -> dict[str, Any]:
    """Convert a graph to a JSON-safe dict.

    When ``include_weights`` is True, initializer payloads are embedded as
    nested lists (fine for small graphs / tests); otherwise only shapes are
    kept and the caller is expected to save weights separately.
    """
    doc: dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "name": graph.name,
        "inputs": list(graph.inputs),
        "outputs": list(graph.outputs),
        "values": {
            name: {"shape": list(spec.shape), "dtype": spec.dtype.value}
            for name, spec in graph.values.items()
        },
        "nodes": [
            {
                "op_type": n.op_type,
                "name": n.name,
                "inputs": list(n.inputs),
                "outputs": list(n.outputs),
                "attrs": _attrs_to_json(n.attrs),
            }
            for n in graph.nodes
        ],
        "trainable": sorted(graph.trainable),
        "metadata": graph.metadata,
    }
    if include_weights:
        doc["initializers"] = {
            name: {"dtype": str(arr.dtype), "data": arr.tolist()}
            for name, arr in graph.initializers.items()
        }
    else:
        doc["initializers"] = {name: None for name in graph.initializers}
    return doc


def graph_from_dict(doc: dict[str, Any],
                    weights: dict[str, np.ndarray] | None = None) -> Graph:
    """Reconstruct a graph from :func:`graph_to_dict` output."""
    if doc.get("format_version") != FORMAT_VERSION:
        raise GraphError(f"unsupported format version {doc.get('format_version')}")
    graph = Graph(doc["name"])
    for name, value in doc["values"].items():
        graph.add_value(
            TensorSpec(name, tuple(value["shape"]), DType(value["dtype"]))
        )
    graph.inputs = list(doc["inputs"])
    graph.outputs = list(doc["outputs"])
    for entry in doc["nodes"]:
        graph.add_node(
            Node(
                entry["op_type"],
                entry["name"],
                tuple(entry["inputs"]),
                tuple(entry["outputs"]),
                _attrs_from_json(entry["attrs"]),
            )
        )
    for name, payload in doc.get("initializers", {}).items():
        if weights is not None and name in weights:
            array = weights[name]
        elif payload is not None:
            array = np.asarray(payload["data"], dtype=payload["dtype"])
            array = array.reshape(tuple(doc["values"][name]["shape"]))
        else:
            raise GraphError(f"no payload for initializer {name!r}")
        graph.add_initializer(name, array)
    graph.trainable = set(doc.get("trainable", ()))
    graph.metadata = dict(doc.get("metadata", {}))
    return graph


def canonical_graph_bytes(graph: Graph, include_weights: bool = False) -> bytes:
    """A deterministic byte encoding of ``graph`` suitable for hashing.

    Structure, value specs, node list, trainable set, and metadata are
    encoded as canonical JSON (sorted keys, no whitespace). Initializer
    *payloads* are never embedded; when ``include_weights`` is True each
    array contributes a digest of its raw bytes instead, so two graphs with
    identical structure but different weights hash differently without the
    cost of serializing full tensors.
    """
    doc = graph_to_dict(graph, include_weights=False)
    if include_weights:
        doc["initializers"] = {
            name: _array_digest(arr)
            for name, arr in graph.initializers.items()
        }
    return json.dumps(doc, sort_keys=True, separators=(",", ":"),
                      default=_json_default).encode()


def graph_fingerprint(graph: Graph, include_weights: bool = False) -> str:
    """A stable hex digest of ``graph``.

    Equal graphs (same structure/shapes/attrs, and — with
    ``include_weights`` — same initializer payloads) always produce the
    same fingerprint across processes; any structural change produces a
    different one. This is the identity the serving layer's program cache
    keys on (:mod:`repro.serve.keys`).
    """
    return hashlib.sha256(
        canonical_graph_bytes(graph, include_weights=include_weights)
    ).hexdigest()


def _array_digest(arr: np.ndarray) -> dict[str, Any]:
    payload = np.ascontiguousarray(arr)
    return {
        "dtype": str(payload.dtype),
        "shape": list(payload.shape),
        "sha256": hashlib.sha256(payload.tobytes()).hexdigest(),
    }


def _json_default(value: Any):
    """Canonicalize the odd non-JSON value metadata can carry."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, np.ndarray):
        return _array_digest(value)
    raise TypeError(f"cannot canonicalize {type(value).__name__} for hashing")


def save_graph(graph: Graph, path: str | Path) -> None:
    """Write ``<path>.json`` (structure) and ``<path>.npz`` (weights)."""
    path = Path(path)
    doc = graph_to_dict(graph, include_weights=False)
    path.with_suffix(".json").write_text(json.dumps(doc, indent=1))
    np.savez(path.with_suffix(".npz"), **graph.initializers)


def load_graph(path: str | Path) -> Graph:
    """Inverse of :func:`save_graph`."""
    path = Path(path)
    doc = json.loads(path.with_suffix(".json").read_text())
    with np.load(path.with_suffix(".npz")) as payload:
        weights = {name: payload[name] for name in payload.files}
    return graph_from_dict(doc, weights=weights)


def _attrs_to_json(attrs: dict[str, Any]) -> dict[str, Any]:
    out = {}
    for key, value in attrs.items():
        if isinstance(value, tuple):
            value = {"__tuple__": [_attrs_to_json({"v": v})["v"] for v in value]}
        elif isinstance(value, np.integer):
            value = int(value)
        elif isinstance(value, np.floating):
            value = float(value)
        out[key] = value
    return out


def _attrs_from_json(attrs: dict[str, Any]) -> dict[str, Any]:
    out = {}
    for key, value in attrs.items():
        if isinstance(value, dict) and "__tuple__" in value:
            value = tuple(value["__tuple__"])
        elif isinstance(value, list):
            value = tuple(value)
        out[key] = value
    return out
