"""Intermediate representation: graphs, tensors, operators.

This is the unified IR the paper describes — the same operator set is used
for forward inference, the compile-time-derived backward pass, and the
optimizer step, so inference-grade backends can execute training.
"""

from .builder import GraphBuilder
from .dtype import DType
from .graph import Graph
from .node import Node
from .ops import OPS, OpSchema, broadcast_shapes, get_schema, op_bytes, op_flops
from .printer import format_graph, summarize
from .serialize import (canonical_graph_bytes, graph_fingerprint,
                        graph_from_dict, graph_to_dict, load_graph,
                        save_graph)
from .tensor import TensorSpec
from .validate import validate_graph

__all__ = [
    "DType",
    "Graph",
    "GraphBuilder",
    "Node",
    "OPS",
    "OpSchema",
    "TensorSpec",
    "broadcast_shapes",
    "canonical_graph_bytes",
    "format_graph",
    "get_schema",
    "graph_fingerprint",
    "graph_from_dict",
    "graph_to_dict",
    "load_graph",
    "op_bytes",
    "op_flops",
    "save_graph",
    "summarize",
    "validate_graph",
]
