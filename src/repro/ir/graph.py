"""The computation graph: a DAG of operator nodes over named tensors.

Graphs carry everything the compiler needs:

* ``nodes`` — operator applications (kept in a valid topological order),
* ``values`` — name -> :class:`TensorSpec` for every tensor,
* ``inputs`` / ``outputs`` — graph boundary,
* ``initializers`` — name -> numpy array for weights and constants,
* ``trainable`` — which initializers are parameters the optimizer may touch,
* ``metadata`` — free-form side information (e.g. parameter provenance used
  by sparse-update schemes).
"""

from __future__ import annotations

import copy
from collections import defaultdict
from typing import Any, Iterable

import numpy as np

from ..errors import GraphError
from .node import Node
from .tensor import TensorSpec


class Graph:
    """A static computation graph (forward, or full training graph)."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self.nodes: list[Node] = []
        self.values: dict[str, TensorSpec] = {}
        self.inputs: list[str] = []
        self.outputs: list[str] = []
        self.initializers: dict[str, np.ndarray] = {}
        self.trainable: set[str] = set()
        self.metadata: dict[str, Any] = {}

    # -- construction -------------------------------------------------------

    def add_value(self, spec: TensorSpec) -> None:
        if spec.name in self.values:
            raise GraphError(f"duplicate value name {spec.name!r}")
        self.values[spec.name] = spec

    def add_node(self, node: Node) -> None:
        for out in node.outputs:
            if out not in self.values:
                raise GraphError(f"node {node.name!r} output {out!r} has no spec")
        self.nodes.append(node)

    def add_initializer(
        self, name: str, array: np.ndarray, trainable: bool = False
    ) -> None:
        if name not in self.values:
            raise GraphError(f"initializer {name!r} has no value spec")
        self.initializers[name] = array
        if trainable:
            self.trainable.add(name)

    # -- queries ------------------------------------------------------------

    def spec(self, name: str) -> TensorSpec:
        try:
            return self.values[name]
        except KeyError:
            raise GraphError(f"unknown value {name!r}") from None

    def producer_map(self) -> dict[str, Node]:
        """Map each value name to the node that produces it."""
        producers: dict[str, Node] = {}
        for node in self.nodes:
            for out in node.outputs:
                if out in producers:
                    raise GraphError(f"value {out!r} produced twice")
                producers[out] = node
        return producers

    def consumer_map(self) -> dict[str, list[Node]]:
        """Map each value name to the nodes that consume it."""
        consumers: dict[str, list[Node]] = defaultdict(list)
        for node in self.nodes:
            for inp in node.inputs:
                consumers[inp].append(node)
        return dict(consumers)

    def node_by_name(self, name: str) -> Node:
        for node in self.nodes:
            if node.name == name:
                return node
        raise GraphError(f"no node named {name!r}")

    def is_source(self, name: str) -> bool:
        """True if a value is a graph input or an initializer."""
        return name in self.initializers or name in self.inputs

    # -- transforms ---------------------------------------------------------

    def topological_order(self) -> list[Node]:
        """Return nodes in a dependency-respecting order (Kahn's algorithm).

        Raises:
            GraphError: if the graph contains a cycle or a dangling input.
        """
        producers = self.producer_map()
        indegree: dict[str, int] = {}
        dependents: dict[str, list[Node]] = defaultdict(list)
        for node in self.nodes:
            count = 0
            for inp in node.inputs:
                if inp in producers:
                    count += 1
                    dependents[inp].append(node)
                elif not self.is_source(inp):
                    raise GraphError(
                        f"node {node.name!r} reads undefined value {inp!r}"
                    )
            indegree[node.name] = count

        # Seed with ready nodes, preserving current order for determinism.
        ready = [n for n in self.nodes if indegree[n.name] == 0]
        order: list[Node] = []
        cursor = 0
        while cursor < len(ready):
            node = ready[cursor]
            cursor += 1
            order.append(node)
            for out in node.outputs:
                for consumer in dependents.get(out, ()):
                    indegree[consumer.name] -= 1
                    if indegree[consumer.name] == 0:
                        ready.append(consumer)
        if len(order) != len(self.nodes):
            raise GraphError("graph contains a cycle")
        return order

    def dead_code_elimination(self, keep: Iterable[str] | None = None) -> int:
        """Remove nodes whose outputs never reach ``keep`` (default: outputs).

        This is the mechanism that turns a pruned backward specification into
        *measured* savings (paper section 3.1): once a gradient is not
        requested, everything feeding only that gradient disappears.

        Returns:
            Number of nodes removed.
        """
        targets = set(keep if keep is not None else self.outputs)
        producers = self.producer_map()
        live_values: set[str] = set()
        stack = [t for t in targets if t in producers]
        live_nodes: set[str] = set()
        while stack:
            value = stack.pop()
            if value in live_values:
                continue
            live_values.add(value)
            node = producers.get(value)
            if node is None or node.name in live_nodes:
                continue
            live_nodes.add(node.name)
            stack.extend(node.inputs)

        before = len(self.nodes)
        self.nodes = [n for n in self.nodes if n.name in live_nodes]
        self._drop_orphan_values()
        return before - len(self.nodes)

    def _drop_orphan_values(self) -> None:
        """Drop specs/initializers no node or boundary references anymore."""
        used: set[str] = set(self.inputs) | set(self.outputs)
        for node in self.nodes:
            used.update(node.inputs)
            used.update(node.outputs)
        self.values = {k: v for k, v in self.values.items() if k in used}
        self.initializers = {
            k: v for k, v in self.initializers.items() if k in used
        }
        self.trainable &= set(self.initializers)

    def remove_node(self, node: Node) -> None:
        self.nodes.remove(node)

    def clone(self) -> "Graph":
        """Deep copy of the graph (initializer arrays are shared, not copied:
        they are treated as immutable by every pass)."""
        other = Graph(self.name)
        other.nodes = [
            Node(n.op_type, n.name, tuple(n.inputs), tuple(n.outputs),
                 copy.deepcopy(n.attrs))
            for n in self.nodes
        ]
        other.values = dict(self.values)
        other.inputs = list(self.inputs)
        other.outputs = list(self.outputs)
        other.initializers = dict(self.initializers)
        other.trainable = set(self.trainable)
        other.metadata = copy.deepcopy(self.metadata)
        return other

    # -- statistics ---------------------------------------------------------

    def num_params(self, trainable_only: bool = False) -> int:
        names = self.trainable if trainable_only else self.initializers.keys()
        return sum(int(np.prod(self.initializers[n].shape)) for n in names)

    def __len__(self) -> int:
        return len(self.nodes)

    def __str__(self) -> str:
        from .printer import format_graph

        return format_graph(self)
