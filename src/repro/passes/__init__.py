"""Training-graph optimization passes and scheduling."""

from .base import Pass, PassContext, PassManager, PassResult
from .constant_folding import ConstantFoldingPass
from .cse import CommonSubexpressionEliminationPass
from .dce import DeadCodeEliminationPass
from .fusion import BiasActivationFusionPass, ElementwiseGroupPass
from .kernel_select import WinogradSelectionPass
from .layout import LayoutSelectionPass
from .parallel_fusion import ParallelLinearFusionPass
from .reorder import default_schedule, memory_aware_schedule
from .rewrite import AlgebraicRewritePass

__all__ = [
    "AlgebraicRewritePass",
    "BiasActivationFusionPass",
    "CommonSubexpressionEliminationPass",
    "ConstantFoldingPass",
    "DeadCodeEliminationPass",
    "ElementwiseGroupPass",
    "LayoutSelectionPass",
    "ParallelLinearFusionPass",
    "Pass",
    "PassContext",
    "PassManager",
    "PassResult",
    "WinogradSelectionPass",
    "default_schedule",
    "memory_aware_schedule",
]
