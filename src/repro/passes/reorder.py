"""Operator reordering and in-place update scheduling (paper §3.2).

Conventional frameworks compute *all* gradients, keep them alive, and then
run the optimizer; with small-batch sparse training the gradient buffers
rival the activation peak (paper Table 4 discussion). Because our optimizer
steps are graph nodes with in-place semantics, scheduling is free to apply
each gradient the moment it is produced — the gradient buffer dies
immediately.

:func:`memory_aware_schedule` is a greedy list scheduler: among ready nodes
it picks the one with the best immediate memory delta (bytes freed minus
bytes allocated). This one heuristic yields all three behaviours the paper
engineers explicitly: optimizer applies run early, activation-saving slices
hoist next to their producers, and large temporaries are consumed promptly.
"""

from __future__ import annotations

from collections import defaultdict

from ..ir import Graph
from ..ir.node import Node
from ..ir.ops import get_schema


def memory_aware_schedule(graph: Graph) -> list[Node]:
    """Return the better of the greedy and natural schedules by peak memory.

    The greedy list scheduler wins on training graphs (it applies updates
    early and hoists activation-saving slices) but, being a heuristic, can
    lose on adversarial DAGs — so both candidates are profiled and the
    smaller peak wins. Write-after-read hazards are honoured throughout:
    an in-place ``apply_*`` node is not ready until every other reader of
    its parameter has executed.
    """
    from ..memory.profiler import profile_memory

    greedy = _greedy_schedule(graph)
    natural = graph.topological_order()
    if profile_memory(graph, natural).peak_transient_bytes \
            < profile_memory(graph, greedy).peak_transient_bytes:
        return natural
    return greedy


def _greedy_schedule(graph: Graph) -> list[Node]:
    """Greedy minimum-live-bytes list scheduling (see module docstring)."""
    nodes = graph.nodes
    producers = graph.producer_map()
    index = {node.name: i for i, node in enumerate(nodes)}

    # Dataflow dependencies.
    deps: dict[str, set[str]] = {node.name: set() for node in nodes}
    dependents: dict[str, list[str]] = defaultdict(list)
    for node in nodes:
        for inp in node.inputs:
            producer = producers.get(inp)
            if producer is not None and producer.name != node.name:
                deps[node.name].add(producer.name)
                dependents[producer.name].append(node.name)

    # Hazards: apply(param) must follow all other readers of param.
    readers: dict[str, list[Node]] = defaultdict(list)
    for node in nodes:
        for inp in node.inputs:
            if inp in graph.initializers:
                readers[inp].append(node)
    for node in nodes:
        if not get_schema(node.op_type).inplace:
            continue
        param = node.inputs[0]
        for reader in readers[param]:
            if reader.name != node.name:
                deps[node.name].add(reader.name)
                dependents[reader.name].append(node.name)

    # Remaining-consumer counts for freed-bytes scoring.
    remaining: dict[str, int] = defaultdict(int)
    for node in nodes:
        for inp in node.inputs:
            remaining[inp] += 1
    persistent = set(graph.initializers) | set(graph.inputs) \
        | set(graph.outputs)
    alias = {
        out for node in nodes if get_schema(node.op_type).inplace
        for out in node.outputs
    }

    def alloc_bytes(node: Node) -> int:
        return sum(
            graph.spec(o).nbytes for o in node.outputs if o not in alias
        )

    def freed_bytes(node: Node) -> int:
        freed = 0
        for inp in set(node.inputs):
            if inp in persistent:
                continue
            if remaining[inp] == node.inputs.count(inp):
                freed += graph.spec(inp).nbytes
        return freed

    pending = {name: len(d) for name, d in deps.items()}
    by_name = {node.name: node for node in nodes}
    ready = sorted(
        (name for name, count in pending.items() if count == 0),
        key=lambda n: index[n],
    )
    schedule: list[Node] = []
    while ready:
        best = min(
            ready,
            key=lambda n: (
                alloc_bytes(by_name[n]) - freed_bytes(by_name[n]),
                index[n],
            ),
        )
        ready.remove(best)
        node = by_name[best]
        schedule.append(node)
        for inp in node.inputs:
            remaining[inp] -= 1
        for dep in dependents[best]:
            pending[dep] -= 1
            if pending[dep] == 0:
                ready.append(dep)
    if len(schedule) != len(nodes):
        # A cycle would have been caught earlier; this is a hazard conflict.
        raise ValueError("memory-aware scheduling failed to order all nodes")
    return schedule


def default_schedule(graph: Graph,
                     applies_last: bool = False) -> list[Node]:
    """Topological order; optionally push optimizer applies to the end.

    ``applies_last=True`` reproduces conventional framework behaviour
    (compute every gradient, then step the optimizer) for baseline
    simulation and the reorder-ablation benchmark.
    """
    order = graph.topological_order()
    if not applies_last:
        return order
    body = [n for n in order if not get_schema(n.op_type).inplace]
    tail = [n for n in order if get_schema(n.op_type).inplace]
    return body + tail
