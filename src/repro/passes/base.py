"""Pass infrastructure: every optimization is a Graph -> Graph rewrite."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..ir import Graph, validate_graph


@dataclass
class PassContext:
    """Side information passes may consult.

    Attributes:
        updated_params: parameters the current scheme updates — frozen
            weights are what enable Winograd selection and constant folding
            through weight-dependent subgraphs.
        device: optional target device (layout selection).
        options: free-form knobs.
    """

    updated_params: set[str] = field(default_factory=set)
    device: Any = None
    options: dict[str, Any] = field(default_factory=dict)


@dataclass
class PassResult:
    changed: bool = False
    stats: dict[str, Any] = field(default_factory=dict)


class Pass:
    """Base class; subclasses implement :meth:`run`."""

    name = "pass"

    def run(self, graph: Graph, ctx: PassContext) -> PassResult:
        raise NotImplementedError


class PassManager:
    """Applies a pipeline of passes, validating after each in debug mode."""

    def __init__(self, passes: list[Pass], debug: bool = False) -> None:
        self.passes = list(passes)
        self.debug = debug

    def run(self, graph: Graph, ctx: PassContext | None = None
            ) -> dict[str, PassResult]:
        ctx = ctx or PassContext()
        report: dict[str, PassResult] = {}
        for p in self.passes:
            result = p.run(graph, ctx)
            report[p.name] = result
            if self.debug:
                validate_graph(graph)
        return report
