"""Operator fusion (paper §3.2).

Two fusions are implemented:

* **Physical bias/activation fusion** — ``conv2d/matmul -> bias_add ->
  activation`` collapses into a single node carrying the bias as a third
  input and an ``activation`` attribute. This is what SNPE/TensorRT-class
  backends do; our executor kernels honour the fused form directly.
* **Elementwise group annotation** — runs of elementwise ops with
  single-consumer intermediates are tagged with a shared fusion-group id in
  ``graph.metadata["fusion_groups"]``. Execution is unchanged; the device
  cost model charges one kernel launch per group and skips intermediate
  memory traffic, modelling codegen'd fused kernels.
"""

from __future__ import annotations

from ..ir import Graph
from ..ir.node import Node
from .base import Pass, PassContext, PassResult

_FUSABLE_ACTIVATIONS = {"relu", "relu6", "gelu"}
_PRODUCERS = {"conv2d", "matmul"}

_ELEMENTWISE = {
    "add", "sub", "mul", "div", "neg", "exp", "log", "sqrt", "abs", "sign",
    "step", "relu", "relu6", "gelu", "sigmoid", "tanh", "maximum", "minimum",
    "equal", "bias_add",
}


class BiasActivationFusionPass(Pass):
    """Fuse producer -> bias_add -> activation chains into one node."""

    name = "fuse_bias_act"

    def run(self, graph: Graph, ctx: PassContext) -> PassResult:
        fused = 0
        changed = True
        while changed:
            changed = False
            consumers = graph.consumer_map()
            outputs = set(graph.outputs)
            for node in list(graph.nodes):
                if node.op_type not in _PRODUCERS:
                    continue
                if len(node.inputs) == 3:
                    pass  # bias already fused; may still take an activation
                chain = self._match_chain(graph, node, consumers, outputs)
                if chain is None:
                    continue
                self._apply(graph, node, chain)
                fused += 1
                changed = True
                break  # maps are stale; rebuild
        return PassResult(changed=fused > 0, stats={"fused": fused})

    @staticmethod
    def _match_chain(graph: Graph, node: Node, consumers, outputs):
        """Return (bias_node, act_node | None) when fusable."""
        if node.attrs.get("activation") not in (None, "none"):
            return None
        out = node.outputs[0]
        users = consumers.get(out, [])
        if out in outputs or len(users) != 1:
            return None
        bias = users[0]
        act = None
        if bias.op_type == "bias_add" and len(node.inputs) == 2:
            expected_axis = 1 if node.op_type == "conv2d" else (
                len(graph.spec(out).shape) - 1)
            if int(bias.attrs.get("axis", 1)) != expected_axis:
                return None
            bias_out = bias.outputs[0]
            bias_users = consumers.get(bias_out, [])
            if bias_out not in outputs and len(bias_users) == 1 \
                    and bias_users[0].op_type in _FUSABLE_ACTIVATIONS:
                act = bias_users[0]
        elif bias.op_type in _FUSABLE_ACTIVATIONS and len(node.inputs) == 3:
            act, bias = bias, None
        else:
            return None
        return bias, act

    @staticmethod
    def _apply(graph: Graph, node: Node, chain) -> None:
        bias, act = chain
        inputs = list(node.inputs)
        attrs = dict(node.attrs)
        tail = node
        if bias is not None:
            inputs.append(bias.inputs[1])
            tail = bias
            graph.remove_node(bias)
        if act is not None:
            attrs["activation"] = act.op_type
            tail = act
            graph.remove_node(act)
        final_out = tail.outputs[0]
        # The fused node adopts the tail's output name so downstream
        # consumers stay untouched.
        old_out = node.outputs[0]
        node.inputs = tuple(inputs)
        node.attrs = attrs
        node.outputs = (final_out,)
        if old_out != final_out:
            graph.values.pop(old_out, None)
        graph._drop_orphan_values()


class ElementwiseGroupPass(Pass):
    """Tag chains of elementwise ops as virtual fused kernels."""

    name = "fuse_elementwise"

    def run(self, graph: Graph, ctx: PassContext) -> PassResult:
        consumers = graph.consumer_map()
        outputs = set(graph.outputs)
        groups: dict[str, int] = {}
        gid = 0
        assigned: set[str] = set()
        for node in graph.topological_order():
            if node.op_type not in _ELEMENTWISE or node.name in assigned:
                continue
            chain = [node]
            cursor = node
            while True:
                out = cursor.outputs[0]
                users = consumers.get(out, [])
                if out in outputs or len(users) != 1:
                    break
                nxt = users[0]
                if nxt.op_type not in _ELEMENTWISE or nxt.name in assigned:
                    break
                chain.append(nxt)
                cursor = nxt
            if len(chain) >= 2:
                for member in chain:
                    groups[member.name] = gid
                    assigned.add(member.name)
                gid += 1
        graph.metadata["fusion_groups"] = groups
        return PassResult(
            changed=bool(groups),
            stats={"groups": gid, "nodes_grouped": len(groups)},
        )
