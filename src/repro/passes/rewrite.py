"""Functional-preserving graph rewrites (paper §2.4 / §3.2).

MetaFlow/TASO-style algebraic substitutions applied to the *training*
graph — profitable exactly because compile-time autodiff produces chains
(double transposes, nested reshapes, arithmetic identities) that runtime
tape differentiation never exposes to a compiler. Every rule is
semantics-preserving; the numeric-equivalence property test exercises them
on random graphs.

Implemented rules:

* ``transpose(transpose(x, p1), p2)`` -> ``x`` (when the composition is the
  identity) or a single fused transpose,
* ``reshape(reshape(x, s1), s2)`` -> ``reshape(x, s2)``,
* ``neg(neg(x))`` -> ``x``,
* ``cast`` to the input's own dtype -> identity,
* ``pad`` with all-zero padding -> identity,
* ``slice`` spanning the whole axis -> identity,
* ``mul(x, 1)`` / ``div(x, 1)`` / ``add(x, 0)`` / ``sub(x, 0)`` -> ``x``
  (scalar constant operands only),
* ``matmul(transpose(a), b)`` / ``matmul(a, transpose(b))`` ->
  ``matmul(a, b, trans_a/trans_b=True)`` when the transpose swaps only the
  last two axes — the dominant pattern in backward graphs
  (``dW = Xᵀ·G``, ``dX = G·Wᵀ``), the same folding ONNX ``Gemm`` and
  TASO perform.
"""

from __future__ import annotations

import numpy as np

from ..ir import Graph
from ..ir.node import Node
from .base import Pass, PassContext, PassResult


class AlgebraicRewritePass(Pass):
    name = "rewrite"

    def run(self, graph: Graph, ctx: PassContext) -> PassResult:
        total = 0
        while True:
            changed = self._one_round(graph)
            total += changed
            if not changed:
                break
        if total:
            graph.dead_code_elimination()
        return PassResult(changed=total > 0, stats={"rewrites": total})

    def _one_round(self, graph: Graph) -> int:
        producers = graph.producer_map()
        replace: dict[str, str] = {}
        drop: set[str] = set()
        changed = 0

        for node in graph.nodes:
            if node.name in drop:
                continue
            alias = self._match_identity(graph, node)
            if alias is not None:
                replace[node.outputs[0]] = alias
                drop.add(node.name)
                changed += 1
                continue
            fused = self._match_chain(graph, node, producers, drop)
            if fused:
                changed += 1

        if not changed:
            return 0
        # Resolve chained replacements (a -> b -> c).
        def resolve(name: str) -> str:
            seen = set()
            while name in replace and name not in seen:
                seen.add(name)
                name = replace[name]
            return name

        graph.nodes = [n for n in graph.nodes if n.name not in drop]
        for node in graph.nodes:
            node.inputs = tuple(resolve(i) for i in node.inputs)
        graph.outputs = [resolve(o) for o in graph.outputs]
        graph._drop_orphan_values()
        return changed

    # -- rules ----------------------------------------------------------

    def _match_identity(self, graph: Graph, node: Node) -> str | None:
        """Rules where the node output equals one of its inputs."""
        if node.op_type == "cast":
            src = graph.spec(node.inputs[0])
            if src.dtype.value == node.attrs["dtype"]:
                return node.inputs[0]
        elif node.op_type == "pad":
            if all(int(lo) == 0 and int(hi) == 0
                   for lo, hi in node.attrs["pads"]):
                return node.inputs[0]
        elif node.op_type == "slice":
            src = graph.spec(node.inputs[0])
            axis = int(node.attrs["axis"])
            if int(node.attrs["start"]) == 0 \
                    and int(node.attrs["end"]) >= src.shape[axis]:
                return node.inputs[0]
        elif node.op_type in ("mul", "div", "add", "sub"):
            neutral = 1.0 if node.op_type in ("mul", "div") else 0.0
            rhs = node.inputs[1]
            if rhs in graph.initializers:
                value = graph.initializers[rhs]
                if value.size == 1 and float(value.reshape(())) == neutral \
                        and graph.spec(node.outputs[0]).shape \
                        == graph.spec(node.inputs[0]).shape:
                    return node.inputs[0]
        elif node.op_type == "reshape":
            if graph.spec(node.inputs[0]).shape \
                    == tuple(node.attrs["shape"]):
                return node.inputs[0]
        return None

    def _match_chain(self, graph: Graph, node: Node, producers,
                     drop: set[str]) -> bool:
        """Fuse producer chains in place (node keeps its output name)."""
        if node.op_type == "transpose":
            parent = producers.get(node.inputs[0])
            if parent is not None and parent.op_type == "transpose" \
                    and parent.name not in drop:
                p1 = tuple(parent.attrs["perm"])
                p2 = tuple(node.attrs["perm"])
                composed = tuple(p1[p] for p in p2)
                node.inputs = (parent.inputs[0],)
                if composed == tuple(range(len(composed))):
                    # Identity: turn into a reshape to the same shape
                    # (cheap marker; the identity rule removes it next
                    # round).
                    node.op_type = "reshape"
                    node.attrs = {
                        "shape": graph.spec(node.outputs[0]).shape}
                else:
                    node.attrs = {"perm": composed}
                return True
        elif node.op_type == "reshape":
            parent = producers.get(node.inputs[0])
            if parent is not None and parent.op_type == "reshape" \
                    and parent.name not in drop:
                node.inputs = (parent.inputs[0],)
                return True
        elif node.op_type == "neg":
            parent = producers.get(node.inputs[0])
            if parent is not None and parent.op_type == "neg" \
                    and parent.name not in drop:
                node.op_type = "reshape"
                node.inputs = (parent.inputs[0],)
                node.attrs = {"shape": graph.spec(node.outputs[0]).shape}
                return True
        elif node.op_type == "matmul":
            return self._fold_matmul_transpose(node, producers, drop)
        return False

    @staticmethod
    def _fold_matmul_transpose(node: Node, producers,
                               drop: set[str]) -> bool:
        """Absorb a last-two-axes transpose into matmul trans flags."""
        folded = False
        for idx, flag in ((0, "trans_a"), (1, "trans_b")):
            parent = producers.get(node.inputs[idx])
            if parent is None or parent.op_type != "transpose" \
                    or parent.name in drop:
                continue
            perm = tuple(parent.attrs["perm"])
            rank = len(perm)
            if rank < 2 or perm[:-2] != tuple(range(rank - 2)) \
                    or perm[-2:] != (rank - 1, rank - 2):
                continue
            inputs = list(node.inputs)
            inputs[idx] = parent.inputs[0]
            node.inputs = tuple(inputs)
            node.attrs = {
                **node.attrs, flag: not node.attrs.get(flag, False)}
            folded = True
        return folded
