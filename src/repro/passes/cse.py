"""Common-subexpression elimination.

Training graphs repeat work the forward pass already did (e.g. gradient
rules that recompute normalization statistics); CSE merges identical
(op, inputs, attrs) nodes so each expression is evaluated once.
"""

from __future__ import annotations

from ..ir import Graph
from ..ir.ops import get_schema
from .base import Pass, PassContext, PassResult


class CommonSubexpressionEliminationPass(Pass):
    name = "cse"

    def run(self, graph: Graph, ctx: PassContext) -> PassResult:
        removed_total = 0
        while True:
            removed = self._one_round(graph)
            removed_total += removed
            if not removed:
                break
        return PassResult(changed=removed_total > 0,
                          stats={"removed": removed_total})

    @staticmethod
    def _one_round(graph: Graph) -> int:
        seen: dict[tuple, tuple[str, ...]] = {}
        replace: dict[str, str] = {}
        survivors = []
        removed = 0
        for node in graph.topological_order():
            node.inputs = tuple(replace.get(i, i) for i in node.inputs)
            if get_schema(node.op_type).inplace:
                survivors.append(node)
                continue
            key = (node.op_type, node.inputs, node.attr_key())
            if key in seen:
                canonical = seen[key]
                for old, new in zip(node.outputs, canonical):
                    replace[old] = new
                removed += 1
                continue
            seen[key] = node.outputs
            survivors.append(node)
        if removed:
            graph.nodes = survivors
            graph.outputs = [replace.get(o, o) for o in graph.outputs]
            graph._drop_orphan_values()
        return removed
