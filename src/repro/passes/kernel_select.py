"""Backend/kernel switching: Winograd for frozen convolutions (paper §3.2).

Winograd convolution trades a per-weight transform for 2.25x fewer
multiplies. Training frameworks never use it because the transform must be
redone whenever weights change — but under sparse backpropagation most
convolutions are *frozen*, so the transform is paid once at compile time.
This pass binds every eligible frozen conv to the Winograd algorithm (the
executor genuinely runs the F(2x2,3x3) kernel; the device cost model prices
the multiply reduction).
"""

from __future__ import annotations

from ..ir import Graph
from .base import Pass, PassContext, PassResult


def _pair(value) -> tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


class WinogradSelectionPass(Pass):
    name = "winograd"

    def run(self, graph: Graph, ctx: PassContext) -> PassResult:
        selected = 0
        for node in graph.nodes:
            if node.op_type != "conv2d":
                continue
            weight = node.inputs[1]
            if weight not in graph.initializers:
                continue
            if weight in ctx.updated_params:
                continue  # weights change every step: transform not amortisable
            w_spec = graph.spec(weight)
            if w_spec.shape[2:] != (3, 3):
                continue
            if _pair(node.attrs.get("stride", 1)) != (1, 1):
                continue
            if int(node.attrs.get("groups", 1)) != 1:
                continue
            node.attrs["algo"] = "winograd"
            selected += 1
        return PassResult(changed=selected > 0,
                          stats={"winograd_convs": selected})
