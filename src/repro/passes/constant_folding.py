"""Constant folding: precompute subgraphs that depend only on frozen data.

Because the compiler knows which parameters the scheme updates (paper §3.2,
"PockEngine obtains the complete training graph during compile-time thus
knowing the updating information of each parameter"), anything computed
purely from *frozen* initializers can be evaluated once at compile time —
e.g. scale constants, masks, or frozen-weight transforms.
"""

from __future__ import annotations

from ..ir import Graph
from ..ir.ops import get_schema
from ..kernels import run_op
from .base import Pass, PassContext, PassResult

#: do not materialise folded tensors above this size (bytes)
DEFAULT_FOLD_LIMIT = 4 << 20


class ConstantFoldingPass(Pass):
    name = "constant_folding"

    def __init__(self, size_limit: int = DEFAULT_FOLD_LIMIT) -> None:
        self.size_limit = size_limit

    def run(self, graph: Graph, ctx: PassContext) -> PassResult:
        frozen = {
            name for name in graph.initializers
            if name not in ctx.updated_params
        }
        folded = 0
        changed = True
        while changed:
            changed = False
            for node in list(graph.nodes):
                if get_schema(node.op_type).inplace:
                    continue
                if not node.inputs:
                    continue
                if not all(inp in frozen for inp in node.inputs):
                    continue
                out_bytes = sum(
                    graph.spec(o).nbytes for o in node.outputs
                )
                if out_bytes > self.size_limit:
                    continue
                arrays = [graph.initializers[i] for i in node.inputs]
                results = run_op(node.op_type, arrays, node.attrs)
                for out, value in zip(node.outputs, results):
                    graph.initializers[out] = value
                    frozen.add(out)
                graph.remove_node(node)
                folded += 1
                changed = True
        if folded:
            graph._drop_orphan_values()
        return PassResult(changed=folded > 0, stats={"folded": folded})
