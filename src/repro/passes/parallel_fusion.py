"""Parallel-linear fusion (paper §3.2: "parallel linear operations
(e.g. batch matmul) have been shown effective").

Multiple matmuls reading the *same* activation — the Q/K/V projections of
an attention block are the canonical case — merge into one wide matmul on
the concatenated weight, followed by cheap slices. One big GEMM replaces
``k`` small ones: fewer kernel launches and better arithmetic intensity.

Like Winograd selection, this is an optimization sparse backpropagation
*unlocks*: concatenating weights is only sound when none of them is being
updated (a merged parameter could not receive its per-branch gradients)
and when the backward pass does not read the individual weights — i.e. in
the frozen prefix below which the pruned backward graph never descends
(paper Figure 5, "backpropagation stops here"). The pass therefore
requires every branch weight to be frozen and single-consumer.

Branches may uniformly carry a trailing ``bias_add``; the biases are then
concatenated and folded into one merged ``bias_add``.
"""

from __future__ import annotations

import numpy as np

from ..ir import Graph, GraphBuilder
from ..ir.node import Node
from .base import Pass, PassContext, PassResult


class ParallelLinearFusionPass(Pass):
    name = "parallel_fusion"

    def __init__(self, min_group: int = 2) -> None:
        self.min_group = min_group

    def run(self, graph: Graph, ctx: PassContext) -> PassResult:
        merged_groups = 0
        merged_branches = 0
        while True:
            group = self._find_group(graph, ctx)
            if group is None:
                break
            self._merge(graph, group)
            merged_groups += 1
            merged_branches += len(group)
        if merged_groups:
            graph.dead_code_elimination()
            graph.nodes = graph.topological_order()
        return PassResult(
            changed=merged_groups > 0,
            stats={"groups": merged_groups, "branches": merged_branches},
        )

    # -- matching ---------------------------------------------------------

    def _find_group(self, graph: Graph, ctx: PassContext
                    ) -> list[tuple[Node, Node | None]] | None:
        """Return the first mergeable list of (matmul, bias_add | None)."""
        consumers = graph.consumer_map()
        outputs = set(graph.outputs)
        candidates: dict[tuple, list[tuple[Node, Node | None]]] = {}
        for node in graph.nodes:
            branch = self._match_branch(graph, ctx, node, consumers,
                                        outputs)
            if branch is None:
                continue
            x = node.inputs[0]
            in_dim = graph.spec(node.inputs[1]).shape[0]
            has_bias = branch[1] is not None
            key = (x, in_dim, has_bias)
            candidates.setdefault(key, []).append(branch)
        for group in candidates.values():
            if len(group) >= self.min_group:
                return group
        return None

    @staticmethod
    def _match_branch(graph: Graph, ctx: PassContext, node: Node,
                      consumers, outputs) -> tuple[Node, Node | None] | None:
        if node.op_type != "matmul" or len(node.inputs) != 2:
            return None
        if any(node.attrs.get(a) for a in ("activation", "trans_a",
                                           "trans_b")):
            return None
        weight = node.inputs[1]
        if weight not in graph.initializers \
                or graph.spec(weight).rank != 2:
            return None
        if weight in ctx.updated_params:
            return None  # a merged parameter cannot take per-branch updates
        if len(consumers.get(weight, [])) != 1:
            return None  # weight read elsewhere (e.g. by the backward pass)
        out = node.outputs[0]
        users = consumers.get(out, [])
        if len(users) == 1 and users[0].op_type == "bias_add" \
                and out not in outputs:
            bias_node = users[0]
            bias = bias_node.inputs[1]
            axis_ok = int(bias_node.attrs.get("axis", 1)) \
                == graph.spec(out).rank - 1
            if axis_ok and bias in graph.initializers \
                    and bias not in ctx.updated_params \
                    and len(consumers.get(bias, [])) == 1:
                return node, bias_node
        return node, None

    # -- rewriting --------------------------------------------------------

    @staticmethod
    def _merge(graph: Graph, group: list[tuple[Node, Node | None]]) -> None:
        b = GraphBuilder(graph=graph)
        matmuls = [mm for mm, _ in group]
        biases = [bias for _, bias in group]
        x = matmuls[0].inputs[0]
        weights = [graph.initializers[mm.inputs[1]] for mm in matmuls]
        w_cat = b.initializer(
            f"{matmuls[0].inputs[1]}.qkv",
            np.concatenate(weights, axis=1))
        merged = b.matmul(x, w_cat)
        if biases[0] is not None:
            b_cat = b.initializer(
                f"{biases[0].inputs[1]}.qkv",
                np.concatenate(
                    [graph.initializers[bn.inputs[1]] for bn in biases]))
            merged = b.bias_add(merged, b_cat,
                                axis=graph.spec(merged).rank - 1)

        rank = graph.spec(merged).rank
        rename: dict[str, str] = {}
        offset = 0
        for (mm, bias), weight in zip(group, weights):
            width = weight.shape[1]
            piece = b.slice(merged, rank - 1, offset, offset + width)
            offset += width
            tail = bias.outputs[0] if bias is not None else mm.outputs[0]
            rename[tail] = piece

        drop = {mm.name for mm in matmuls}
        drop |= {bias.name for bias in biases if bias is not None}
        graph.nodes = [n for n in graph.nodes if n.name not in drop]
        for node in graph.nodes:
            node.inputs = tuple(rename.get(i, i) for i in node.inputs)
        graph.outputs = [rename.get(o, o) for o in graph.outputs]
        graph._drop_orphan_values()
