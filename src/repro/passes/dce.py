"""Dead-code elimination as a pipeline pass."""

from __future__ import annotations

from ..ir import Graph
from .base import Pass, PassContext, PassResult


class DeadCodeEliminationPass(Pass):
    name = "dce"

    def run(self, graph: Graph, ctx: PassContext) -> PassResult:
        removed = graph.dead_code_elimination()
        return PassResult(changed=removed > 0, stats={"removed": removed})
