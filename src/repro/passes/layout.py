"""Data-layout selection (paper §3.2, "layout transforms").

NCHW is optimal for GPU-class accelerators; edge CPUs and DSPs prefer NHWC.
Real PockEngine rewrites tensor layouts at compile time; we record the
decision in graph metadata and let the device cost model price convolution
efficiency accordingly (numeric kernels always compute NCHW — the hardware
being simulated, not owned, per DESIGN.md).
"""

from __future__ import annotations

from ..ir import Graph
from .base import Pass, PassContext, PassResult


class LayoutSelectionPass(Pass):
    name = "layout"

    def run(self, graph: Graph, ctx: PassContext) -> PassResult:
        device = ctx.device
        preferred = getattr(device, "preferred_layout", "NCHW")
        previous = graph.metadata.get("layout", "NCHW")
        graph.metadata["layout"] = preferred
        n_spatial = sum(
            1 for node in graph.nodes
            if node.op_type in ("conv2d", "conv2d_i8", "conv2d_dx",
                                "conv2d_dw", "maxpool2d", "avgpool2d")
        )
        return PassResult(
            changed=preferred != previous,
            stats={"layout": preferred, "spatial_ops": n_spatial},
        )
