"""ASCII table/series rendering shared by benchmarks and examples."""

from __future__ import annotations

from typing import Any, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str | None = None) -> str:
    """Render a monospace table with per-column alignment."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(name: str, values: Sequence[float], width: int = 40,
                  fmt: str = "{:.3f}") -> str:
    """Render a numeric series as a labelled ASCII bar chart row block."""
    if not values:
        return f"{name}: (empty)"
    top = max(abs(v) for v in values) or 1.0
    lines = [name]
    for i, v in enumerate(values):
        bar = "#" * max(1, int(width * abs(v) / top))
        lines.append(f"  [{i:3d}] {fmt.format(v):>10} {bar}")
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def ratio(a: float | None, b: float | None) -> str:
    """Format a/b as 'N.Nx' (dash when undefined)."""
    if not a or not b:
        return "-"
    return f"{a / b:.1f}x"
