"""Reference numbers transcribed from the paper, for paper-vs-measured
comparison in benchmarks and EXPERIMENTS.md.

All throughputs are items/second from the Figure 9 data tables embedded in
the paper source; memory from Table 4; Llama fine-tuning from Table 5.
``None`` marks combinations the paper leaves blank (framework unavailable
on that platform / model).
"""

from __future__ import annotations

# Figure 9 (f): Raspberry Pi 4 CPU, images (sentences)/sec.
FIG9_RASPBERRY_PI = {
    # model: {framework: throughput}
    "mcunet": {"tensorflow": 0.515, "pytorch": 0.681, "jax": 0.543,
               "mnn": 0.751, "pockengine_full": 7.86,
               "pockengine_sparse": 11.22},
    "mobilenetv2": {"tensorflow": 0.445, "pytorch": 0.506, "jax": 0.514,
                    "mnn": 0.560, "pockengine_full": 5.90,
                    "pockengine_sparse": 9.46},
    "resnet50": {"tensorflow": 0.147, "pytorch": 0.180, "jax": 0.140,
                 "mnn": 0.205, "pockengine_full": 0.759,
                 "pockengine_sparse": 1.325},
    "bert": {"tensorflow": 0.270, "pytorch": 0.393, "jax": 0.244,
             "mnn": None, "pockengine_full": 2.579,
             "pockengine_sparse": 3.735},
    "distilbert": {"tensorflow": 0.378, "pytorch": 0.515, "jax": 0.499,
                   "mnn": None, "pockengine_full": 4.817,
                   "pockengine_sparse": 6.910},
}

# Figure 9 (a): Jetson Nano GPU, items/sec.
FIG9_JETSON_NANO = {
    "mcunet": {"tensorflow": 48.3, "pytorch": 41.5,
               "pockengine_full": 116.0, "pockengine_sparse": 257.4},
    "mobilenetv2": {"tensorflow": 27.9, "pytorch": 34.4,
                    "pockengine_full": 101.2, "pockengine_sparse": 172.3},
    "resnet50": {"tensorflow": 14.7, "pytorch": 21.9,
                 "pockengine_full": 32.5, "pockengine_sparse": 55.7},
    "bert": {"tensorflow": 16.8, "pytorch": 22.1,
             "pockengine_full": 40.6, "pockengine_sparse": 53.8},
    "distilbert": {"tensorflow": 33.2, "pytorch": 35.1,
                   "pockengine_full": 86.8, "pockengine_sparse": 110.4},
}

# Figure 9 (b): Jetson AGX Orin, LlamaV2-7B sentences/sec.
FIG9_ORIN_LLAMA = {
    "llama7b": {"pytorch": 0.128, "pockengine_full": 0.560,
                "pockengine_sparse": 1.090},
}

# Figure 9 (c): STM32F746 MCU, images/sec (TF projected).
FIG9_MCU = {
    "mcunet": {"tflite_micro": 0.0746, "pockengine_full": 0.766,
               "pockengine_sparse": 1.832},
    "mobilenetv2_035": {"tflite_micro": 0.118, "pockengine_full": 1.087,
                        "pockengine_sparse": 2.681},
}

# Figure 9 (e): Snapdragon 8 Gen 1 CPU, items/sec.
FIG9_SNAPDRAGON_CPU = {
    "mcunet": {"pockengine_full": 10.12, "pockengine_sparse": 23.12},
    "mobilenetv2": {"pockengine_full": 5.61, "pockengine_sparse": 10.92},
    "resnet50": {"pockengine_full": 0.833, "pockengine_sparse": 1.189},
    "bert": {"pockengine_full": 2.010, "pockengine_sparse": 2.990},
    "distilbert": {"pockengine_full": 2.995, "pockengine_sparse": 5.450},
}

# Figure 9 (g): Snapdragon 8 Gen 1 DSP (SNPE), images/sec.
FIG9_SNAPDRAGON_DSP = {
    "mcunet": {"pockengine_full": 1292.0, "pockengine_sparse": 1804.1},
    "mobilenetv2": {"pockengine_full": 988.1, "pockengine_sparse": 1625.0},
    "resnet50": {"pockengine_full": 316.6, "pockengine_sparse": 584.8},
}

# Figure 9 (d): Apple M1 GPU, items/sec (read off the chart).
FIG9_APPLE_M1 = {
    "mcunet": {"tensorflow": 7.0, "pytorch": 5.0,
               "pockengine_full": 33.0, "pockengine_sparse": 51.0},
    "mobilenetv2": {"tensorflow": 5.0, "pytorch": 9.0,
                    "pockengine_full": 14.0, "pockengine_sparse": 21.0},
    "resnet50": {"tensorflow": 4.0, "pytorch": 9.0,
                 "pockengine_full": 9.0, "pockengine_sparse": 15.0},
    "bert": {"tensorflow": 10.0, "pytorch": 12.0,
             "pockengine_full": 22.0, "pockengine_sparse": 37.0},
    "distilbert": {"tensorflow": 12.0, "pytorch": 14.0,
                   "pockengine_full": 23.0, "pockengine_sparse": 52.0},
}

# Table 4: training memory, MB (None = cannot fit / not reported).
TABLE4_MEMORY = [
    # (device, model, batch, full_mb, sparse_mb)
    ("stm32f746", "mcunet", 1, 3.6, 0.169),
    ("jetson_nano", "mobilenetv2", 1, 729, 435),
    ("jetson_nano", "mobilenetv2", 4, 910, 501),
    ("jetson_nano", "mobilenetv2", 16, 1228.8, 819),
    ("jetson_nano", "resnet50", 1, 827, 663),
    ("jetson_nano", "resnet50", 4, 1126.4, 723),
    ("jetson_nano", "resnet50", 16, 2150.4, 885),
    ("jetson_orin", "bert", 1, 1740.8, 1433.6),
    ("jetson_orin", "bert", 4, 3686.4, 1945.6),
    ("jetson_orin", "bert", 16, 5836.8, 2355.2),
    ("jetson_orin", "llama7b", 1, 44134.4, 31948.8),
]

# Table 5: LlamaV2-7B instruction tuning on Jetson AGX Orin.
TABLE5_LLAMA = {
    # row: (iteration latency s, GPU memory GB, loss, alpaca win %, mt-bench)
    ("pytorch", "full"): (7.7, 45.1, 0.761, 44.1, 6.1),
    ("pytorch", "lora"): (7.3, 30.9, 0.801, 43.1, 5.1),
    ("pockengine", "full"): (1.8, 43.1, 0.768, 43.7, 6.1),
    ("pockengine", "sparse"): (0.9, 31.2, 0.779, 43.1, 5.7),
}

# §4.2 sparse-BP speedup over full-BP per model (embedded chart data).
SPARSE_SPEEDUP = {
    "mcunet": 1.3, "mobilenetv2": 1.3, "resnet50": 1.6,
    "bert": 1.5, "distilbert": 1.4,
}

# Table 2 / Table 3 average accuracies (for ordering comparison).
TABLE2_AVG_ACC = {
    "mcunet": {"full": 74.1, "bias": 72.7, "sparse": 74.8},
    "mobilenetv2": {"full": 89.2, "bias": 87.3, "sparse": 88.5},
    "resnet50": {"full": 90.5, "bias": 87.8, "sparse": 90.3},
}

TABLE3_AVG_ACC = {
    "distilbert": {"full": 76.9, "bias": 72.8, "sparse": 77.0},
    "bert": {"full": 81.8, "bias": 78.1, "sparse": 81.7},
}
