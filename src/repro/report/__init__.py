"""Reporting: ASCII tables and the paper's reference numbers."""

from . import paper_data
from .table import ratio, render_series, render_table

__all__ = ["paper_data", "ratio", "render_series", "render_table"]
