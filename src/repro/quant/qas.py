"""Quantization-Aware Scaling (QAS) and int8-grid training graphs.

PockEngine's MCU backend (TinyEngine) trains *real* int8 graphs: the stored
weight is the integer tensor ``W̄ = W / s_w`` (magnitudes ~128), not the
float master. Differentiating that graph yields ``G_W̄ = s_w · G_W`` — the
weight grew by ``1/s_w`` while its gradient shrank by ``s_w``, so the
update-to-weight ratio is off by ``s_w²`` and plain SGD barely moves.
"On-Device Training Under 256KB Memory" (Lin et al., NeurIPS 2022 —
reference [41] of the paper) fixes this by scaling each quantized
parameter's gradient by ``1 / s_w²``, restoring float training dynamics
with zero extra memory.

This module provides both halves:

* :func:`int8_grid_training_graph` — rewrite a QAT graph so trainable
  weights are stored on the int8 grid (the true-int8 regime, simulated in
  fp32 containers so the numeric executor can run it),
* :func:`qas_scales` / :func:`apply_qas` — the compensation, folded into
  the learning rate of the compiled ``apply_*`` nodes (equivalent to
  gradient scaling for SGD, and free at runtime because the factor is a
  compile-time constant).
"""

from __future__ import annotations

import numpy as np

from ..ir import Graph, GraphBuilder

#: metadata key mapping parameter name -> mean quantization scale
GRID_PARAMS_KEY = "int8_grid_params"


def int8_grid_training_graph(qat_graph: Graph) -> Graph:
    """Store every fake-quantized trainable weight on its int8 grid.

    For each trainable initializer ``W`` feeding a ``fake_quant`` node with
    scale ``s``, the returned clone stores ``W̄ = W / s`` and reconstructs
    ``W = W̄ * s`` in-graph before the fake-quant. Gradients then flow to
    ``W̄`` exactly as they would in a true int8 engine — which is why
    training it *without* :func:`apply_qas` stalls.
    """
    graph = qat_graph.clone()
    b = GraphBuilder(graph=graph)
    grid_params: dict[str, float] = dict(
        graph.metadata.get(GRID_PARAMS_KEY, {}))

    for node in list(graph.nodes):
        if node.op_type != "fake_quant":
            continue
        param = node.inputs[0]
        if param not in graph.trainable or param in grid_params:
            continue
        scale = np.asarray(node.attrs["scale"], dtype=np.float64)
        axis = node.attrs.get("axis")
        w = graph.initializers[param]
        if axis is not None and scale.ndim:
            shape = [1] * w.ndim
            shape[int(axis)] = scale.shape[0]
            scale = scale.reshape(shape)
        graph.initializers[param] = (w / scale).astype(w.dtype)
        s_const = b.initializer(f"{param}.scale", scale.astype(np.float32))
        recon = b.emit("mul", [param, s_const], name_hint=f"grid.{param}")
        node.inputs = (recon,) + tuple(node.inputs[1:])
        grid_params[param] = float(np.mean(scale))

    graph.metadata[GRID_PARAMS_KEY] = grid_params
    graph.nodes = graph.topological_order()
    return graph


def qas_scales(graph: Graph) -> dict[str, float]:
    """Per-parameter QAS factors ``1 / s_w²`` for int8-grid parameters.

    Only parameters registered by :func:`int8_grid_training_graph` (via
    graph metadata) need compensation; fp32-master QAT weights train
    correctly without it and are not returned.
    """
    grid_params: dict[str, float] = graph.metadata.get(GRID_PARAMS_KEY, {})
    return {param: 1.0 / (s * s) for param, s in grid_params.items()}


def apply_qas(graph: Graph, scales: dict[str, float] | None = None) -> int:
    """Fold QAS factors into the optimizer nodes of a compiled training
    graph (in place). Returns the number of parameters rescaled.

    SGD's update is linear in the gradient history, so scaling ``lr`` is
    exactly gradient scaling. Adam and Lion normalise gradient magnitude
    away, so QAS is a no-op for them — their nodes are left untouched.
    """
    scales = qas_scales(graph) if scales is None else scales
    touched = 0
    for node in graph.nodes:
        if node.op_type != "apply_sgd":
            continue
        param = node.inputs[0]
        factor = scales.get(param)
        if factor is None:
            continue
        node.attrs["lr"] = float(node.attrs["lr"]) * factor
        node.attrs["qas_scale"] = factor
        touched += 1
    return touched
