"""Calibration: run representative batches and record activation ranges.

The converter needs a float range for every activation it will quantize.
``collect_ranges`` executes the forward graph over calibration batches with
every watched value exposed as an extra output, feeding one observer per
value.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from ..ir import Graph
from ..runtime.executor import Executor
from ..runtime.program import Program
from .observers import MinMaxObserver, Observer

#: Ops whose inputs and outputs the converter quantizes.
QUANTIZED_OPS = ("conv2d", "matmul")

#: Ops the converter folds into the int8 op's requantization step; their
#: outputs are quantization points too, so calibration must watch them.
_CHAIN_OPS = ("bias_add", "relu", "relu6")


def watched_values(graph: Graph, ops: tuple[str, ...] = QUANTIZED_OPS
                   ) -> list[str]:
    """Values whose ranges calibration must learn: the non-weight inputs
    and the outputs of every op the converter will turn into int8, plus
    the outputs of the bias/activation chains it folds into them."""
    watched: list[str] = []
    seen: set[str] = set()

    def watch(name: str) -> None:
        if name not in seen:
            seen.add(name)
            watched.append(name)

    consumers = graph.consumer_map()
    for node in graph.nodes:
        if node.op_type == "add":
            # Residual adds execute on the int8 grid (add_i8); calibration
            # needs both operand ranges and the sum's range.
            for name in node.inputs:
                if name not in graph.initializers:
                    watch(name)
            watch(node.outputs[0])
            continue
        if node.op_type not in ops:
            continue
        for name in node.inputs:
            if name not in graph.initializers:
                watch(name)
        tail = node.outputs[0]
        watch(tail)
        # Follow the single-consumer bias/activation chain the converter
        # will fold, so the fused op's output range is known.
        while True:
            users = consumers.get(tail, [])
            if len(users) != 1 or users[0].op_type not in _CHAIN_OPS:
                break
            tail = users[0].outputs[0]
            watch(tail)
    return watched


def collect_ranges(
    graph: Graph,
    batches: Iterable[dict[str, np.ndarray]],
    values: list[str] | None = None,
    observer_factory: Callable[[], Observer] = MinMaxObserver,
) -> dict[str, Observer]:
    """Observe ``values`` (default: every quantization point) over batches.

    Returns one observer per watched value; pass the dict straight to the
    converters in :mod:`repro.quant.convert`.
    """
    if values is None:
        values = watched_values(graph)
    probe = graph.clone()
    for name in values:
        if name not in probe.outputs:
            probe.outputs.append(name)
    executor = Executor(Program.from_graph(probe))
    observers = {name: observer_factory() for name in values}
    ran = False
    for feeds in batches:
        ran = True
        results = executor.run(feeds)
        for name, observer in observers.items():
            observer.observe(results[name])
    if not ran:
        raise ValueError("calibration needs at least one batch")
    return observers
