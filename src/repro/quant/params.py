"""Quantization parameters: the (scale, zero-point) affine grid.

One :class:`QuantParams` describes how a float tensor maps onto a signed
integer grid — per-tensor, or per-channel along one axis (the form used for
conv/linear weights). All quantized IR ops carry these values as plain node
attributes so graphs stay serializable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CompileError
from ..kernels.quantized import dequantize_array, quantize_array


@dataclass(frozen=True)
class QuantParams:
    """Affine quantization grid ``q = round(x / scale) + zero_point``."""

    scale: float | tuple[float, ...]
    zero_point: int | tuple[int, ...] = 0
    bits: int = 8
    axis: int | None = None

    def __post_init__(self) -> None:
        scales = np.atleast_1d(np.asarray(self.scale, dtype=np.float64))
        if np.any(scales <= 0):
            raise CompileError("quantization scale must be positive")
        if self.axis is None and scales.size > 1:
            raise CompileError("per-channel params require an axis")

    @property
    def qmin(self) -> int:
        return -(2 ** (self.bits - 1))

    @property
    def qmax(self) -> int:
        return 2 ** (self.bits - 1) - 1

    @property
    def per_channel(self) -> bool:
        return self.axis is not None

    def attrs(self) -> dict:
        """Node-attribute form consumed by the quantized IR ops."""
        return {
            "scale": self.scale,
            "zero_point": self.zero_point,
            "bits": self.bits,
            "axis": self.axis,
        }

    # -- numpy-side application (used by converters and tests) -------------

    def quantize(self, x: np.ndarray) -> np.ndarray:
        return quantize_array(x, self.scale, self.zero_point,
                              bits=self.bits, axis=self.axis)

    def dequantize(self, q: np.ndarray) -> np.ndarray:
        return dequantize_array(q, self.scale, self.zero_point,
                                axis=self.axis)

    def fake(self, x: np.ndarray) -> np.ndarray:
        """Quantize-dequantize round trip (what ``fake_quant`` computes)."""
        return self.dequantize(self.quantize(x))


def params_from_range(lo: float, hi: float, bits: int = 8,
                      symmetric: bool = False) -> QuantParams:
    """Per-tensor params covering the observed float range ``[lo, hi]``.

    Asymmetric (affine) is the activation default; ``symmetric`` centres
    the grid on zero, which is what integer GEMMs want for weights.
    """
    lo, hi = float(min(lo, 0.0)), float(max(hi, 0.0))  # grid must contain 0
    qmin, qmax = -(2 ** (bits - 1)), 2 ** (bits - 1) - 1
    if symmetric:
        bound = max(abs(lo), abs(hi), 1e-12)
        return QuantParams(scale=bound / qmax, zero_point=0, bits=bits)
    span = max(hi - lo, 1e-12)
    scale = span / (qmax - qmin)
    zero_point = int(round(qmin - lo / scale))
    zero_point = max(qmin, min(qmax, zero_point))
    return QuantParams(scale=scale, zero_point=zero_point, bits=bits)


def weight_params(w: np.ndarray, bits: int = 8, per_channel: bool = True,
                  axis: int = 0) -> QuantParams:
    """Symmetric weight params, per-output-channel by default (SNPE-style)."""
    qmax = 2 ** (bits - 1) - 1
    if not per_channel:
        bound = max(float(np.max(np.abs(w))), 1e-12)
        return QuantParams(scale=bound / qmax, zero_point=0, bits=bits)
    reduce_axes = tuple(i for i in range(w.ndim) if i != axis)
    bounds = np.maximum(np.max(np.abs(w), axis=reduce_axes), 1e-12)
    scales = tuple(float(b) / qmax for b in bounds)
    zeros = tuple(0 for _ in scales)
    return QuantParams(scale=scales, zero_point=zeros, bits=bits, axis=axis)
