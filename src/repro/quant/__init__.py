"""Int8 quantization: QAT fake-quant training and integer deployment.

The paper's vendor backends (SNPE, TinyEngine) execute integer models;
this package provides the matching compiler path:

* observe activation ranges (:mod:`~repro.quant.calibrate`),
* train with simulated rounding (:func:`insert_fake_quant` + the STE
  gradient rule in autodiff),
* correct quantized-gradient magnitudes (:mod:`~repro.quant.qas`),
* emit a pure int8 inference graph (:func:`quantize_inference_graph`).
"""

from .calibrate import QUANTIZED_OPS, collect_ranges, watched_values
from .convert import (INT8_PASSTHROUGH, QuantConfig, insert_fake_quant,
                      quantize_inference_graph)
from .observers import (MinMaxObserver, MovingAverageObserver, Observer,
                        PercentileObserver)
from .params import QuantParams, params_from_range, weight_params
from .qas import (GRID_PARAMS_KEY, apply_qas, int8_grid_training_graph,
                  qas_scales)

__all__ = [
    "QUANTIZED_OPS",
    "INT8_PASSTHROUGH",
    "QuantConfig",
    "QuantParams",
    "Observer",
    "MinMaxObserver",
    "MovingAverageObserver",
    "PercentileObserver",
    "collect_ranges",
    "watched_values",
    "insert_fake_quant",
    "quantize_inference_graph",
    "params_from_range",
    "weight_params",
    "apply_qas",
    "qas_scales",
    "int8_grid_training_graph",
    "GRID_PARAMS_KEY",
]
