"""Range observers used during calibration.

An observer watches a stream of tensors for one graph value and summarises
the float range the quantizer must cover. Three policies are provided:

* :class:`MinMaxObserver` — exact running min/max (the SNPE default),
* :class:`MovingAverageObserver` — EMA of per-batch extrema, robust to a
  single outlier batch (the TF-Lite QAT default),
* :class:`PercentileObserver` — clips the tails, trading saturation error
  for resolution on heavy-tailed activations.
"""

from __future__ import annotations

import numpy as np

from ..errors import CompileError
from .params import QuantParams, params_from_range


class Observer:
    """Base class: accumulate statistics, then emit :class:`QuantParams`."""

    def observe(self, x: np.ndarray) -> None:
        raise NotImplementedError

    def range(self) -> tuple[float, float]:
        raise NotImplementedError

    @property
    def ready(self) -> bool:
        try:
            self.range()
        except CompileError:
            return False
        return True

    def make_params(self, bits: int = 8,
                    symmetric: bool = False) -> QuantParams:
        lo, hi = self.range()
        return params_from_range(lo, hi, bits=bits, symmetric=symmetric)


class MinMaxObserver(Observer):
    """Exact running extrema over everything observed."""

    def __init__(self) -> None:
        self._lo = np.inf
        self._hi = -np.inf

    def observe(self, x: np.ndarray) -> None:
        self._lo = min(self._lo, float(np.min(x)))
        self._hi = max(self._hi, float(np.max(x)))

    def range(self) -> tuple[float, float]:
        if self._lo > self._hi:
            raise CompileError("observer saw no data")
        return self._lo, self._hi


class MovingAverageObserver(Observer):
    """EMA of per-batch extrema; ``momentum`` is the history weight."""

    def __init__(self, momentum: float = 0.9) -> None:
        if not 0.0 <= momentum < 1.0:
            raise CompileError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._lo: float | None = None
        self._hi: float | None = None

    def observe(self, x: np.ndarray) -> None:
        lo, hi = float(np.min(x)), float(np.max(x))
        if self._lo is None:
            self._lo, self._hi = lo, hi
        else:
            m = self.momentum
            self._lo = m * self._lo + (1 - m) * lo
            self._hi = m * self._hi + (1 - m) * hi

    def range(self) -> tuple[float, float]:
        if self._lo is None:
            raise CompileError("observer saw no data")
        return self._lo, self._hi


class PercentileObserver(Observer):
    """Range covering the central ``percentile`` % of observed values.

    Keeps a reservoir of per-batch percentiles rather than raw samples, so
    memory stays bounded on long calibration runs.
    """

    def __init__(self, percentile: float = 99.9) -> None:
        if not 50.0 < percentile <= 100.0:
            raise CompileError(
                f"percentile must be in (50, 100], got {percentile}")
        self.percentile = percentile
        self._los: list[float] = []
        self._his: list[float] = []

    def observe(self, x: np.ndarray) -> None:
        tail = (100.0 - self.percentile) / 2.0
        self._los.append(float(np.percentile(x, tail)))
        self._his.append(float(np.percentile(x, 100.0 - tail)))

    def range(self) -> tuple[float, float]:
        if not self._los:
            raise CompileError("observer saw no data")
        return float(np.mean(self._los)), float(np.mean(self._his))
