"""Graph quantization: QAT instrumentation and int8 deployment conversion.

Two entry points:

* :func:`insert_fake_quant` — wrap the weights and input activations of
  every conv/matmul with ``fake_quant`` nodes. The resulting graph trains
  normally (the STE gradient rule passes through the rounding), which is
  quantization-aware training.
* :func:`quantize_inference_graph` — rebuild the forward graph on the int8
  ops (``conv2d_i8``/``matmul_i8`` with folded bias + activation,
  ``quantize_linear``/``dequantize_linear`` at domain boundaries). This is
  the form the paper's integer backends (SNPE, TinyEngine) execute;
  unsupported ops transparently fall back to float.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CompileError
from ..ir import Graph, GraphBuilder
from ..ir.node import Node
from .calibrate import QUANTIZED_OPS
from .observers import Observer
from .params import QuantParams, params_from_range, weight_params

#: Shape-only ops that operate on int8 tensors without touching values.
INT8_PASSTHROUGH = {"maxpool2d", "reshape", "transpose", "slice"}

_FOLDABLE_ACTIVATIONS = {"relu", "relu6"}


@dataclass(frozen=True)
class QuantConfig:
    """Precision choices for conversion."""

    weight_bits: int = 8
    act_bits: int = 8
    per_channel: bool = True       # per-output-channel weight scales
    symmetric_acts: bool = False   # activations are asymmetric by default


def _resolve_params(entry, bits: int, symmetric: bool) -> QuantParams:
    """Accept an Observer, a (lo, hi) pair, or ready-made QuantParams."""
    if isinstance(entry, QuantParams):
        return entry
    if isinstance(entry, Observer):
        return entry.make_params(bits=bits, symmetric=symmetric)
    lo, hi = entry
    return params_from_range(lo, hi, bits=bits, symmetric=symmetric)


def _weight_axis(op_type: str) -> int:
    # conv weights are OIHW (out channels first); matmul weights are
    # (in, out) so the per-channel axis is the output column.
    return 0 if op_type == "conv2d" else 1


class _ActRanges:
    """Lookup helper turning calibration results into activation params."""

    def __init__(self, ranges: dict, config: QuantConfig) -> None:
        self.ranges = ranges
        self.config = config

    def __contains__(self, name: str) -> bool:
        return name in self.ranges

    def params(self, name: str) -> QuantParams:
        try:
            entry = self.ranges[name]
        except KeyError:
            raise CompileError(
                f"no calibrated range for activation {name!r}; "
                "re-run calibration with this value watched"
            ) from None
        return _resolve_params(entry, self.config.act_bits,
                               self.config.symmetric_acts)


# ---------------------------------------------------------------------------
# QAT: fake-quant instrumentation
# ---------------------------------------------------------------------------

def insert_fake_quant(
    forward: Graph,
    act_ranges: dict,
    config: QuantConfig | None = None,
    ops: tuple[str, ...] = QUANTIZED_OPS,
) -> Graph:
    """Return a clone of ``forward`` with fake-quant on every quantization
    point (weights and input activations of ``ops``).

    ``act_ranges`` maps value names to observers / (lo, hi) pairs /
    QuantParams, as produced by :func:`repro.quant.calibrate.collect_ranges`.
    """
    config = config or QuantConfig()
    acts = _ActRanges(act_ranges, config)
    graph = forward.clone()
    b = GraphBuilder(graph=graph)
    wrapped: dict[str, str] = {}  # source value -> fake-quant output

    def wrap(name: str, params: QuantParams) -> str:
        if name not in wrapped:
            wrapped[name] = b.emit("fake_quant", [name], params.attrs(),
                                   name_hint=f"fq.{name}")
        return wrapped[name]

    for node in list(graph.nodes):
        if node.op_type not in ops:
            continue
        new_inputs = list(node.inputs)
        for idx, src in enumerate(node.inputs):
            if src in wrapped.values():
                continue
            if src in graph.initializers:
                if idx != 1:
                    continue  # only the weight operand is quantized
                params = weight_params(
                    graph.initializers[src], bits=config.weight_bits,
                    per_channel=config.per_channel,
                    axis=_weight_axis(node.op_type))
            else:
                if src not in acts:
                    continue  # unwatched activation stays float
                params = acts.params(src)
            new_inputs[idx] = wrap(src, params)
        node.inputs = tuple(new_inputs)
    graph.nodes = graph.topological_order()
    return graph


# ---------------------------------------------------------------------------
# Deployment: int8 graph construction
# ---------------------------------------------------------------------------

def quantize_inference_graph(
    forward: Graph,
    act_ranges: dict,
    config: QuantConfig | None = None,
) -> Graph:
    """Rebuild ``forward`` as an int8 inference graph.

    conv2d/matmul nodes (with a constant weight) become fused int8 ops;
    directly following single-consumer ``bias_add`` and relu/relu6 nodes
    fold into the requantization step. Shape-only ops ride along in int8;
    anything else falls back to float via ``dequantize_linear``.
    """
    config = config or QuantConfig()
    if config.act_bits != 8 or config.weight_bits != 8:
        raise CompileError("int8 deployment requires 8-bit config")
    acts = _ActRanges(act_ranges, config)
    out = Graph(f"{forward.name}.int8")
    b = GraphBuilder(graph=out)

    fmap: dict[str, str] = {}                       # src -> float value
    qmap: dict[str, tuple[str, QuantParams]] = {}   # src -> (int8 value, qp)
    consumers = forward.consumer_map()
    folded: set[str] = set()                        # node names folded away

    for name in forward.inputs:
        spec = forward.spec(name)
        fmap[name] = b.input(name, spec.shape, spec.dtype)

    def float_of(src: str) -> str:
        if src in fmap:
            return fmap[src]
        if src in qmap:
            q, qp = qmap[src]
            fmap[src] = b.emit("dequantize_linear", [q], qp.attrs(),
                               name_hint=f"dq.{src}")
            return fmap[src]
        if src in forward.initializers:
            fmap[src] = b.initializer(src, forward.initializers[src])
            return fmap[src]
        raise CompileError(f"value {src!r} has no converted producer")

    def int8_of(src: str) -> tuple[str, QuantParams]:
        if src not in qmap:
            params = acts.params(src)
            q = b.emit("quantize_linear", [float_of(src)], params.attrs(),
                       name_hint=f"q.{src}")
            qmap[src] = (q, params)
        return qmap[src]

    def match_chain(node: Node, mutate: bool
                    ) -> tuple[str | None, str | None, str]:
        """Find the (bias_add?, activation?) chain hanging off ``node``.

        Returns the bias initializer name, the activation kind, and the
        chain's final value; with ``mutate`` the chain nodes are marked as
        folded so the main loop skips them.
        """
        bias_name: str | None = None
        activation: str | None = None
        tail = node.outputs[0]
        users = consumers.get(tail, [])
        if len(users) == 1 and users[0].op_type == "bias_add" \
                and tail not in forward.outputs:
            cand = users[0]
            expected_axis = 1 if node.op_type == "conv2d" else (
                len(forward.spec(tail).shape) - 1)
            if int(cand.attrs.get("axis", 1)) == expected_axis \
                    and cand.inputs[1] in forward.initializers:
                bias_name = cand.inputs[1]
                if mutate:
                    folded.add(cand.name)
                tail = cand.outputs[0]
                users = consumers.get(tail, [])
        if len(users) == 1 and users[0].op_type in _FOLDABLE_ACTIVATIONS \
                and tail not in forward.outputs:
            act_node = users[0]
            activation = act_node.op_type
            if mutate:
                folded.add(act_node.name)
            tail = act_node.outputs[0]
        return bias_name, activation, tail

    def convert_linear(node: Node) -> None:
        weight_src = node.inputs[1]
        bias_src, activation, tail = match_chain(node, mutate=True)
        x_q, x_params = int8_of(node.inputs[0])
        w = forward.initializers[weight_src]
        w_params = weight_params(w, bits=8, per_channel=config.per_channel,
                                 axis=_weight_axis(node.op_type))
        w_q = b.initializer(f"{weight_src}.q", w_params.quantize(w))
        out_params = acts.params(tail)
        attrs = {
            "x_scale": x_params.scale,
            "x_zero_point": x_params.zero_point,
            "w_scale": w_params.scale,
            "out_scale": out_params.scale,
            "out_zero_point": out_params.zero_point,
            "activation": activation,
        }
        inputs = [x_q, w_q]
        if bias_src is not None:
            bias = forward.initializers[bias_src]
            mult = np.float64(x_params.scale) * np.asarray(
                w_params.scale, dtype=np.float64)
            bias_i32 = np.round(bias / mult).astype(np.int32)
            inputs.append(b.initializer(f"{bias_src}.q", bias_i32))
        if node.op_type == "conv2d":
            attrs.update(stride=node.attrs.get("stride", 1),
                         padding=node.attrs.get("padding", 0),
                         groups=int(node.attrs.get("groups", 1)))
            y = b.emit("conv2d_i8", inputs, attrs, name_hint=f"i8.{tail}")
        else:
            y = b.emit("matmul_i8", inputs, attrs, name_hint=f"i8.{tail}")
        qmap[tail] = (y, out_params)

    def convertible(node: Node) -> bool:
        if node.op_type not in QUANTIZED_OPS or len(node.inputs) != 2:
            return False
        if node.inputs[1] not in forward.initializers:
            return False
        if node.attrs.get("activation") not in (None, "none"):
            return False  # run conversion before fusion, not after
        if node.op_type == "matmul" \
                and forward.spec(node.inputs[1]).rank != 2:
            return False
        _, _, tail = match_chain(node, mutate=False)
        input_ranged = node.inputs[0] in qmap or node.inputs[0] in acts
        return input_ranged and tail in acts

    def int8_addable(node: Node) -> bool:
        if node.op_type != "add" or node.outputs[0] not in acts:
            return False
        return all(src in qmap or src in acts for src in node.inputs)

    for node in forward.topological_order():
        if node.name in folded:
            continue
        if convertible(node):
            convert_linear(node)
        elif int8_addable(node):
            (aq, ap), (bq, bp) = (int8_of(src) for src in node.inputs)
            out_params = acts.params(node.outputs[0])
            y = b.emit("add_i8", [aq, bq], {
                "a_scale": ap.scale, "a_zero_point": ap.zero_point,
                "b_scale": bp.scale, "b_zero_point": bp.zero_point,
                "out_scale": out_params.scale,
                "out_zero_point": out_params.zero_point,
                "activation": None,
            }, name_hint=f"i8.{node.outputs[0]}")
            qmap[node.outputs[0]] = (y, out_params)
        elif node.op_type == "global_avg_pool" \
                and node.inputs[0] in qmap:
            q, qp = qmap[node.inputs[0]]
            y = b.emit("global_avg_pool_i8", [q],
                       name_hint=f"i8.{node.outputs[0]}")
            qmap[node.outputs[0]] = (y, qp)
        elif node.op_type in INT8_PASSTHROUGH \
                and node.inputs[0] in qmap:
            q, qp = qmap[node.inputs[0]]
            y = b.emit(node.op_type, [q], dict(node.attrs),
                       name_hint=f"i8.{node.outputs[0]}")
            qmap[node.outputs[0]] = (y, qp)
        else:
            inputs = [float_of(i) for i in node.inputs]
            outs = b.emit(node.op_type, inputs, dict(node.attrs),
                          name_hint=node.outputs[0],
                          n_outputs=len(node.outputs))
            outs = [outs] if isinstance(outs, str) else outs
            for src, new in zip(node.outputs, outs):
                fmap[src] = new

    for src in forward.outputs:
        b.mark_output(float_of(src))
    out.metadata["quantized_from"] = forward.name
    return out
