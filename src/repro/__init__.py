"""PockEngine reproduction: sparse and efficient fine-tuning in a pocket.

A compilation-first training engine (MICRO 2023): compile-time autodiff,
sparse backpropagation via backward-graph pruning, training-graph
optimizations (fusion, reordering, Winograd and QKV merging for frozen
weights, layout), a memory planner, a numpy executor, and analytical
edge-device cost models. Supporting subsystems live in their own
subpackages: int8 quantization (:mod:`repro.quant`), LoRA adapters
(:mod:`repro.sparse.lora`), rematerialization/paging
(:mod:`repro.memory.remat`), deployment artifacts (:mod:`repro.deploy`),
and the runtime profiler (:mod:`repro.runtime.profiler`).

Quickstart::

    from repro import (InputSpec, Linear, Sequential, trace,
                       compile_training, Trainer, SGD, bias_only)

    model = Sequential(Linear(16, 32, activation="relu"), Linear(32, 4))
    forward = trace(model, [InputSpec("x", (8, 16))])
    program = compile_training(forward, optimizer=SGD(lr=0.1),
                               scheme=bias_only(forward))
    trainer = Trainer(program, forward)
    trainer.step(x_batch, y_batch)
"""

from .errors import (AutodiffError, CompileError, DeviceError, ExecutionError,
                     GraphError, MemoryPlanError, ReproError, SchemeError,
                     ShapeError)
from .frontend import (Conv2d, Embedding, InputSpec, LayerNorm, Linear,
                       Module, Parameter, RMSNorm, Sequential,
                       TransformerBlock, trace)
from .ir import DType, Graph, GraphBuilder, TensorSpec, validate_graph
from .runtime import Executor, Program, interpret
from .sparse import UpdateScheme, bias_only, full_update, last_blocks
from .train import SGD, Adam, Lion, Trainer

__version__ = "1.0.0"

#: names resolved lazily, mapped to their defining submodule. The serving
#: layer pulls in the model registry, and the compiler pulls in autodiff
#: plus the whole pass pipeline — deployment processes that only *load*
#: artifacts (`repro.deploy`) must never pay for (or depend on) either, so
#: `import repro` keeps both off the import graph until first use.
_LAZY_EXPORTS = {
    "FineTuneService": "serve",
    "MetricsRegistry": "serve",
    "ProgramCache": "serve",
    "CompileOptions": "runtime.compiler",
    "compile_inference": "runtime.compiler",
    "compile_training": "runtime.compiler",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is not None:
        import importlib

        module = importlib.import_module(f".{module_name}", __name__)
        return getattr(module, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))

__all__ = [
    "Adam",
    "AutodiffError",
    "CompileError",
    "CompileOptions",
    "Conv2d",
    "DType",
    "DeviceError",
    "Embedding",
    "ExecutionError",
    "Executor",
    "FineTuneService",
    "Graph",
    "GraphBuilder",
    "GraphError",
    "InputSpec",
    "LayerNorm",
    "Linear",
    "Lion",
    "MemoryPlanError",
    "MetricsRegistry",
    "Module",
    "Parameter",
    "Program",
    "ProgramCache",
    "RMSNorm",
    "ReproError",
    "SGD",
    "SchemeError",
    "Sequential",
    "ShapeError",
    "TensorSpec",
    "Trainer",
    "TransformerBlock",
    "UpdateScheme",
    "bias_only",
    "compile_inference",
    "compile_training",
    "full_update",
    "interpret",
    "last_blocks",
    "trace",
    "validate_graph",
]
