"""PockEngine reproduction: sparse and efficient fine-tuning in a pocket.

A compilation-first training engine (MICRO 2023): compile-time autodiff,
sparse backpropagation via backward-graph pruning, training-graph
optimizations (fusion, reordering, Winograd and QKV merging for frozen
weights, layout), a memory planner, a numpy executor, and analytical
edge-device cost models. Supporting subsystems live in their own
subpackages: int8 quantization (:mod:`repro.quant`), LoRA adapters
(:mod:`repro.sparse.lora`), rematerialization/paging
(:mod:`repro.memory.remat`), deployment artifacts (:mod:`repro.deploy`),
and the runtime profiler (:mod:`repro.runtime.profiler`).

Quickstart::

    from repro import (InputSpec, Linear, Sequential, trace,
                       compile_training, Trainer, SGD, bias_only)

    model = Sequential(Linear(16, 32, activation="relu"), Linear(32, 4))
    forward = trace(model, [InputSpec("x", (8, 16))])
    program = compile_training(forward, optimizer=SGD(lr=0.1),
                               scheme=bias_only(forward))
    trainer = Trainer(program, forward)
    trainer.step(x_batch, y_batch)
"""

from .errors import (AutodiffError, CompileError, DeviceError, ExecutionError,
                     GraphError, MemoryPlanError, ReproError, SchemeError,
                     ShapeError)
from .frontend import (Conv2d, Embedding, InputSpec, LayerNorm, Linear,
                       Module, Parameter, RMSNorm, Sequential,
                       TransformerBlock, trace)
from .ir import DType, Graph, GraphBuilder, TensorSpec, validate_graph
from .runtime import Executor, Program, interpret
from .runtime.compiler import (CompileOptions, compile_inference,
                               compile_training)
from .sparse import UpdateScheme, bias_only, full_update, last_blocks
from .train import SGD, Adam, Lion, Trainer

__version__ = "1.0.0"

#: serving-layer names resolved lazily (the subsystem pulls in the model
#: registry; `import repro` stays light for users who never serve)
_SERVE_EXPORTS = ("FineTuneService", "MetricsRegistry", "ProgramCache")


def __getattr__(name: str):
    if name in _SERVE_EXPORTS:
        from . import serve

        return getattr(serve, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_SERVE_EXPORTS))

__all__ = [
    "Adam",
    "AutodiffError",
    "CompileError",
    "CompileOptions",
    "Conv2d",
    "DType",
    "DeviceError",
    "Embedding",
    "ExecutionError",
    "Executor",
    "FineTuneService",
    "Graph",
    "GraphBuilder",
    "GraphError",
    "InputSpec",
    "LayerNorm",
    "Linear",
    "Lion",
    "MemoryPlanError",
    "MetricsRegistry",
    "Module",
    "Parameter",
    "Program",
    "ProgramCache",
    "RMSNorm",
    "ReproError",
    "SGD",
    "SchemeError",
    "Sequential",
    "ShapeError",
    "TensorSpec",
    "Trainer",
    "TransformerBlock",
    "UpdateScheme",
    "bias_only",
    "compile_inference",
    "compile_training",
    "full_update",
    "interpret",
    "last_blocks",
    "trace",
    "validate_graph",
]
