"""Command-line interface: quick access to the simulators and reports.

Usage::

    python -m repro.cli features
    python -m repro.cli simulate --model mobilenetv2 --device raspberry_pi_4
    python -m repro.cli memory --model resnet50 --device jetson_nano --batch 4
    python -m repro.cli scheme --model bert
    python -m repro.cli profile --model mcunet --device stm32f746 --sparse
    python -m repro.cli deploy --model mcunet_micro --out ./artifact
    python -m repro.cli autotune ./artifact --device raspberry_pi_4
    python -m repro.cli lint-plan ./artifact
    python -m repro.cli lint-async
    python -m repro.cli devices
"""

from __future__ import annotations

import argparse
import json
import sys

from .baselines import FRAMEWORKS, TABLE1_COLUMNS, feature_row, \
    simulate_training
from .devices import DEVICES, get_device
from .models import REGISTRY, build_model, paper_scheme
from .report import render_table
from .sparse import full_update
from .train import SGD


def _build(model_key: str, batch: int):
    entry = REGISTRY[model_key]
    kwargs = {"batch": batch}
    if entry.family == "transformer" and "llama" in model_key:
        kwargs["seq_len"] = 512 if model_key == "llama7b" else None
    return build_model(model_key, **kwargs), entry.family


def cmd_features(args) -> int:
    rows = []
    for key in ("pytorch", "tensorflow", "jax", "mnn", "tflite_micro",
                "pockengine"):
        profile = FRAMEWORKS[key]
        features = feature_row(profile)
        rows.append([profile.name] + [features[c] for c in TABLE1_COLUMNS])
    print(render_table(["Framework"] + list(TABLE1_COLUMNS), rows))
    return 0


def cmd_devices(args) -> int:
    rows = [
        [d.key, d.kind, f"{d.peak_gflops:.1f}", f"{d.mem_bw_gbs:.1f}",
         f"{d.ram_mb:.0f}", d.preferred_layout]
        for d in DEVICES.values()
    ]
    print(render_table(
        ["Device", "kind", "GFLOP/s", "GB/s", "RAM MB", "layout"], rows))
    return 0


def cmd_simulate(args) -> int:
    forward, family = _build(args.model, args.batch)
    device = get_device(args.device)
    scheme = paper_scheme(forward) if args.sparse else full_update(forward)
    rows = []
    for fw_key in args.frameworks:
        result = simulate_training(
            forward, FRAMEWORKS[fw_key], device, scheme=scheme,
            optimizer=SGD(0.01), model_family=family)
        if result is None:
            rows.append([fw_key, "-", "-", "-", "unavailable"])
        else:
            rows.append([
                fw_key, f"{result.latency_ms:.1f}ms",
                f"{result.throughput_per_s:.2f}/s",
                f"{result.memory_mb:.0f}MB",
                "OOM" if result.oom else "ok",
            ])
    print(render_table(
        ["Framework", "latency", "throughput", "memory", "status"], rows,
        title=f"{args.model} on {device.name} "
              f"({'sparse' if args.sparse else 'full'} scheme, "
              f"batch {args.batch})"))
    return 0


def cmd_memory(args) -> int:
    from .memory import plan_arena, profile_memory
    from .runtime.compiler import CompileOptions, compile_training

    forward, _ = _build(args.model, args.batch)
    scheme = paper_scheme(forward) if args.sparse else full_update(forward)
    program = compile_training(
        forward, optimizer=SGD(0.01), scheme=scheme,
        options=CompileOptions(materialize_state=False,
                               device=get_device(args.device)))
    profile = profile_memory(program.graph, program.schedule)
    plan = plan_arena(program.graph, program.schedule)
    print(render_table(["metric", "value"], [
        ["scheme", scheme.name],
        ["graph nodes", len(program.graph.nodes)],
        ["peak transient", f"{profile.peak_transient_bytes / 1024:.1f}KB"],
        ["weights + state", f"{profile.resident_bytes / 1024:.1f}KB"],
        ["peak total", f"{profile.peak_total_bytes / (1 << 20):.1f}MB"],
        ["static arena", f"{plan.arena_bytes / 1024:.1f}KB"],
    ]))
    return 0


def cmd_scheme(args) -> int:
    forward, _ = _build(args.model, args.batch)
    scheme = paper_scheme(forward)
    meta = forward.metadata.get("params", {})
    rows = [
        [param, f"{ratio:.2f}", meta.get(param, {}).get("role", "?"),
         meta.get(param, {}).get("block", "-")]
        for param, ratio in sorted(scheme.updates.items())
    ]
    print(render_table(["Parameter", "ratio", "role", "block"], rows,
                       title=f"paper scheme for {args.model}: {scheme.name} "
                             f"({len(rows)} of "
                             f"{len(forward.trainable)} tensors)"))
    return 0


def cmd_profile(args) -> int:
    from .runtime import analytical_profile
    from .runtime.compiler import CompileOptions, compile_training

    forward, _ = _build(args.model, args.batch)
    device = get_device(args.device)
    scheme = paper_scheme(forward) if args.sparse else full_update(forward)
    program = compile_training(
        forward, optimizer=SGD(0.01), scheme=scheme,
        options=CompileOptions(materialize_state=False, device=device))
    profile = analytical_profile(program.graph, program.schedule, device)
    rows = [[op, count, f"{us / 1000:.2f}ms",
             f"{us / profile.total_us:.1%}"]
            for op, (count, us) in list(profile.by_op_type().items())[:12]]
    print(render_table(
        ["Op", "count", "time", "share"], rows,
        title=f"{args.model} training step on {device.name} "
              f"({scheme.name}): {profile.total_us / 1000:.1f}ms total"))
    if args.trace:
        path = profile.save_chrome_trace(args.trace)
        print(f"\nchrome://tracing timeline written to {path}")
    return 0


def cmd_deploy(args) -> int:
    from .deploy import estimate_binary_size, load_artifact, save_artifact
    from .runtime.compiler import compile_training

    forward, _ = _build(args.model, args.batch)
    scheme = paper_scheme(forward) if args.sparse else full_update(forward)
    program = compile_training(forward, optimizer=SGD(0.01), scheme=scheme)
    save_artifact(program, args.out)
    deployed = load_artifact(args.out)  # verify the round trip
    report = estimate_binary_size(deployed.graph,
                                  deployed.program.schedule)
    print(render_table(["metric", "value"], [
        ["artifact", args.out],
        ["kernels linked", report.num_kernels],
        ["code", f"{report.code_bytes / 1024:.1f}KB"],
        ["weights", f"{report.weight_bytes / 1024:.1f}KB"],
        ["arena", f"{deployed.arena_bytes / 1024:.1f}KB"],
    ], title=f"deployable training artifact for {args.model}"))
    return 0


def cmd_autotune(args) -> int:
    from pathlib import Path

    from .deploy import load_artifact, save_artifact
    from .errors import ReproError

    try:
        deployed = load_artifact(args.artifact)
    except ReproError as exc:
        print(f"autotune: cannot load {args.artifact}: {exc}",
              file=sys.stderr)
        return 2
    program = deployed.program
    old_spec = program.plan_spec()
    # Re-lower through the artifact's own pipeline (minus any previous
    # autotune stage — run_pipeline re-appends it) with tuning enabled.
    mode = "measure" if args.measure else "cost"
    program.meta["plan_passes"] = tuple(
        p for p in old_spec.passes if p != "autotune")
    program.meta["autotune"] = mode
    program.meta["autotune_device"] = args.device
    program.meta.pop("__plan__", None)
    program.meta.pop("__plan_spec__", None)
    spec = program.plan_spec()

    decisions = spec.tuned_variants
    kept = sum(1 for d in decisions if d.variant != "base")
    rows = [
        [d.node, d.kernel, d.variant,
         f"{d.predicted_us:.2f}",
         f"{d.measured_us:.2f}" if d.measured_us is not None else "-",
         d.source]
        for d in decisions
    ]
    if rows:
        print(render_table(
            ["instruction", "kernel", "variant", "predicted us",
             "measured us", "source"], rows,
            title=f"autotune ({mode}) on {args.device}: "
                  f"{kept} variant(s) kept, "
                  f"{len(decisions) - kept} reverted to base"))
    else:
        print(f"autotune ({mode}) on {args.device}: "
              f"no tunable instructions in this plan")
    save_artifact(program, args.artifact)
    print(f"\nartifact rewritten with tuned plan: {args.artifact}")
    if args.json:
        Path(args.json).write_text(json.dumps({
            "artifact": str(args.artifact),
            "device": args.device,
            "mode": mode,
            "instructions": len(spec.instructions),
            "decisions": [
                {"node": d.node, "kernel": d.kernel, "variant": d.variant,
                 "predicted_us": d.predicted_us,
                 "measured_us": d.measured_us, "source": d.source}
                for d in decisions
            ],
        }, indent=1))
    return 0


def cmd_lint_plan(args) -> int:
    from pathlib import Path

    from .analysis import report_for
    from .deploy import load_artifact
    from .errors import ReproError

    # verify=False: collect every finding into one report instead of
    # stopping at the first PlanVerifyError like a normal load would.
    try:
        deployed = load_artifact(args.artifact, verify=False)
    except ReproError as exc:
        print(f"lint-plan: cannot load {args.artifact}: {exc}",
              file=sys.stderr)
        return 2
    report = report_for(deployed.program.plan_spec(), deployed.program,
                        target=str(args.artifact))
    print(report.render())
    if args.json:
        Path(args.json).write_text(json.dumps(report.to_dict(), indent=1))
    return 0 if report.ok else 1


def cmd_lint_async(args) -> int:
    from pathlib import Path

    from .analysis import lint_tree, worker_import_report

    src_root = Path(__file__).resolve().parents[1]
    target = Path(args.path) if args.path else src_root / "repro" / "serve"
    reports = [lint_tree(str(target)), worker_import_report(str(src_root))]
    for report in reports:
        print(report.render())
        print()
    if args.json:
        Path(args.json).write_text(json.dumps(
            [report.to_dict() for report in reports], indent=1))
    return 0 if all(report.ok for report in reports) else 1


def _serve_http(args) -> int:
    """Run the HTTP front door until SIGINT; shut down with zero hangs."""
    import time

    from .serve import FineTuneService
    from .serve.gateway import GatewayServer

    if args.log_json:
        from .obs import configure_json_logging
        configure_json_logging()
    auth_tokens = None
    if args.auth_token_file:
        with open(args.auth_token_file, encoding="utf-8") as fh:
            auth_tokens = json.load(fh)
        if not isinstance(auth_tokens, dict) or not auth_tokens or not all(
                isinstance(k, str) and isinstance(v, str)
                for k, v in auth_tokens.items()):
            print("error: --auth-token-file must hold a non-empty JSON "
                  "object mapping token strings to tenant-id strings",
                  file=sys.stderr)
            return 2
    with FineTuneService(cache_capacity=args.cache_capacity,
                         max_batch=args.max_batch,
                         workers=args.workers,
                         backend=args.backend,
                         worker_channel=args.worker_channel,
                         batch_hold_ms=args.batch_hold_ms,
                         cache_dir=args.cache_dir,
                         max_sessions=args.max_sessions,
                         session_ttl=args.session_ttl,
                         trace_sample=args.trace_sample,
                         slow_ms=args.slow_ms,
                         checkpoint_dir=args.checkpoint_dir,
                         checkpoint_every=args.checkpoint_every,
                         keep_checkpoints=args.keep_checkpoints) as service:
        gateway = GatewayServer(
            service, host=args.host, port=args.http,
            max_queue_depth=args.max_queue_depth,
            rate_limit=args.rate_limit, rate_burst=args.rate_burst,
            auth_tokens=auth_tokens)
        gateway.start()
        limit = (f"{args.rate_limit:g}/s per tenant" if args.rate_limit
                 else "off")
        print(f"repro serve: listening on {gateway.url} "
              f"(backend={args.backend}, "
              f"max_queue_depth={args.max_queue_depth}, "
              f"rate_limit={limit})", flush=True)
        try:
            while True:
                time.sleep(1)
        except KeyboardInterrupt:
            print("\nrepro serve: SIGINT — draining in-flight work",
                  flush=True)
        finally:
            drained = gateway.close(drain_timeout=args.drain_timeout)
            print(service.render_metrics())
            if drained:
                print("shutdown: queue drained cleanly", flush=True)
            else:
                print(f"shutdown: drain exceeded {args.drain_timeout}s; "
                      f"queued requests cancelled", flush=True)
    return 0


def cmd_serve(args) -> int:
    import time

    import numpy as np

    from .serve import FineTuneService

    # argparse already restricts --model to micro (test-scale executable)
    # registry entries, so no runtime re-check is needed here.
    for name in ("tenants", "steps", "max_batch", "workers",
                 "cache_capacity"):
        if getattr(args, name) < 1:
            print(f"error: --{name.replace('_', '-')} must be >= 1",
                  file=sys.stderr)
            return 2

    if args.http is not None:
        return _serve_http(args)

    if args.log_json:
        from .obs import configure_json_logging
        configure_json_logging()
    rng = np.random.default_rng(args.seed)
    with FineTuneService(cache_capacity=args.cache_capacity,
                         max_batch=args.max_batch,
                         workers=args.workers,
                         backend=args.backend,
                         worker_channel=args.worker_channel,
                         batch_hold_ms=args.batch_hold_ms,
                         cache_dir=args.cache_dir,
                         max_sessions=args.max_sessions,
                         session_ttl=args.session_ttl,
                         trace_sample=args.trace_sample,
                         slow_ms=args.slow_ms,
                         checkpoint_dir=args.checkpoint_dir,
                         checkpoint_every=args.checkpoint_every,
                         keep_checkpoints=args.keep_checkpoints) as service:
        scheme = "paper" if args.sparse else "full"
        sessions = [
            service.create_session(args.model, scheme=scheme,
                                   tenant=f"tenant-{i:02d}")
            for i in range(args.tenants)
        ]
        family = sessions[0].family
        service.warm(sessions[0].id)

        def example():
            if np.issubdtype(family.example_dtype, np.integer):
                x = rng.integers(0, 8, size=family.example_shape)
            else:
                x = rng.standard_normal(family.example_shape)
            y = rng.integers(0, family.num_classes, size=family.label_shape)
            return (x.astype(family.example_dtype),
                    y.astype(family.label_dtype))

        began = time.perf_counter()
        futures = []
        for _ in range(args.steps):       # interleaved tenant traffic
            for session in sessions:
                x, y = example()
                futures.append(service.submit(session.id, x, y))
        for future in futures:
            future.result()
        elapsed = time.perf_counter() - began

        requests = len(futures)
        print(render_table(["tenant", "steps", "examples", "last loss"], [
            [s.tenant, s.steps, s.examples, f"{s.last_loss:.4f}"]
            for s in sessions
        ], title=f"{args.model} ({scheme} scheme) — {args.tenants} tenants, "
                 f"{args.backend} backend"))
        print()
        print(service.render_metrics())
        print()
        stats = service.cache.stats
        if args.cache_dir:
            print(f"program cache dir {args.cache_dir}: "
                  f"{stats.compiles} compiled, {stats.disk_hits} reloaded "
                  f"from disk, {stats.disk_writes} persisted")
        print(f"{requests} requests in {elapsed:.2f}s = "
              f"{requests / elapsed:.1f} steps/s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="PockEngine reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("features", help="Table-1 framework feature matrix")
    sub.add_parser("devices", help="list simulated edge devices")

    sim = sub.add_parser("simulate", help="simulate a training iteration")
    sim.add_argument("--model", required=True, choices=sorted(REGISTRY))
    sim.add_argument("--device", required=True, choices=sorted(DEVICES))
    sim.add_argument("--batch", type=int, default=8)
    sim.add_argument("--sparse", action="store_true",
                     help="use the paper's sparse scheme")
    sim.add_argument("--frameworks", nargs="+",
                     default=["pytorch", "tensorflow", "pockengine"],
                     choices=sorted(FRAMEWORKS))

    mem = sub.add_parser("memory", help="memory plan for one configuration")
    mem.add_argument("--model", required=True, choices=sorted(REGISTRY))
    mem.add_argument("--device", default="raspberry_pi_4",
                     choices=sorted(DEVICES))
    mem.add_argument("--batch", type=int, default=1)
    mem.add_argument("--sparse", action="store_true")

    sch = sub.add_parser("scheme", help="show the paper scheme for a model")
    sch.add_argument("--model", required=True, choices=sorted(REGISTRY))
    sch.add_argument("--batch", type=int, default=1)

    prof = sub.add_parser("profile",
                          help="per-op latency breakdown on a device")
    prof.add_argument("--model", required=True, choices=sorted(REGISTRY))
    prof.add_argument("--device", default="raspberry_pi_4",
                      choices=sorted(DEVICES))
    prof.add_argument("--batch", type=int, default=1)
    prof.add_argument("--sparse", action="store_true")
    prof.add_argument("--trace", help="write a chrome://tracing JSON here")

    dep = sub.add_parser("deploy",
                         help="freeze a training step into an artifact")
    dep.add_argument("--model", required=True, choices=sorted(REGISTRY))
    dep.add_argument("--out", required=True)
    dep.add_argument("--batch", type=int, default=1)
    dep.add_argument("--sparse", action="store_true")

    tune = sub.add_parser(
        "autotune",
        help="pick per-instruction kernel variants for an artifact's plan "
             "and rewrite the artifact with the tuned plan")
    tune.add_argument("artifact", help="artifact directory to tune in place")
    tune.add_argument("--device", default="raspberry_pi_4",
                      choices=sorted(DEVICES),
                      help="latency-model device the ranking targets")
    tune.add_argument("--measure", action="store_true",
                      help="confirm the cost-model ranking with cached "
                           "on-host microbenchmarks")
    tune.add_argument("--json", metavar="PATH",
                      help="also write the tuning decisions as JSON here")

    lint_plan = sub.add_parser(
        "lint-plan",
        help="statically verify an artifact's execution plan")
    lint_plan.add_argument("artifact", help="artifact directory to check")
    lint_plan.add_argument("--json", metavar="PATH",
                           help="also write the report as JSON here")

    lint_async = sub.add_parser(
        "lint-async",
        help="flag event-loop blockers in the serving stack and verify "
             "the step worker's import closure stays compiler-free")
    lint_async.add_argument("--path", default=None,
                            help="directory to lint (default: the "
                                 "installed repro.serve package)")
    lint_async.add_argument("--json", metavar="PATH",
                            help="also write the reports as JSON here")

    srv = sub.add_parser(
        "serve", help="run a multi-tenant fine-tuning service demo")
    srv.add_argument("--model", default="mcunet_micro",
                     choices=sorted(k for k, e in REGISTRY.items()
                                    if e.micro))
    srv.add_argument("--tenants", type=int, default=8)
    srv.add_argument("--steps", type=int, default=16,
                     help="step requests per tenant")
    srv.add_argument("--max-batch", type=int, default=8,
                     help="largest micro-batch the scheduler coalesces")
    srv.add_argument("--workers", type=int, default=2)
    srv.add_argument("--backend", default="thread",
                     choices=["thread", "process"],
                     help="step executors: in-process threads, or a "
                          "process pool fed from persisted plan artifacts")
    srv.add_argument("--worker-channel", default="shm",
                     choices=["shm", "pickle"],
                     help="how batches reach process workers: a zero-copy "
                          "shared-memory slab ring (updates applied in "
                          "place), or the legacy per-step pickle pipe "
                          "(process backend only)")
    srv.add_argument("--batch-hold-ms", type=float, default=0.0,
                     metavar="MS",
                     help="let the scheduler hold an undersized batch up "
                          "to MS for more same-program arrivals (0 = cut "
                          "immediately); fill lands in serve.batch_fill")
    srv.add_argument("--cache-dir",
                     help="persist compiled programs (graph + execution "
                          "plan) here; restarts and worker processes "
                          "reload instead of recompiling")
    srv.add_argument("--max-sessions", type=int, default=None,
                     help="session cap; beyond it idle-LRU tenants are "
                          "evicted")
    srv.add_argument("--session-ttl", type=float, default=None,
                     help="evict tenant sessions idle this many seconds")
    srv.add_argument("--cache-capacity", type=int, default=32)
    srv.add_argument("--http", type=int, default=None, metavar="PORT",
                     help="serve the HTTP gateway on PORT (0 = ephemeral) "
                          "instead of running the in-process demo; "
                          "Ctrl-C shuts down cleanly")
    srv.add_argument("--host", default="127.0.0.1",
                     help="gateway bind address (with --http)")
    srv.add_argument("--max-queue-depth", type=int, default=64,
                     help="shed step requests with 429 once the live "
                          "scheduler queue reaches this watermark")
    srv.add_argument("--rate-limit", type=float, default=None,
                     help="per-tenant step admission rate (requests/s); "
                          "past it the gateway answers 429 + Retry-After")
    srv.add_argument("--rate-burst", type=float, default=None,
                     help="per-tenant burst size (default: one second of "
                          "--rate-limit, floored at 1)")
    srv.add_argument("--auth-token-file", default=None, metavar="PATH",
                     help="JSON file mapping bearer tokens to tenant ids; "
                          "when set, every route but /v1/healthz requires "
                          "Authorization: Bearer and sessions are pinned "
                          "to the token's tenant")
    srv.add_argument("--checkpoint-dir", default=None,
                     help="persist session checkpoints under this "
                          "directory (enables the restore-from-store "
                          "routes)")
    srv.add_argument("--checkpoint-every", type=int, default=0,
                     metavar="N",
                     help="auto-checkpoint a session every N applied "
                          "steps (0 = manual checkpoints only; needs "
                          "--checkpoint-dir)")
    srv.add_argument("--keep-checkpoints", type=int, default=3,
                     help="checkpoint versions retained per session")
    srv.add_argument("--drain-timeout", type=float, default=10.0,
                     help="on shutdown, wait this long for queued steps "
                          "before cancelling them")
    srv.add_argument("--trace-sample", type=int, default=0, metavar="N",
                     help="record per-instruction kernel timings for 1 in "
                          "N executed batches (0 = off); aggregates show "
                          "in metrics, events in GET /v1/trace")
    srv.add_argument("--slow-ms", type=float, default=None,
                     help="log a structured warning with the full span "
                          "breakdown for requests slower than this")
    srv.add_argument("--log-json", action="store_true",
                     help="emit one JSON object per log line (request-ID "
                          "correlated) instead of plain text")
    srv.add_argument("--sparse", action="store_true", default=True,
                     help="use the paper's sparse scheme (default)")
    srv.add_argument("--full", dest="sparse", action="store_false",
                     help="full-update scheme instead of sparse")
    srv.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "features": cmd_features,
        "devices": cmd_devices,
        "simulate": cmd_simulate,
        "memory": cmd_memory,
        "scheme": cmd_scheme,
        "profile": cmd_profile,
        "deploy": cmd_deploy,
        "autotune": cmd_autotune,
        "lint-plan": cmd_lint_plan,
        "lint-async": cmd_lint_async,
        "serve": cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
