"""Baseline framework behaviour profiles.

A :class:`FrameworkProfile` describes how a training framework behaves in
the dimensions that matter on edge hardware (paper Table 1): whether it
interprets ops through a host language, derives the backward at runtime,
fuses/reorders/switches kernels, how it "supports" sparse backpropagation,
and how much runtime baseline memory it drags in. Baselines are simulated
as *our compiler with those capabilities switched off* plus the
corresponding overheads — see DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class FrameworkProfile:
    """Capability/overhead profile of one training framework."""

    key: str
    name: str
    #: per-op host-language dispatch at runtime
    interpreted: bool
    #: backward graph rebuilt every iteration (tape autodiff)
    runtime_autodiff: bool
    #: graph optimizations
    fusion: bool = False
    reorder: bool = False
    winograd: bool = False
    layout: bool = False
    #: sparse backprop: 'pruned' (real), 'masked' (compute-all), 'none'
    sparse_mode: str = "masked"
    #: all gradients kept live until a separate optimizer step
    holds_all_grads: bool = True
    #: per-device-kind kernel efficiency: kind -> per-op-class multiplier
    #: dict ({'gemm': .., 'depthwise': .., 'default': ..}) or a flat float
    kernel_quality: dict = field(default_factory=dict)
    #: extra multiplier on gemm efficiency for transformer models — eager
    #: attention without fused/flash kernels (paper Table 5's PyTorch gap)
    transformer_gemm_penalty: float = 1.0
    #: resident runtime/base memory per device kind, MB
    base_memory_mb: dict[str, float] = field(default_factory=dict)
    #: multiplier modelling allocator fragmentation / caching allocators
    allocator_overhead: float = 1.0
    #: device kinds the framework can run on at all
    supported_kinds: frozenset = frozenset({"cpu", "gpu"})
    supports_training: bool = True
    #: model families supported for training (None = all)
    supported_families: frozenset | None = None

    def runs_on(self, device_kind: str) -> bool:
        return device_kind in self.supported_kinds

    def quality_on(self, device_kind: str, family: str = "cnn"):
        """Kernel quality spec for a device kind (dict per class or float)."""
        quality = self.kernel_quality.get(device_kind, 0.5)
        if family != "transformer" or self.transformer_gemm_penalty >= 1.0:
            return quality
        if isinstance(quality, dict):
            quality = dict(quality)
            quality["gemm"] = quality.get("gemm", quality.get("default", 0.1)) \
                * self.transformer_gemm_penalty
            return quality
        return {"gemm": float(quality) * self.transformer_gemm_penalty,
                "default": float(quality)}

    def base_memory_on(self, device_kind: str) -> float:
        return self.base_memory_mb.get(device_kind, 0.0)


FRAMEWORKS: dict[str, FrameworkProfile] = {
    p.key: p
    for p in [
        FrameworkProfile(
            key="pytorch",
            name="PyTorch",
            interpreted=True,
            runtime_autodiff=True,
            sparse_mode="masked",
            holds_all_grads=True,
            kernel_quality={
                "cpu": {"gemm": 0.28, "depthwise": 0.016, "default": 0.06},
                "gpu": {"gemm": 0.45, "depthwise": 0.18, "default": 0.10},
            },
            transformer_gemm_penalty=0.55,
            base_memory_mb={"cpu": 320.0, "gpu": 780.0},
            allocator_overhead=1.05,
            supported_kinds=frozenset({"cpu", "gpu"}),
        ),
        FrameworkProfile(
            key="tensorflow",
            name="TensorFlow",
            interpreted=True,
            runtime_autodiff=True,
            sparse_mode="masked",
            holds_all_grads=True,
            kernel_quality={
                "cpu": {"gemm": 0.23, "depthwise": 0.014, "default": 0.05},
                "gpu": {"gemm": 0.40, "depthwise": 0.15, "default": 0.08},
            },
            transformer_gemm_penalty=0.50,
            base_memory_mb={"cpu": 380.0, "gpu": 860.0},
            allocator_overhead=1.10,
            supported_kinds=frozenset({"cpu", "gpu"}),
        ),
        FrameworkProfile(
            key="jax",
            name="Jax",
            # XLA compiles the step function, so no per-op Python dispatch —
            # but kernels are not edge-tuned and no training-graph
            # optimizations beyond XLA's generic fusion apply.
            interpreted=False,
            runtime_autodiff=False,
            fusion=True,
            sparse_mode="masked",
            holds_all_grads=True,
            kernel_quality={
                "cpu": {"gemm": 0.23, "depthwise": 0.015, "default": 0.05},
                "gpu": {"gemm": 0.48, "depthwise": 0.20, "default": 0.12},
            },
            transformer_gemm_penalty=0.65,
            base_memory_mb={"cpu": 350.0, "gpu": 820.0},
            allocator_overhead=1.10,
            supported_kinds=frozenset({"cpu", "gpu"}),
        ),
        FrameworkProfile(
            key="mnn",
            name="MNN",
            # Compiled mobile inference engine with preliminary CNN training:
            # good ARM kernels, no sparse support, no training memory opts.
            interpreted=False,
            runtime_autodiff=False,
            fusion=True,
            layout=True,
            sparse_mode="none",
            holds_all_grads=True,
            # Inference kernels are tuned but the training ops MNN bolts on
            # are not; net effect barely beats interpreted frameworks.
            kernel_quality={
                "cpu": {"gemm": 0.33, "depthwise": 0.019, "default": 0.10},
            },
            base_memory_mb={"cpu": 45.0},
            supported_kinds=frozenset({"cpu"}),
            supported_families=frozenset({"cnn"}),
        ),
        FrameworkProfile(
            key="tflite_micro",
            name="TF-Lite Micro (projected)",
            # Inference-only; the paper reports projected training latency.
            interpreted=True,
            runtime_autodiff=True,
            sparse_mode="none",
            holds_all_grads=True,
            kernel_quality={"mcu": {"default": 0.075}},
            base_memory_mb={"mcu": 0.06},
            supported_kinds=frozenset({"mcu"}),
            supports_training=False,
            supported_families=frozenset({"cnn"}),
        ),
        FrameworkProfile(
            key="pockengine",
            name="PockEngine",
            interpreted=False,
            runtime_autodiff=False,
            fusion=True,
            reorder=True,
            winograd=True,
            layout=True,
            sparse_mode="pruned",
            holds_all_grads=False,
            kernel_quality={"cpu": 1.0, "gpu": 1.0, "dsp": 1.0,
                            "mcu": 1.0},
            base_memory_mb={"cpu": 18.0, "gpu": 480.0, "dsp": 60.0,
                            "mcu": 0.02},
            supported_kinds=frozenset({"cpu", "gpu", "dsp", "mcu"}),
        ),
    ]
}


def get_framework(key: str) -> FrameworkProfile:
    from ..errors import DeviceError

    try:
        return FRAMEWORKS[key]
    except KeyError:
        raise DeviceError(
            f"unknown framework {key!r}; available: {sorted(FRAMEWORKS)}"
        ) from None


#: Table 1 feature matrix (paper page 3), reproduced from the profiles.
TABLE1_COLUMNS = (
    "Support Training",
    "Support Sparse-BP",
    "Run without Host Language",
    "Kernel Optimized for Edge",
    "Compile-Time AutoDiff",
    "Graph Optimizations",
)


def feature_row(profile: FrameworkProfile) -> dict[str, str]:
    """Render one framework's Table-1 row from its profile."""
    flat = []
    for quality in profile.kernel_quality.values():
        if isinstance(quality, dict):
            flat.extend(quality.values())
        else:
            flat.append(quality)
    tuned = max(flat, default=0.0) >= 0.6
    return {
        "Support Training": "yes" if profile.supports_training else "no",
        "Support Sparse-BP": "yes" if profile.sparse_mode == "pruned" else "no",
        "Run without Host Language": "no" if profile.interpreted else "yes",
        "Kernel Optimized for Edge": "yes" if tuned else "no",
        "Compile-Time AutoDiff":
            "yes" if not profile.runtime_autodiff and profile.supports_training
            else "no",
        "Graph Optimizations":
            "yes" if (profile.fusion and profile.reorder) else
            ("partial" if profile.fusion else "no"),
    }
