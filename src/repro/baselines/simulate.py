"""Training simulation: (model, framework, device, scheme) -> latency/memory.

This is the harness behind Figure 9, Table 4, and Table 5: it compiles the
model's training step the way each framework would (capabilities off/on per
profile), schedules it accordingly, and prices the schedule on the target
device. Because the numbers derive from the actual transformed graphs,
every compiler pass shows up in the results exactly as it would on
hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices import DeviceSpec, estimate_latency
from ..ir import Graph
from ..memory import profile_memory
from ..runtime.compiler import CompileOptions, compile_training
from ..sparse import UpdateScheme, full_update
from ..train.optim import OptimizerSpec, SGD
from .framework import FrameworkProfile


@dataclass
class SimulationResult:
    """One cell of a speed/memory comparison."""

    framework: str
    device: str
    model: str
    scheme: str
    latency_ms: float
    throughput_per_s: float       # items (images / sentences) per second
    memory_mb: float
    oom: bool
    num_kernels: int
    num_nodes: int

    @property
    def available(self) -> bool:
        return True


UNAVAILABLE = None


def simulate_training(
    forward: Graph,
    framework: FrameworkProfile,
    device: DeviceSpec,
    scheme: UpdateScheme | None = None,
    optimizer: OptimizerSpec | None = None,
    model_family: str = "cnn",
    items_per_batch: int | None = None,
) -> SimulationResult | None:
    """Simulate one training iteration; None if the framework can't run it.

    Args:
        forward: forward graph (typically built under ``lazy_init`` for
            full-size models).
        framework: behaviour profile (see :mod:`.framework`).
        device: target platform.
        scheme: requested sparse scheme; frameworks without real sparse
            support fall back to masked (compute-everything) or full.
        optimizer: optimizer spec (memory includes its state).
        model_family: 'cnn' or 'transformer' (availability filtering).
        items_per_batch: items per iteration for throughput (defaults to
            the first input's leading dimension).
    """
    if not framework.runs_on(device.kind):
        return UNAVAILABLE
    if framework.supported_families is not None \
            and model_family not in framework.supported_families:
        return UNAVAILABLE

    optimizer = optimizer or SGD(lr=0.01)
    requested = scheme or full_update(forward)
    if framework.sparse_mode == "pruned":
        effective, masked = requested, False
    elif framework.sparse_mode == "masked":
        effective, masked = requested, True
    else:  # no sparse support at all: trains everything
        effective, masked = full_update(forward), False

    options = CompileOptions(
        constant_folding=framework.fusion,
        cse=framework.fusion,
        rewrite=framework.fusion,
        fusion=framework.fusion,
        # merging frozen parallel linears requires a compile-time view of
        # the update scheme, which only PockEngine's workflow has
        parallel_fusion=framework.sparse_mode == "pruned",
        winograd=framework.winograd,
        layout=framework.layout,
        reorder=framework.reorder,
        applies_last=framework.holds_all_grads,
        masked_sparse=masked,
        materialize_state=False,
        device=device,
    )
    program = compile_training(
        forward, optimizer=optimizer, scheme=effective, options=options)

    latency = estimate_latency(
        program.graph,
        program.schedule,
        device,
        interpreted=framework.interpreted,
        runtime_autodiff=framework.runtime_autodiff,
        kernel_quality=framework.quality_on(device.kind, model_family),
        layout_optimized=framework.layout,
    )
    memory = profile_memory(program.graph, program.schedule)
    total_mb = (memory.peak_total_bytes / (1 << 20)) \
        * framework.allocator_overhead + framework.base_memory_on(device.kind)

    if items_per_batch is None:
        items_per_batch = forward.spec(forward.inputs[0]).shape[0] \
            if forward.inputs else 1
    latency_s = latency.total_us / 1e6
    return SimulationResult(
        framework=framework.key,
        device=device.key,
        model=forward.name,
        scheme=effective.name,
        latency_ms=latency.total_ms,
        throughput_per_s=items_per_batch / latency_s if latency_s else 0.0,
        memory_mb=total_mb,
        oom=total_mb > device.ram_mb,
        num_kernels=latency.num_kernels,
        num_nodes=len(program.graph.nodes),
    )


def simulate_inference_projection(
    forward: Graph,
    framework: FrameworkProfile,
    device: DeviceSpec,
    optimizer: OptimizerSpec | None = None,
) -> SimulationResult | None:
    """Projected training latency for inference-only frameworks.

    TF-Lite-Micro cannot train; the paper reports a projection — we model
    it as a full-update training graph run with that framework's kernels
    and interpreter overheads.
    """
    profile = FrameworkProfile(
        key=framework.key,
        name=framework.name,
        interpreted=framework.interpreted,
        runtime_autodiff=framework.runtime_autodiff,
        sparse_mode="none",
        holds_all_grads=True,
        kernel_quality=framework.kernel_quality,
        base_memory_mb=framework.base_memory_mb,
        supported_kinds=framework.supported_kinds,
        supports_training=True,
        supported_families=None,
    )
    return simulate_training(forward, profile, device, optimizer=optimizer)
