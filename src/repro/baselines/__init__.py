"""Baseline framework models and the training simulator."""

from .framework import (FRAMEWORKS, TABLE1_COLUMNS, FrameworkProfile,
                        feature_row, get_framework)
from .simulate import (SimulationResult, simulate_inference_projection,
                       simulate_training)

__all__ = [
    "FRAMEWORKS",
    "FrameworkProfile",
    "SimulationResult",
    "TABLE1_COLUMNS",
    "feature_row",
    "get_framework",
    "simulate_inference_projection",
    "simulate_training",
]
