"""The paper's sparse-backpropagation schemes, per model (§4.1).

Each helper reads the ``block`` / ``role_in_block`` metadata the model
builders attach, selects the paper's tensors, and returns an
:class:`~repro.sparse.UpdateScheme`. Block counts scale down automatically
for micro variants (e.g. "last 7 of 19" becomes "last ceil(7/19 * n)").
"""

from __future__ import annotations

import math

from ..errors import SchemeError
from ..ir import Graph
from ..sparse import UpdateScheme

#: weight roles the paper selects per family
_CNN_WEIGHT_ROLES = {"first_pw"}
_TRANSFORMER_WEIGHT_ROLES = {"attention", "ffn_first"}


def _blocks(graph: Graph) -> list[int]:
    meta = graph.metadata.get("params", {})
    blocks = sorted({m["block"] for m in meta.values() if "block" in m})
    if not blocks:
        raise SchemeError(f"graph {graph.name!r} has no block metadata")
    return blocks


def _scaled(k: int, paper_total: int, actual_total: int) -> int:
    """Scale "last k of paper_total" to an actual block count."""
    if actual_total >= paper_total:
        return k
    return max(1, math.ceil(k * actual_total / paper_total))


def _build(graph: Graph, name: str, bias_blocks: set[int],
           weight_blocks: set[int], weight_roles: set[str],
           ratios: dict[int, float] | None = None) -> UpdateScheme:
    """Assemble a scheme from block selections.

    Args:
        bias_blocks: blocks whose bias/norm tensors update.
        weight_blocks: blocks whose selected-role weights update.
        weight_roles: which ``role_in_block`` tags count as selected.
        ratios: optional per-block channel ratio for the selected weights.
    """
    meta = graph.metadata.get("params", {})
    ratios = ratios or {}
    updates: dict[str, float] = {}
    for param in sorted(graph.trainable):
        m = meta.get(param, {})
        block = m.get("block")
        role = m.get("role", "weight")
        if m.get("classifier"):
            updates[param] = 1.0
            continue
        if block is None:
            continue
        if role in ("bias", "norm_scale", "norm_shift"):
            if block in bias_blocks:
                updates[param] = 1.0
        elif role in ("weight",):
            if block in weight_blocks \
                    and m.get("role_in_block") in weight_roles:
                updates[param] = float(ratios.get(block, 1.0))
    if not updates:
        raise SchemeError(f"scheme {name!r} selected nothing on {graph.name}")
    return UpdateScheme(name, updates)


def mcunet_scheme(graph: Graph) -> UpdateScheme:
    """Biases of the last 7 blocks; first-conv weights of the 4 blocks below
    the last 2, with channel ratios {100%, 100%, 50%, 100%} (§4.1)."""
    blocks = _blocks(graph)
    n = len(blocks)
    k_bias = _scaled(7, 17, n)
    k_w = min(_scaled(4, 17, n), n)
    bias_blocks = set(blocks[-k_bias:])
    weight_list = blocks[-(k_w + 2):-2] if n > k_w + 2 else blocks[-k_w:]
    pattern = (1.0, 1.0, 0.5, 1.0)
    ratios = {b: pattern[i % 4] for i, b in enumerate(weight_list)}
    return _build(graph, "mcunet_sparse", bias_blocks, set(weight_list),
                  _CNN_WEIGHT_ROLES, ratios)


def mobilenetv2_scheme(graph: Graph) -> UpdateScheme:
    """Biases + first 1x1 conv weights of the last 7 blocks (of 17+2)."""
    blocks = _blocks(graph)
    k = _scaled(7, 17, len(blocks))
    chosen = set(blocks[-k:])
    return _build(graph, "mbv2_sparse", chosen, chosen, _CNN_WEIGHT_ROLES)


def resnet50_scheme(graph: Graph) -> UpdateScheme:
    """Biases + first 1x1 conv weights of the last 8 blocks (of 16)."""
    blocks = _blocks(graph)
    k = _scaled(8, 16, len(blocks))
    chosen = set(blocks[-k:])
    return _build(graph, "resnet_sparse", chosen, chosen, _CNN_WEIGHT_ROLES)


def bert_scheme(graph: Graph) -> UpdateScheme:
    """Biases of the last 6 blocks (of 12); attention + FFN-first weights of
    the last 4 blocks."""
    blocks = _blocks(graph)
    n = len(blocks)
    bias_blocks = set(blocks[-_scaled(6, 12, n):])
    weight_blocks = set(blocks[-_scaled(4, 12, n):])
    return _build(graph, "bert_sparse", bias_blocks, weight_blocks,
                  _TRANSFORMER_WEIGHT_ROLES)


def distilbert_scheme(graph: Graph) -> UpdateScheme:
    """Biases of the last 3 blocks (of 6); weights of the last 2."""
    blocks = _blocks(graph)
    n = len(blocks)
    bias_blocks = set(blocks[-_scaled(3, 6, n):])
    weight_blocks = set(blocks[-_scaled(2, 6, n):])
    return _build(graph, "distilbert_sparse", bias_blocks, weight_blocks,
                  _TRANSFORMER_WEIGHT_ROLES)


def llama_scheme(graph: Graph) -> UpdateScheme:
    """Norm scales + attention + FFN-first weights of the last 5 blocks
    (of 32)."""
    blocks = _blocks(graph)
    k = _scaled(5, 32, len(blocks))
    chosen = set(blocks[-k:])
    return _build(graph, "llama_sparse", chosen, chosen,
                  _TRANSFORMER_WEIGHT_ROLES)


def lora_like_scheme(graph: Graph, rank_ratio: float = 0.02) -> UpdateScheme:
    """LoRA-cost stand-in for Table 5's PyTorch-LoRA row.

    LoRA adds rank-r adapters to attention projections in *every* block, so
    backward must reach the first block (no depth pruning) while the
    per-weight update cost is tiny. A channel-sparse update with a small
    ratio on every attention projection has the same cost structure; see
    DESIGN.md §2 for the substitution argument.
    """
    meta = graph.metadata.get("params", {})
    updates: dict[str, float] = {}
    for param in sorted(graph.trainable):
        m = meta.get(param, {})
        if m.get("role_in_block") == "attention" and m.get("role") == "weight":
            updates[param] = rank_ratio
        if m.get("classifier"):
            updates[param] = 1.0
    if not updates:
        raise SchemeError("model has no attention weights for LoRA scheme")
    return UpdateScheme("lora_like", updates)


#: model name prefix -> paper scheme builder
PAPER_SCHEMES = {
    "mcunet": mcunet_scheme,
    "mobilenetv2": mobilenetv2_scheme,
    "resnet": resnet50_scheme,
    "bert": bert_scheme,
    "distilbert": distilbert_scheme,
    "llama": llama_scheme,
}


def paper_scheme(graph: Graph) -> UpdateScheme:
    """Dispatch to the paper's scheme for this graph by model-name prefix."""
    for prefix, builder in PAPER_SCHEMES.items():
        if graph.name.startswith(prefix):
            return builder(graph)
    raise SchemeError(f"no paper scheme for model {graph.name!r}")
