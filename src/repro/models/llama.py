"""LlamaV2-style decoder-only language model (Touvron et al. 2023).

Pre-norm RMSNorm blocks, causal attention, gated (SwiGLU-style) FFN. The
7B configuration is built under lazy init in fp16 — graph-only, for the
Table 5 / Figure 9(b) latency and memory simulations; ``llama_micro``
actually trains on the toy instruction corpus.

Paper scheme (§4.1): update the biases of the last 5 blocks and the
weights of the attention module plus the first FFN linear for the last 5
blocks. (Llama linears are bias-free, so the trainable "biases" here are
the RMSNorm scales, which §5 of the paper freezes for Llama — we follow
the §4.1 wording and keep norm scales updatable via the scheme.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..frontend import Embedding, InputSpec, Linear, Module, RMSNorm, trace
from ..frontend.attention import MultiHeadAttention
from ..frontend.functional import Sym
from ..frontend.init import lazy_init
from ..ir import DType, Graph


@dataclass(frozen=True)
class LlamaConfig:
    name: str
    vocab_size: int
    dim: int
    num_heads: int
    ffn_hidden: int
    num_blocks: int
    max_len: int


CONFIGS = {
    "llama7b": LlamaConfig("llama7b", 32000, 4096, 32, 11008, 32, 512),
    "llama_micro": LlamaConfig("llama_micro", 96, 32, 4, 64, 4, 24),
}


class GatedFeedForward(Module):
    """SwiGLU-style FFN: down(silu(gate(x)) * up(x)); silu = x * sigmoid(x)."""

    def __init__(self, dim: int, hidden: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.gate = Linear(dim, hidden, bias=False, rng=rng)
        self.gate.meta["role_in_block"] = "ffn_first"
        self.up = Linear(dim, hidden, bias=False, rng=rng)
        self.up.meta["role_in_block"] = "ffn_up"
        self.down = Linear(hidden, dim, bias=False, rng=rng)
        self.down.meta["role_in_block"] = "ffn_second"

    def forward(self, x: Sym) -> Sym:
        gated = self.gate(x)
        silu = gated * gated.sigmoid()
        return self.down(silu * self.up(x))


class LlamaBlock(Module):
    def __init__(self, config: LlamaConfig,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.attn_norm = RMSNorm(config.dim)
        self.attn = MultiHeadAttention(config.dim, config.num_heads,
                                       causal=True, max_len=config.max_len,
                                       rng=rng)
        self.attn.meta["role_in_block"] = "attention"
        self.ffn_norm = RMSNorm(config.dim)
        self.ffn = GatedFeedForward(config.dim, config.ffn_hidden, rng=rng)

    def forward(self, x: Sym) -> Sym:
        x = x + self.attn(self.attn_norm(x))
        return x + self.ffn(self.ffn_norm(x))


class Llama(Module):
    """Decoder LM: returns next-token logits [batch, seq, vocab]."""

    def __init__(self, config: LlamaConfig, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.config = config
        self.embed = Embedding(config.vocab_size, config.dim, rng=rng)
        self.block_names: list[str] = []
        for index in range(config.num_blocks):
            block = LlamaBlock(config, rng=rng)
            block.meta["block"] = index
            name = f"blocks_{index}"
            setattr(self, name, block)
            self.block_names.append(name)
        self.final_norm = RMSNorm(config.dim)
        self.lm_head = Linear(config.dim, config.vocab_size, bias=False,
                              rng=rng)
        self.lm_head.meta["classifier"] = True

    def forward(self, ids: Sym) -> Sym:
        h = self.embed(ids)
        for name in self.block_names:
            h = self._modules[name](h)
        return self.lm_head(self.final_norm(h))


def build_llama(variant: str = "llama_micro", batch: int = 1,
                seq_len: int | None = None, seed: int = 0,
                lazy: bool | None = None) -> Graph:
    """Trace a Llama variant; the 7B build uses fp16 placeholder weights."""
    config = CONFIGS[variant]
    seq_len = seq_len or config.max_len
    spec = [InputSpec("ids", (batch, seq_len), DType.INT64)]
    if lazy is None:
        lazy = "micro" not in variant
    if lazy:
        with lazy_init(dtype=np.float16):
            graph = trace(Llama(config, seed=seed), spec, name=config.name)
    else:
        graph = trace(Llama(config, seed=seed), spec, name=config.name)
    graph.metadata["family"] = "transformer"
    graph.metadata["num_blocks"] = config.num_blocks
    return graph
