"""ResNet-50 (He et al. 2016) with fused normalization.

Bottleneck blocks (1x1 reduce, 3x3, 1x1 expand); the paper's scheme updates
"the biases and the weights of the first 1x1 convolution for the last 8
blocks (out of 16)".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..frontend import (Activation, Conv2d, GlobalAvgPool, InputSpec, Linear,
                        MaxPool2d, Module, trace)
from ..frontend.init import lazy_init
from ..ir import Graph


@dataclass(frozen=True)
class ResNetConfig:
    name: str
    resolution: int
    num_classes: int
    stage_blocks: tuple[int, ...]       # blocks per stage
    stage_channels: tuple[int, ...]     # bottleneck width per stage
    stem_channels: int = 64
    expansion: int = 4

    @property
    def num_blocks(self) -> int:
        return sum(self.stage_blocks)


CONFIGS = {
    "resnet50": ResNetConfig("resnet50", 224, 1000, (3, 4, 6, 3),
                             (64, 128, 256, 512)),
    "resnet_micro": ResNetConfig("resnet_micro", 16, 10, (1, 2, 1), (8, 12, 16),
                                 stem_channels=8, expansion=2),
}


class Bottleneck(Module):
    def __init__(self, cin: int, width: int, stride: int, expansion: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        cout = width * expansion
        self.reduce = Conv2d(cin, width, 1, activation="relu", rng=rng)
        self.reduce.meta["role_in_block"] = "first_pw"
        self.conv3 = Conv2d(width, width, 3, stride=stride, padding=1,
                            activation="relu", rng=rng)
        self.conv3.meta["role_in_block"] = "spatial"
        self.expand = Conv2d(width, cout, 1, rng=rng)
        self.expand.meta["role_in_block"] = "second_pw"
        self.downsample = None
        if stride != 1 or cin != cout:
            self.downsample = Conv2d(cin, cout, 1, stride=stride, rng=rng)
            self.downsample.meta["role_in_block"] = "downsample"
        self.act = Activation("relu")

    def forward(self, x):
        identity = x if self.downsample is None else self.downsample(x)
        out = self.expand(self.conv3(self.reduce(x)))
        return self.act(out + identity)


class ResNet(Module):
    def __init__(self, config: ResNetConfig, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.config = config
        big_input = config.resolution > 64
        self.stem = Conv2d(3, config.stem_channels, 7 if big_input else 3,
                           stride=2 if big_input else 1,
                           padding=3 if big_input else 1,
                           activation="relu", rng=rng)
        self.pool0 = MaxPool2d(3, 2, padding=1) if big_input else None
        cin = config.stem_channels
        index = 0
        self.block_names: list[str] = []
        for stage, (n, width) in enumerate(
                zip(config.stage_blocks, config.stage_channels)):
            for i in range(n):
                stride = 2 if (i == 0 and stage > 0) else 1
                block = Bottleneck(cin, width, stride, config.expansion,
                                   rng=rng)
                block.meta["block"] = index
                name = f"blocks_{index}"
                setattr(self, name, block)
                self.block_names.append(name)
                cin = width * config.expansion
                index += 1
        self.pool = GlobalAvgPool()
        self.classifier = Linear(cin, config.num_classes, rng=rng)
        self.classifier.meta["classifier"] = True

    def forward(self, x):
        x = self.stem(x)
        if self.pool0 is not None:
            x = self.pool0(x)
        for name in self.block_names:
            x = self._modules[name](x)
        return self.classifier(self.pool(x))


def build_resnet(variant: str = "resnet_micro", batch: int = 8,
                 num_classes: int | None = None, seed: int = 0,
                 lazy: bool | None = None) -> Graph:
    """Trace a ResNet variant into a forward graph."""
    config = CONFIGS[variant]
    if num_classes is not None:
        config = ResNetConfig(config.name, config.resolution, num_classes,
                              config.stage_blocks, config.stage_channels,
                              config.stem_channels, config.expansion)
    if lazy is None:
        lazy = "micro" not in variant
    spec = [InputSpec("x", (batch, 3, config.resolution, config.resolution))]
    if lazy:
        with lazy_init():
            graph = trace(ResNet(config, seed=seed), spec, name=config.name)
    else:
        graph = trace(ResNet(config, seed=seed), spec, name=config.name)
    graph.metadata["family"] = "cnn"
    graph.metadata["num_blocks"] = config.num_blocks
    return graph
