"""MobileNetV2 (Sandler et al. 2018) with fused normalization.

Inverted-bottleneck blocks tagged with ``block``/``role_in_block`` metadata:
the paper's scheme updates "the biases and the weights of the first 1x1
convolution for the last 7 blocks (out of 19)" — ``first_pw`` is that conv.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..frontend import Conv2d, GlobalAvgPool, InputSpec, Linear, Module, trace
from ..frontend.init import lazy_init
from ..ir import Graph


@dataclass(frozen=True)
class MobileNetV2Config:
    name: str
    width_mult: float
    resolution: int
    num_classes: int
    #: (expansion t, out channels c, repeats n, stride s) per stage
    stages: tuple[tuple[int, int, int, int], ...]
    stem_channels: int = 32
    head_channels: int = 1280

    @property
    def num_blocks(self) -> int:
        return sum(n for _, _, n, _ in self.stages)


FULL_STAGES = (
    (1, 16, 1, 1), (6, 24, 2, 2), (6, 32, 3, 2), (6, 64, 4, 2),
    (6, 96, 3, 1), (6, 160, 3, 2), (6, 320, 1, 1),
)

CONFIGS = {
    "mobilenetv2": MobileNetV2Config(
        "mobilenetv2", 1.0, 224, 1000, FULL_STAGES),
    "mobilenetv2_035": MobileNetV2Config(
        "mobilenetv2_035", 0.35, 224, 1000, FULL_STAGES),
    # Executable scale for accuracy experiments: same block topology, tiny.
    "mobilenetv2_micro": MobileNetV2Config(
        "mobilenetv2_micro", 1.0, 16, 10,
        ((1, 8, 1, 1), (3, 12, 2, 1), (3, 16, 2, 2), (3, 24, 2, 1)),
        stem_channels=8, head_channels=32),
}


def _scale(channels: int, mult: float) -> int:
    return max(4, int(round(channels * mult / 4) * 4)) if mult != 1.0 \
        else channels


class InvertedBottleneck(Module):
    """MBConv: expand (1x1) -> depthwise (kxk) -> project (1x1)."""

    def __init__(self, cin: int, cout: int, stride: int, expansion: int,
                 kernel: int = 3,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        hidden = cin * expansion
        self.use_residual = stride == 1 and cin == cout
        self.expand = None
        if expansion != 1:
            self.expand = Conv2d(cin, hidden, 1, activation="relu6", rng=rng)
            self.expand.meta["role_in_block"] = "first_pw"
        self.depthwise = Conv2d(hidden, hidden, kernel, stride=stride,
                                padding=kernel // 2, groups=hidden,
                                activation="relu6", rng=rng)
        self.depthwise.meta["role_in_block"] = "depthwise"
        self.project = Conv2d(hidden, cout, 1, rng=rng)
        self.project.meta["role_in_block"] = "second_pw"
        if expansion == 1:
            # No expand conv: the depthwise is first; tag the project too.
            self.depthwise.meta["role_in_block"] = "first_pw"

    def forward(self, x):
        out = x
        if self.expand is not None:
            out = self.expand(out)
        out = self.depthwise(out)
        out = self.project(out)
        if self.use_residual:
            out = out + x
        return out


class MobileNetV2(Module):
    def __init__(self, config: MobileNetV2Config, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.config = config
        mult = config.width_mult
        stem = _scale(config.stem_channels, mult)
        self.stem = Conv2d(3, stem, 3, stride=2 if config.resolution > 32
                           else 1, padding=1, activation="relu6", rng=rng)
        cin = stem
        index = 0
        self.block_names: list[str] = []
        for t, c, n, s in config.stages:
            cout = _scale(c, mult)
            for i in range(n):
                block = InvertedBottleneck(
                    cin, cout, s if i == 0 else 1, t, rng=rng)
                block.meta["block"] = index
                name = f"blocks_{index}"
                setattr(self, name, block)
                self.block_names.append(name)
                cin = cout
                index += 1
        head = _scale(config.head_channels, mult)
        self.head_conv = Conv2d(cin, head, 1, activation="relu6", rng=rng)
        self.pool = GlobalAvgPool()
        self.classifier = Linear(head, config.num_classes, rng=rng)
        self.classifier.meta["classifier"] = True

    def forward(self, x):
        x = self.stem(x)
        for name in self.block_names:
            x = self._modules[name](x)
        x = self.head_conv(x)
        return self.classifier(self.pool(x))


def build_mobilenetv2(variant: str = "mobilenetv2_micro", batch: int = 8,
                      num_classes: int | None = None, seed: int = 0,
                      lazy: bool | None = None) -> Graph:
    """Trace a MobileNetV2 variant into a forward graph.

    Full-size variants default to lazy (placeholder) weights — they exist
    for cost/memory simulation, not execution.
    """
    config = CONFIGS[variant]
    if num_classes is not None:
        config = MobileNetV2Config(
            config.name, config.width_mult, config.resolution, num_classes,
            config.stages, config.stem_channels, config.head_channels)
    if lazy is None:
        lazy = "micro" not in variant
    spec = [InputSpec("x", (batch, 3, config.resolution, config.resolution))]
    if lazy:
        with lazy_init():
            model = MobileNetV2(config, seed=seed)
            graph = trace(model, spec, name=config.name)
    else:
        model = MobileNetV2(config, seed=seed)
        graph = trace(model, spec, name=config.name)
    graph.metadata["family"] = "cnn"
    graph.metadata["num_blocks"] = config.num_blocks
    return graph
