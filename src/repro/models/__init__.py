"""Model zoo: the paper's six evaluation models plus micro variants."""

from .bert import BertClassifier, BertConfig, build_bert
from .llama import Llama, LlamaConfig, build_llama
from .mcunet import MCUNet, MCUNetConfig, build_mcunet
from .mobilenetv2 import (InvertedBottleneck, MobileNetV2, MobileNetV2Config,
                          build_mobilenetv2)
from .registry import REGISTRY, ModelEntry, build_model
from .resnet import Bottleneck, ResNet, ResNetConfig, build_resnet
from .schemes import (PAPER_SCHEMES, bert_scheme, distilbert_scheme,
                      llama_scheme, lora_like_scheme, mcunet_scheme,
                      mobilenetv2_scheme, paper_scheme, resnet50_scheme)

__all__ = [
    "BertClassifier",
    "BertConfig",
    "Bottleneck",
    "InvertedBottleneck",
    "Llama",
    "LlamaConfig",
    "MCUNet",
    "MCUNetConfig",
    "MobileNetV2",
    "MobileNetV2Config",
    "ModelEntry",
    "PAPER_SCHEMES",
    "REGISTRY",
    "ResNet",
    "ResNetConfig",
    "bert_scheme",
    "build_bert",
    "build_llama",
    "build_mcunet",
    "build_mobilenetv2",
    "build_model",
    "build_resnet",
    "distilbert_scheme",
    "llama_scheme",
    "lora_like_scheme",
    "mcunet_scheme",
    "mobilenetv2_scheme",
    "paper_scheme",
    "resnet50_scheme",
]
