"""Model registry: one place mapping names to builders and metadata."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import ReproError
from ..ir import Graph
from .bert import build_bert
from .llama import build_llama
from .mcunet import build_mcunet
from .mobilenetv2 import build_mobilenetv2
from .resnet import build_resnet


@dataclass(frozen=True)
class ModelEntry:
    key: str
    display: str
    family: str                 # 'cnn' | 'transformer'
    build: Callable[..., Graph]
    micro: bool                 # executable at test scale?


REGISTRY: dict[str, ModelEntry] = {
    e.key: e
    for e in [
        ModelEntry("mcunet", "MCUNet-5FPS", "cnn",
                   lambda **kw: build_mcunet("mcunet", **kw), False),
        ModelEntry("mcunet_micro", "MCUNet (micro)", "cnn",
                   lambda **kw: build_mcunet("mcunet_micro", **kw), True),
        ModelEntry("mobilenetv2", "MobileNetV2", "cnn",
                   lambda **kw: build_mobilenetv2("mobilenetv2", **kw), False),
        ModelEntry("mobilenetv2_035", "MobileNetV2-0.35", "cnn",
                   lambda **kw: build_mobilenetv2("mobilenetv2_035", **kw),
                   False),
        ModelEntry("mobilenetv2_micro", "MobileNetV2 (micro)", "cnn",
                   lambda **kw: build_mobilenetv2("mobilenetv2_micro", **kw),
                   True),
        ModelEntry("resnet50", "ResNet-50", "cnn",
                   lambda **kw: build_resnet("resnet50", **kw), False),
        ModelEntry("resnet_micro", "ResNet (micro)", "cnn",
                   lambda **kw: build_resnet("resnet_micro", **kw), True),
        ModelEntry("bert", "BERT-base", "transformer",
                   lambda **kw: build_bert("bert", **kw), False),
        ModelEntry("distilbert", "DistilBERT", "transformer",
                   lambda **kw: build_bert("distilbert", **kw), False),
        ModelEntry("bert_micro", "BERT (micro)", "transformer",
                   lambda **kw: build_bert("bert_micro", **kw), True),
        ModelEntry("distilbert_micro", "DistilBERT (micro)", "transformer",
                   lambda **kw: build_bert("distilbert_micro", **kw), True),
        ModelEntry("llama7b", "LlamaV2-7B", "transformer",
                   lambda **kw: build_llama("llama7b", **kw), False),
        ModelEntry("llama_micro", "Llama (micro)", "transformer",
                   lambda **kw: build_llama("llama_micro", **kw), True),
    ]
}


def build_model(key: str, **kwargs) -> Graph:
    try:
        entry = REGISTRY[key]
    except KeyError:
        raise ReproError(
            f"unknown model {key!r}; available: {sorted(REGISTRY)}"
        ) from None
    return entry.build(**kwargs)
