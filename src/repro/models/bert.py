"""BERT / DistilBERT-style encoders for GLUE-like classification.

Post-norm transformer encoder with learned position embeddings and a
CLS-token classification head. The paper's scheme updates "the biases of
the last 6 blocks (out of 12) and the weights of the attention module and
the first linear in FFN for the last 4 blocks" (BERT-base); DistilBERT
halves everything.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..frontend import (Embedding, InputSpec, LayerNorm, Linear, Module,
                        TransformerBlock, trace)
from ..frontend.functional import Sym
from ..frontend.init import lazy_init
from ..frontend.module import Parameter
from ..frontend import init as finit
from ..ir import DType, Graph


@dataclass(frozen=True)
class BertConfig:
    name: str
    vocab_size: int
    dim: int
    num_heads: int
    ffn_hidden: int
    num_blocks: int
    max_len: int
    num_classes: int


CONFIGS = {
    "bert": BertConfig("bert", 30522, 768, 12, 3072, 12, 128, 2),
    "distilbert": BertConfig("distilbert", 30522, 768, 12, 3072, 6, 128, 2),
    "bert_micro": BertConfig("bert_micro", 256, 32, 2, 64, 4, 16, 4),
    "distilbert_micro": BertConfig(
        "distilbert_micro", 256, 32, 2, 64, 2, 16, 4),
}


class BertClassifier(Module):
    def __init__(self, config: BertConfig, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.config = config
        self.token_emb = Embedding(config.vocab_size, config.dim, rng=rng)
        self.pos_emb = Parameter(
            finit.normal(rng, (1, config.max_len, config.dim)),
            role="embedding")
        self.emb_norm = LayerNorm(config.dim)
        self.block_names: list[str] = []
        for index in range(config.num_blocks):
            block = TransformerBlock(
                config.dim, config.num_heads, config.ffn_hidden,
                causal=False, pre_norm=False, norm="layernorm",
                activation="gelu", max_len=config.max_len, rng=rng)
            block.meta["block"] = index
            name = f"blocks_{index}"
            setattr(self, name, block)
            self.block_names.append(name)
        self.classifier = Linear(config.dim, config.num_classes, rng=rng)
        self.classifier.meta["classifier"] = True

    def forward(self, ids: Sym) -> Sym:
        batch, seq = ids.shape
        h = self.token_emb(ids)
        pos = Sym(ids.b, self.pos_emb.value_name).slice(1, 0, seq)
        h = self.emb_norm(h + pos)
        for name in self.block_names:
            h = self._modules[name](h)
        cls = h.slice(1, 0, 1).reshape((batch, self.config.dim))
        return self.classifier(cls)


def build_bert(variant: str = "bert_micro", batch: int = 8,
               seq_len: int | None = None, num_classes: int | None = None,
               seed: int = 0, lazy: bool | None = None) -> Graph:
    """Trace a BERT-family classifier into a forward graph."""
    config = CONFIGS[variant]
    if num_classes is not None:
        config = BertConfig(config.name, config.vocab_size, config.dim,
                            config.num_heads, config.ffn_hidden,
                            config.num_blocks, config.max_len, num_classes)
    seq_len = seq_len or config.max_len
    spec = [InputSpec("ids", (batch, seq_len), DType.INT64)]
    if lazy is None:
        lazy = "micro" not in variant
    if lazy:
        with lazy_init():
            graph = trace(BertClassifier(config, seed=seed), spec,
                          name=config.name)
    else:
        graph = trace(BertClassifier(config, seed=seed), spec,
                      name=config.name)
    graph.metadata["family"] = "transformer"
    graph.metadata["num_blocks"] = config.num_blocks
    return graph
