"""MCUNet-5FPS-like model (Lin et al. 2020): a tiny MBConv network.

The exact 5FPS architecture is NAS-derived; we reproduce its published
shape — 17 MBConv blocks with mixed kernel sizes {3,5,7} and expansions
{1,3,6} at 128x128 input, ~0.6M parameters — which is what the schemes and
cost models depend on (paper Figure 5 shows the per-block pattern).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..frontend import Conv2d, GlobalAvgPool, InputSpec, Linear, Module, trace
from ..frontend.init import lazy_init
from ..ir import Graph
from .mobilenetv2 import InvertedBottleneck


@dataclass(frozen=True)
class MCUNetConfig:
    name: str
    resolution: int
    num_classes: int
    #: (expansion, out channels, kernel, stride) per block
    blocks: tuple[tuple[int, int, int, int], ...]
    stem_channels: int = 16


# Block pattern mirrors paper Figure 5(a): MB1 3x3, MB3 5x5, MB3 3x3, ...
FULL_BLOCKS = (
    (1, 8, 3, 1), (3, 16, 5, 2), (3, 16, 3, 1), (3, 16, 7, 1),
    (3, 24, 3, 2), (3, 24, 5, 1), (3, 24, 5, 1), (6, 40, 7, 2),
    (3, 40, 5, 1), (3, 40, 5, 1), (6, 48, 5, 1), (3, 48, 5, 1),
    (3, 96, 5, 2), (3, 96, 7, 1), (6, 96, 7, 1), (3, 160, 5, 2),
    (6, 160, 7, 1),
)

CONFIGS = {
    "mcunet": MCUNetConfig("mcunet", 128, 1000, FULL_BLOCKS),
    "mcunet_vww": MCUNetConfig("mcunet_vww", 128, 2, FULL_BLOCKS),
    "mcunet_micro": MCUNetConfig(
        "mcunet_micro", 16, 10,
        ((1, 8, 3, 1), (3, 8, 3, 1), (3, 12, 3, 2), (3, 16, 3, 1),
         (3, 16, 3, 1)),
        stem_channels=8),
}


class MCUNet(Module):
    def __init__(self, config: MCUNetConfig, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.config = config
        self.stem = Conv2d(3, config.stem_channels, 3,
                           stride=2 if config.resolution > 32 else 1,
                           padding=1, activation="relu6", rng=rng)
        cin = config.stem_channels
        self.block_names: list[str] = []
        for index, (t, c, k, s) in enumerate(config.blocks):
            block = InvertedBottleneck(cin, c, s, t, kernel=k, rng=rng)
            block.meta["block"] = index
            name = f"blocks_{index}"
            setattr(self, name, block)
            self.block_names.append(name)
            cin = c
        self.pool = GlobalAvgPool()
        self.classifier = Linear(cin, config.num_classes, rng=rng)
        self.classifier.meta["classifier"] = True

    def forward(self, x):
        x = self.stem(x)
        for name in self.block_names:
            x = self._modules[name](x)
        return self.classifier(self.pool(x))


def build_mcunet(variant: str = "mcunet_micro", batch: int = 8,
                 num_classes: int | None = None, seed: int = 0,
                 lazy: bool | None = None) -> Graph:
    """Trace an MCUNet variant into a forward graph."""
    config = CONFIGS[variant]
    if num_classes is not None:
        config = MCUNetConfig(config.name, config.resolution, num_classes,
                              config.blocks, config.stem_channels)
    if lazy is None:
        lazy = "micro" not in variant
    spec = [InputSpec("x", (batch, 3, config.resolution, config.resolution))]
    if lazy:
        with lazy_init():
            graph = trace(MCUNet(config, seed=seed), spec, name=config.name)
    else:
        graph = trace(MCUNet(config, seed=seed), spec, name=config.name)
    graph.metadata["family"] = "cnn"
    graph.metadata["num_blocks"] = len(config.blocks)
    return graph
