"""Model frontends: the module system, tracer, and alternative importers."""

from .attention import FeedForward, MultiHeadAttention, TransformerBlock
from .functional import Sym
from .graphdef import export_graph_def, from_layer_config, import_graph_def
from . import keras_like
from .layers import (Activation, AvgPool2d, Conv2d, Embedding, GlobalAvgPool,
                     LayerNorm, Linear, MaxPool2d, RMSNorm)
from .module import Module, Parameter, Sequential
from .tracer import InputSpec, trace

__all__ = [
    "Activation",
    "AvgPool2d",
    "Conv2d",
    "Embedding",
    "FeedForward",
    "GlobalAvgPool",
    "InputSpec",
    "keras_like",
    "LayerNorm",
    "Linear",
    "MaxPool2d",
    "Module",
    "MultiHeadAttention",
    "Parameter",
    "RMSNorm",
    "Sequential",
    "Sym",
    "export_graph_def",
    "from_layer_config",
    "import_graph_def",
    "trace",
]
