"""Weight initialization helpers (all take an explicit RNG for determinism).

Lazy mode: full-size paper models (ResNet-50, BERT-base, LlamaV2-7B) are
built as *graphs* for memory/latency simulation but never executed — their
weights would cost tens of gigabytes. Inside :func:`lazy_init`, every
initializer returns a zero-stride broadcast view, so a 7B-parameter model
costs a few bytes of real memory while every ``TensorSpec`` still reports
true shapes and sizes. Programs that will actually run copy their state,
which materialises real (writable) buffers.
"""

from __future__ import annotations

import contextlib
import threading

import numpy as np

_LAZY = threading.local()


@contextlib.contextmanager
def lazy_init(dtype=np.float32):
    """Context manager: initializers become zero-stride placeholder views."""
    previous = getattr(_LAZY, "dtype", None)
    _LAZY.dtype = np.dtype(dtype)
    try:
        yield
    finally:
        _LAZY.dtype = previous


def lazy_dtype():
    """The active lazy dtype, or None when initializers are materialised."""
    return getattr(_LAZY, "dtype", None)


def _placeholder(shape: tuple[int, ...], fill: float) -> np.ndarray:
    dtype = lazy_dtype()
    return np.broadcast_to(np.asarray(fill, dtype=dtype), shape)


def kaiming_uniform(rng: np.random.Generator, shape: tuple[int, ...],
                    fan_in: int | None = None) -> np.ndarray:
    """He-uniform init, the default for conv/linear weights feeding ReLU."""
    if lazy_dtype() is not None:
        return _placeholder(shape, 0.0)
    if fan_in is None:
        fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else shape[0]
    bound = float(np.sqrt(6.0 / max(fan_in, 1)))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(rng: np.random.Generator,
                   shape: tuple[int, ...]) -> np.ndarray:
    """Glorot-uniform init, used for attention/projection weights."""
    if lazy_dtype() is not None:
        return _placeholder(shape, 0.0)
    fan_in = int(np.prod(shape[:-1])) if len(shape) > 1 else shape[0]
    fan_out = shape[-1]
    bound = float(np.sqrt(6.0 / max(fan_in + fan_out, 1)))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def normal(rng: np.random.Generator, shape: tuple[int, ...],
           std: float = 0.02) -> np.ndarray:
    """Truncated-style normal init used by BERT-family embeddings."""
    if lazy_dtype() is not None:
        return _placeholder(shape, 0.0)
    return (rng.standard_normal(shape) * std).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    if lazy_dtype() is not None:
        return _placeholder(shape, 0.0)
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    if lazy_dtype() is not None:
        return _placeholder(shape, 1.0)
    return np.ones(shape, dtype=np.float32)
