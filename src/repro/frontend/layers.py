"""Standard neural-network layers for the module frontend.

Normalization note: following the paper's setup ("all normalization layers
are fused into the linear operations"), vision models here use convolutions
with bias — the BN scale/shift having been folded — so there is no separate
BatchNorm module. Transformers use explicit LayerNorm / RMSNorm.
"""

from __future__ import annotations

import numpy as np

from . import init
from .functional import Sym
from .module import Module, Parameter

_DEFAULT_RNG = np.random.default_rng(0)


def _rng(rng: np.random.Generator | None) -> np.random.Generator:
    return rng if rng is not None else _DEFAULT_RNG


class Linear(Module):
    """Affine layer ``y = x @ W + b`` with optional activation.

    The weight is stored ``[in_features, out_features]`` so the channel-
    sparse update's input-feature slice is axis 0.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 activation: str | None = None,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = _rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.activation = activation
        self.weight = Parameter(
            init.kaiming_uniform(rng, (in_features, out_features),
                                 fan_in=in_features))
        self.bias = Parameter(init.zeros((out_features,)), role="bias") \
            if bias else None

    def forward(self, x: Sym) -> Sym:
        out = x.b.matmul(x.name, self.weight.value_name)
        if self.bias is not None:
            axis = len(x.b.shape(out)) - 1
            out = x.b.bias_add(out, self.bias.value_name, axis=axis)
        sym = Sym(x.b, out)
        if self.activation:
            sym = getattr(sym, self.activation)()
        return sym


class Conv2d(Module):
    """2-D convolution (NCHW / OIHW) with optional bias and activation."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, groups: int = 1,
                 bias: bool = True, activation: str | None = None,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = _rng(rng)
        self.stride = stride
        self.padding = padding
        self.groups = groups
        self.activation = activation
        shape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        self.weight = Parameter(init.kaiming_uniform(rng, shape, fan_in=fan_in))
        self.bias = Parameter(init.zeros((out_channels,)), role="bias") \
            if bias else None

    def forward(self, x: Sym) -> Sym:
        out = x.b.conv2d(x.name, self.weight.value_name,
                         stride=self.stride, padding=self.padding,
                         groups=self.groups)
        if self.bias is not None:
            out = x.b.bias_add(out, self.bias.value_name, axis=1)
        sym = Sym(x.b, out)
        if self.activation:
            sym = getattr(sym, self.activation)()
        return sym


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(init.ones((dim,)), role="norm_scale")
        self.beta = Parameter(init.zeros((dim,)), role="norm_shift")

    def forward(self, x: Sym) -> Sym:
        out = x.b.emit(
            "layernorm",
            [x.name, self.gamma.value_name, self.beta.value_name],
            {"eps": self.eps},
        )
        return Sym(x.b, out)


class RMSNorm(Module):
    """RMS normalization (the Llama-family variant)."""

    def __init__(self, dim: int, eps: float = 1e-6) -> None:
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(init.ones((dim,)), role="norm_scale")

    def forward(self, x: Sym) -> Sym:
        out = x.b.emit("rmsnorm", [x.name, self.gamma.value_name],
                       {"eps": self.eps})
        return Sym(x.b, out)


class Embedding(Module):
    """Token embedding lookup."""

    def __init__(self, vocab_size: int, dim: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.vocab_size = vocab_size
        self.weight = Parameter(
            init.normal(_rng(rng), (vocab_size, dim)), role="embedding")

    def forward(self, ids: Sym) -> Sym:
        out = ids.b.emit("embedding", [self.weight.value_name, ids.name])
        return Sym(ids.b, out)


class GlobalAvgPool(Module):
    """Spatial mean over H and W: [N,C,H,W] -> [N,C]."""

    def forward(self, x: Sym) -> Sym:
        return Sym(x.b, x.b.emit("global_avg_pool", [x.name]))


class MaxPool2d(Module):
    def __init__(self, kernel: int, stride: int | None = None,
                 padding: int = 0) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride if stride is not None else kernel
        self.padding = padding

    def forward(self, x: Sym) -> Sym:
        out = x.b.emit("maxpool2d", [x.name], {
            "kernel": self.kernel, "stride": self.stride,
            "padding": self.padding,
        })
        return Sym(x.b, out)


class AvgPool2d(Module):
    def __init__(self, kernel: int, stride: int | None = None,
                 padding: int = 0) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride if stride is not None else kernel
        self.padding = padding

    def forward(self, x: Sym) -> Sym:
        out = x.b.emit("avgpool2d", [x.name], {
            "kernel": self.kernel, "stride": self.stride,
            "padding": self.padding,
        })
        return Sym(x.b, out)


class Activation(Module):
    """Standalone activation module (relu, relu6, gelu, sigmoid, tanh)."""

    def __init__(self, kind: str) -> None:
        super().__init__()
        self.kind = kind

    def forward(self, x: Sym) -> Sym:
        return getattr(x, self.kind)()
