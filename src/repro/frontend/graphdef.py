"""Alternative frontends: declarative graph-defs and ONNX-like documents.

The paper's engine accepts PyTorch / TensorFlow / Jax / ONNX models; we
mirror that frontend diversity with two additional entry points besides the
module tracer:

* :func:`from_layer_config` — a declarative, JSON-friendly sequential model
  description (the shape a TensorFlow/Keras exporter would produce),
* :func:`import_graph_def` / :func:`export_graph_def` — the ONNX-like
  serialized graph documents from :mod:`repro.ir.serialize`.

All three converge on the same IR, which is the point.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..errors import CompileError
from ..ir import Graph, graph_from_dict, graph_to_dict
from .layers import (Activation, AvgPool2d, Conv2d, GlobalAvgPool, Linear,
                     MaxPool2d)
from .module import Module, Sequential

_LAYER_BUILDERS = {
    "linear": lambda cfg, rng: Linear(
        cfg["in"], cfg["out"], bias=cfg.get("bias", True),
        activation=cfg.get("activation"), rng=rng),
    "conv2d": lambda cfg, rng: Conv2d(
        cfg["in"], cfg["out"], cfg["kernel"], stride=cfg.get("stride", 1),
        padding=cfg.get("padding", 0), groups=cfg.get("groups", 1),
        bias=cfg.get("bias", True), activation=cfg.get("activation"),
        rng=rng),
    "maxpool2d": lambda cfg, rng: MaxPool2d(
        cfg["kernel"], cfg.get("stride"), cfg.get("padding", 0)),
    "avgpool2d": lambda cfg, rng: AvgPool2d(
        cfg["kernel"], cfg.get("stride"), cfg.get("padding", 0)),
    "global_avg_pool": lambda cfg, rng: GlobalAvgPool(),
    "activation": lambda cfg, rng: Activation(cfg["kind"]),
    "flatten": lambda cfg, rng: _Flatten(),
}


class _Flatten(Module):
    def forward(self, x):
        shape = x.shape
        return x.reshape((shape[0], -1))


def from_layer_config(layers: list[dict[str, Any]],
                      seed: int = 0) -> Sequential:
    """Build a sequential model from a declarative layer list.

    Example::

        from_layer_config([
            {"type": "conv2d", "in": 3, "out": 8, "kernel": 3,
             "padding": 1, "activation": "relu"},
            {"type": "global_avg_pool"},
            {"type": "linear", "in": 8, "out": 10},
        ])
    """
    rng = np.random.default_rng(seed)
    built = []
    for i, cfg in enumerate(layers):
        kind = cfg.get("type")
        if kind not in _LAYER_BUILDERS:
            raise CompileError(f"layer {i}: unknown type {kind!r}")
        built.append(_LAYER_BUILDERS[kind](cfg, rng))
    return Sequential(*built)


def import_graph_def(doc: dict[str, Any]) -> Graph:
    """Load an ONNX-like graph document produced by :func:`export_graph_def`."""
    return graph_from_dict(doc)


def export_graph_def(graph: Graph) -> dict[str, Any]:
    """Serialize a graph to an ONNX-like JSON-safe document."""
    return graph_to_dict(graph, include_weights=True)
