"""A minimal PyTorch-like module system used as the primary frontend.

Models are defined as trees of :class:`Module` objects holding
:class:`Parameter` leaves; :func:`repro.frontend.tracer.trace` walks the
tree, registers every parameter as a graph initializer, and records the
provenance metadata (module path, role, block tags) that sparse-update
schemes use to select "the first conv of the last k blocks".
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np


class Parameter:
    """A trainable (or frozen) tensor owned by a module.

    Attributes:
        array: the numpy payload (mutated in place by training).
        role: semantic role — ``weight``, ``bias``, ``norm_scale``,
            ``norm_shift`` or ``embedding`` — consumed by update schemes.
        trainable: whether the optimizer may ever touch this tensor
            (schemes further narrow the updated subset).
    """

    def __init__(self, array: np.ndarray, role: str = "weight",
                 trainable: bool = True) -> None:
        self.array = np.asarray(array)
        self.role = role
        self.trainable = trainable
        #: set by the tracer: value name inside the traced graph
        self.value_name: str | None = None

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.array.shape)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.shape}, role={self.role!r})"


class Module:
    """Base class for all model components.

    Subclasses assign parameters and sub-modules as attributes; bookkeeping
    happens automatically. ``self.meta`` holds free-form tags (e.g.
    ``{"block": 3, "role_in_block": "first_pw"}``) that the tracer merges
    along the ownership chain into per-parameter metadata.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_params", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "meta", {})

    def __setattr__(self, name: str, value: Any) -> None:
        if isinstance(value, Parameter):
            self._params[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # -- traversal -----------------------------------------------------------

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def named_parameters(
        self, prefix: str = "", meta: dict | None = None
    ) -> Iterator[tuple[str, Parameter, dict]]:
        """Yield ``(dotted_path, parameter, merged_meta)`` for every leaf."""
        merged = dict(meta or {})
        merged.update(self.meta)
        for name, param in self._params.items():
            path = f"{prefix}.{name}" if prefix else name
            yield path, param, dict(merged)
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_parameters(child_prefix, merged)

    def num_parameters(self) -> int:
        return sum(p.array.size for _, p, _ in self.named_parameters())

    # -- forward -------------------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError(
            f"{type(self).__name__} does not implement forward()"
        )

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Runs children in order; indexable like a list."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self._order: list[str] = []
        for i, layer in enumerate(layers):
            name = str(i)
            setattr(self, name, layer)
            self._order.append(name)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def __len__(self) -> int:
        return len(self._order)

    def forward(self, x):
        for name in self._order:
            x = self._modules[name](x)
        return x
