"""Tracing: turn a module tree's forward pass into an IR graph.

The tracer registers every parameter as an initializer named by its module
path, records per-parameter provenance metadata under
``graph.metadata["params"]``, then calls ``forward`` on symbolic tensors.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CompileError
from ..ir import DType, Graph, GraphBuilder
from .functional import Sym
from .module import Module


@dataclass(frozen=True)
class InputSpec:
    """Declares one graph input for tracing."""

    name: str
    shape: tuple[int, ...]
    dtype: DType = DType.FLOAT32


def trace(model: Module, inputs: list[InputSpec],
          name: str = "model") -> Graph:
    """Trace ``model`` over symbolic inputs and return the forward graph.

    Parameter value names equal their dotted module paths, so schemes can be
    written against stable, human-readable names. ``graph.metadata["params"]``
    maps each name to ``{"role": ..., "trainable": ..., **module tags}``.
    """
    builder = GraphBuilder(name)
    param_meta: dict[str, dict] = {}
    seen: dict[int, str] = {}
    for path, param, meta in model.named_parameters():
        if id(param) in seen:  # weight tying: register once
            param.value_name = seen[id(param)]
            continue
        trainable = param.trainable and param.role != "buffer"
        value = builder.initializer(path, param.array, trainable=trainable)
        param.value_name = value
        seen[id(param)] = value
        param_meta[value] = {
            "role": param.role,
            "trainable": trainable,
            **meta,
        }

    syms = [
        Sym(builder, builder.input(spec.name, spec.shape, spec.dtype))
        for spec in inputs
    ]
    result = model(*syms)
    if isinstance(result, Sym):
        result = (result,)
    for sym in result:
        if not isinstance(sym, Sym):
            raise CompileError(
                f"forward returned {type(sym).__name__}, expected Sym"
            )
        builder.mark_output(sym.name)

    graph = builder.graph
    graph.metadata["params"] = param_meta
    return graph
