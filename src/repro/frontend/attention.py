"""Transformer building blocks: multi-head attention, FFN, blocks.

Separate Q/K/V/O projections keep the scheme granularity the paper uses
("the weights in the attention module and the first linear layer in the
FFN are more important", Figure 6).
"""

from __future__ import annotations

import numpy as np

from .functional import Sym
from .layers import LayerNorm, Linear, RMSNorm
from .module import Module, Parameter


class MultiHeadAttention(Module):
    """Standard scaled-dot-product multi-head self-attention."""

    def __init__(self, dim: int, num_heads: int, causal: bool = False,
                 max_len: int = 512,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if dim % num_heads:
            raise ValueError(f"dim {dim} not divisible by heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.causal = causal
        self.q = Linear(dim, dim, rng=rng)
        self.k = Linear(dim, dim, rng=rng)
        self.v = Linear(dim, dim, rng=rng)
        self.o = Linear(dim, dim, rng=rng)
        if causal:
            mask = np.triu(np.full((max_len, max_len), -1e9, dtype=np.float32),
                           k=1)
            self.mask = Parameter(mask[None, None], role="buffer",
                                  trainable=False)
        else:
            self.mask = None

    def forward(self, x: Sym) -> Sym:
        batch, seq, dim = x.shape
        heads, hd = self.num_heads, self.head_dim

        def split(sym: Sym) -> Sym:
            return sym.reshape((batch, seq, heads, hd)).transpose((0, 2, 1, 3))

        q = split(self.q(x))
        k = split(self.k(x))
        v = split(self.v(x))
        scores = (q @ k.transpose((0, 1, 3, 2))) * (1.0 / np.sqrt(hd))
        if self.mask is not None:
            mask = Sym(x.b, self.mask.value_name)
            window = mask.slice(2, 0, seq).slice(3, 0, seq)
            scores = scores + window
        attn = scores.softmax(axis=-1)
        ctx = (attn @ v).transpose((0, 2, 1, 3)).reshape((batch, seq, dim))
        return self.o(ctx)


class FeedForward(Module):
    """Two-layer FFN; ``fc1`` is the scheme-selected "first linear"."""

    def __init__(self, dim: int, hidden: int, activation: str = "gelu",
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.fc1 = Linear(dim, hidden, activation=activation, rng=rng)
        self.fc1.meta["role_in_block"] = "ffn_first"
        self.fc2 = Linear(hidden, dim, rng=rng)
        self.fc2.meta["role_in_block"] = "ffn_second"

    def forward(self, x: Sym) -> Sym:
        return self.fc2(self.fc1(x))


class TransformerBlock(Module):
    """Pre-/post-norm encoder or decoder block.

    Args:
        dim: model width.
        num_heads: attention heads.
        ffn_hidden: FFN hidden width.
        causal: causal masking (decoder-style, Llama).
        pre_norm: pre-norm (Llama) vs post-norm (BERT).
        norm: "layernorm" or "rmsnorm".
    """

    def __init__(self, dim: int, num_heads: int, ffn_hidden: int,
                 causal: bool = False, pre_norm: bool = False,
                 norm: str = "layernorm", activation: str = "gelu",
                 max_len: int = 512,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        norm_cls = RMSNorm if norm == "rmsnorm" else LayerNorm
        self.pre_norm = pre_norm
        self.attn = MultiHeadAttention(dim, num_heads, causal=causal,
                                       max_len=max_len, rng=rng)
        self.attn.meta["role_in_block"] = "attention"
        self.norm1 = norm_cls(dim)
        self.ffn = FeedForward(dim, ffn_hidden, activation=activation, rng=rng)
        self.norm2 = norm_cls(dim)

    def forward(self, x: Sym) -> Sym:
        if self.pre_norm:
            x = x + self.attn(self.norm1(x))
            x = x + self.ffn(self.norm2(x))
        else:
            x = self.norm1(x + self.attn(x))
            x = self.norm2(x + self.ffn(x))
        return x
