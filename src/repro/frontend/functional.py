"""Symbolic tensors: the objects module ``forward`` methods manipulate.

A :class:`Sym` wraps a value name inside a :class:`GraphBuilder`; arithmetic
on it emits IR nodes, so tracing a model is just calling its forward pass.
"""

from __future__ import annotations

import numpy as np

from ..ir import GraphBuilder


class Sym:
    """A symbolic tensor bound to a builder."""

    __slots__ = ("b", "name")

    def __init__(self, builder: GraphBuilder, name: str) -> None:
        self.b = builder
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.b.shape(self.name)

    @property
    def rank(self) -> int:
        return len(self.shape)

    def _wrap(self, name: str) -> "Sym":
        return Sym(self.b, name)

    def _coerce(self, other) -> str:
        if isinstance(other, Sym):
            return other.name
        return self.b.constant(np.float32(other))

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other):
        return self._wrap(self.b.add(self.name, self._coerce(other)))

    __radd__ = __add__

    def __sub__(self, other):
        return self._wrap(self.b.sub(self.name, self._coerce(other)))

    def __mul__(self, other):
        return self._wrap(self.b.mul(self.name, self._coerce(other)))

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self._wrap(self.b.div(self.name, self._coerce(other)))

    def __matmul__(self, other: "Sym"):
        return self._wrap(self.b.matmul(self.name, other.name))

    def __neg__(self):
        return self._wrap(self.b.neg(self.name))

    # -- shape ops -----------------------------------------------------------

    def reshape(self, shape) -> "Sym":
        return self._wrap(self.b.reshape(self.name, shape))

    def transpose(self, perm) -> "Sym":
        return self._wrap(self.b.transpose(self.name, perm))

    def slice(self, axis: int, start: int, end: int) -> "Sym":
        return self._wrap(self.b.slice(self.name, axis, start, end))

    def mean(self, axes=None, keepdims: bool = False) -> "Sym":
        return self._wrap(self.b.reduce_mean(self.name, axes, keepdims))

    def sum(self, axes=None, keepdims: bool = False) -> "Sym":
        return self._wrap(self.b.reduce_sum(self.name, axes, keepdims))

    # -- activations ---------------------------------------------------------

    def relu(self) -> "Sym":
        return self._wrap(self.b.emit("relu", [self.name]))

    def relu6(self) -> "Sym":
        return self._wrap(self.b.emit("relu6", [self.name]))

    def gelu(self) -> "Sym":
        return self._wrap(self.b.emit("gelu", [self.name]))

    def sigmoid(self) -> "Sym":
        return self._wrap(self.b.emit("sigmoid", [self.name]))

    def tanh(self) -> "Sym":
        return self._wrap(self.b.emit("tanh", [self.name]))

    def softmax(self, axis: int = -1) -> "Sym":
        return self._wrap(self.b.emit("softmax", [self.name], {"axis": axis}))

    def __repr__(self) -> str:
        return f"Sym({self.name}, shape={self.shape})"
