"""A Keras/TF-style frontend: shape-inferring layers, built on first use.

The paper's compiler ingests "models defined in PyTorch/TensorFlow/Jax".
The primary frontend here is the PyTorch-like module system; this module
is the TensorFlow-flavoured one — layers declare only their *output*
configuration (``Dense(64)``, ``Conv2D(32, 3, padding="same")``) and the
input dimensions are inferred at build time, exactly as ``model.build()``
does in Keras.

``build_sequential`` lowers a layer list to the existing module system
and traces it, so everything downstream (schemes, compiler, deployment)
is frontend-agnostic — the unified-IR property of paper Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CompileError
from ..ir import DType, Graph
from .functional import Sym
from .layers import (Activation as _Activation, AvgPool2d, Conv2d,
                     GlobalAvgPool, Linear, MaxPool2d)
from .module import Module, Sequential
from .tracer import InputSpec, trace


class KerasLayer:
    """Base: a layer spec that can lower itself once shapes are known."""

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        raise NotImplementedError

    def to_module(self, input_shape: tuple[int, ...],
                  rng: np.random.Generator) -> Module:
        raise NotImplementedError


def _conv_pad(padding: str | int, kernel_size: int) -> int:
    if padding == "same":
        return kernel_size // 2
    if padding == "valid":
        return 0
    if isinstance(padding, int):
        return padding
    raise CompileError(f"padding must be 'same', 'valid' or an int, "
                       f"got {padding!r}")


def _spatial(size: int, kernel: int, stride: int, pad: int) -> int:
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise CompileError(
            f"layer output would be empty (size {size}, kernel {kernel}, "
            f"stride {stride}, padding {pad})")
    return out


@dataclass
class Dense(KerasLayer):
    """Fully connected layer; input features inferred at build."""

    units: int
    activation: str | None = None
    use_bias: bool = True

    def output_shape(self, s):
        return s[:-1] + (self.units,)

    def to_module(self, s, rng):
        return Linear(s[-1], self.units, bias=self.use_bias,
                      activation=self.activation, rng=rng)


@dataclass
class Conv2D(KerasLayer):
    """2-D convolution (NCHW); input channels inferred at build."""

    filters: int
    kernel_size: int
    strides: int = 1
    padding: str | int = "valid"
    groups: int = 1
    activation: str | None = None
    use_bias: bool = True

    def _pad(self):
        return _conv_pad(self.padding, self.kernel_size)

    def output_shape(self, s):
        if len(s) != 4:
            raise CompileError(f"Conv2D expects NCHW input, got {s}")
        n, _, h, w = s
        pad = self._pad()
        return (n, self.filters,
                _spatial(h, self.kernel_size, self.strides, pad),
                _spatial(w, self.kernel_size, self.strides, pad))

    def to_module(self, s, rng):
        return Conv2d(s[1], self.filters, self.kernel_size,
                      stride=self.strides, padding=self._pad(),
                      groups=self.groups, bias=self.use_bias,
                      activation=self.activation, rng=rng)


@dataclass
class DepthwiseConv2D(KerasLayer):
    """Depthwise convolution: one filter per input channel."""

    kernel_size: int
    strides: int = 1
    padding: str | int = "same"
    activation: str | None = None

    def output_shape(self, s):
        return Conv2D(s[1], self.kernel_size, self.strides, self.padding,
                      groups=s[1]).output_shape(s)

    def to_module(self, s, rng):
        channels = s[1]
        return Conv2d(channels, channels, self.kernel_size,
                      stride=self.strides,
                      padding=_conv_pad(self.padding, self.kernel_size),
                      groups=channels, activation=self.activation, rng=rng)


@dataclass
class MaxPooling2D(KerasLayer):
    pool_size: int = 2
    strides: int | None = None

    def output_shape(self, s):
        stride = self.strides or self.pool_size
        n, c, h, w = s
        return (n, c, _spatial(h, self.pool_size, stride, 0),
                _spatial(w, self.pool_size, stride, 0))

    def to_module(self, s, rng):
        return MaxPool2d(self.pool_size, stride=self.strides)


@dataclass
class AveragePooling2D(KerasLayer):
    pool_size: int = 2
    strides: int | None = None

    def output_shape(self, s):
        return MaxPooling2D(self.pool_size, self.strides).output_shape(s)

    def to_module(self, s, rng):
        return AvgPool2d(self.pool_size, stride=self.strides)


@dataclass
class GlobalAveragePooling2D(KerasLayer):
    def output_shape(self, s):
        return (s[0], s[1])

    def to_module(self, s, rng):
        return GlobalAvgPool()


class _FlattenModule(Module):
    def __init__(self, flat: int) -> None:
        super().__init__()
        self.flat = flat

    def forward(self, x: Sym) -> Sym:
        batch = x.shape[0]
        return Sym(x.b, x.b.reshape(x.name, (batch, self.flat)))


@dataclass
class Flatten(KerasLayer):
    def output_shape(self, s):
        flat = int(np.prod(s[1:]))
        return (s[0], flat)

    def to_module(self, s, rng):
        return _FlattenModule(int(np.prod(s[1:])))


@dataclass
class ReLU(KerasLayer):
    def output_shape(self, s):
        return s

    def to_module(self, s, rng):
        return _Activation("relu")


@dataclass
class ActivationLayer(KerasLayer):
    kind: str

    def output_shape(self, s):
        return s

    def to_module(self, s, rng):
        return _Activation(self.kind)


def build_sequential(
    layers: list[KerasLayer],
    input_shape: tuple[int, ...],
    name: str = "keras_model",
    seed: int = 0,
    input_dtype: DType = DType.FLOAT32,
) -> Graph:
    """Build + trace a layer stack; ``input_shape`` includes the batch dim.

    Shape inference runs front-to-back, each layer lowers to a concrete
    module, and the resulting :class:`Sequential` traces into the same IR
    every other frontend produces.
    """
    model, shape = build_model(layers, input_shape, seed=seed)
    spec = InputSpec("x", tuple(input_shape), input_dtype)
    return trace(model, [spec], name=name)


def build_model(layers: list[KerasLayer], input_shape: tuple[int, ...],
                seed: int = 0) -> tuple[Sequential, tuple[int, ...]]:
    """Lower layer specs to modules; returns (model, output_shape)."""
    if not layers:
        raise CompileError("a model needs at least one layer")
    rng = np.random.default_rng(seed)
    shape = tuple(input_shape)
    modules = []
    for layer in layers:
        modules.append(layer.to_module(shape, rng))
        shape = layer.output_shape(shape)
    return Sequential(*modules), shape
