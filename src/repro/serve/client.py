"""Blocking Python client for the :mod:`repro.serve.gateway` HTTP API.

Stdlib-only (``http.client``), one persistent keep-alive connection per
calling thread — N client threads drive N concurrent handler threads on
the gateway, which is exactly the concurrency model the benchmark and CI
drive need.

Backpressure is surfaced as typed exceptions: a ``429`` raises
:class:`RateLimited` carrying the server's ``Retry-After`` hint, and
:meth:`ServeClient.step` can optionally honour it (``wait=True``) by
sleeping and retrying until ``max_wait`` is spent — the well-behaved
client the gateway's shedding is designed for. Every other HTTP error
raises :class:`GatewayError` with the status and the server's message.

Retry semantics: against a server that advertises the ``idempotency``
feature (``/v1/healthz``), :meth:`ServeClient.step` mints one
``Idempotency-Key`` per *logical* step and retries transient failures —
a connection lost while awaiting the response (:class:`ResponseLost`),
a 500, a 429 — under that key with decorrelated-jitter backoff; the
server replays the recorded result instead of applying the update
twice. Against an older server no key is sent and a lost response is
**not** retried (re-sending a non-idempotent step would silently apply
the same update twice).

Wire format: the same healthz probe gates the binary step protocol.
Against a server advertising ``binary_step``, :meth:`ServeClient.step`
ships ``x``/``y`` as one :mod:`repro.serve.wire` frame (raw dtype
bytes) and asks for the result as a frame too — no float->decimal->
float round trip, ~3x fewer bytes per step. Against a legacy server it
speaks JSON, and ``binary=False``/``binary=True`` pins either way.
Checkpoint downloads negotiate the same framing against servers that
advertise ``binary_checkpoint`` (see :meth:`ServeClient.
download_checkpoint`); :meth:`ServeClient.restore` uploads either form.
A ``token`` adds ``Authorization: Bearer`` to every request for
gateways started with an auth token map.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import threading
import time
import uuid
from typing import Any
from urllib.parse import urlsplit

import numpy as np

from ..errors import ServeError
from ..obs import parse_server_timing
from . import wire

#: decorrelated-jitter backoff bounds (seconds) for step retries
_BACKOFF_BASE = 0.05
_BACKOFF_CAP = 2.0


class GatewayError(ServeError):
    """An HTTP-level failure reported by the gateway."""

    def __init__(self, status: int, message: str,
                 retry_after: float | None = None) -> None:
        super().__init__(f"HTTP {status}: {message}" if status
                         else message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


class RateLimited(GatewayError):
    """The gateway shed this request (rate limit or queue watermark)."""


class ResponseLost(GatewayError):
    """The request reached the server but its response was lost on the
    wire — the step *may have executed*. Safe to retry only under an
    idempotency key (the server then replays the recorded result)."""


class ServeClient:
    """Blocking client over one gateway; thread-safe via per-thread
    connections."""

    def __init__(self, url_or_host: str, port: int | None = None, *,
                 timeout: float = 120.0, binary: bool | None = None,
                 token: str | None = None) -> None:
        if "://" in url_or_host:
            parsed = urlsplit(url_or_host)
            self.host = parsed.hostname or "127.0.0.1"
            self.port = parsed.port or 80
        else:
            if port is None:
                raise ServeError(
                    "ServeClient needs a port (or a full http:// URL)")
            self.host = url_or_host
            self.port = port
        self.timeout = timeout
        #: None = follow the server's healthz feature probe; True/False
        #: pins the step wire format regardless of what it advertises
        self._binary = binary
        self._token = token
        self._local = threading.local()
        self._conns_lock = threading.Lock()
        self._conns: list[http.client.HTTPConnection] = []
        #: lazily probed frozenset of /v1/healthz "features" (gates
        #: whether step retries may carry an Idempotency-Key)
        self._features_cache: frozenset[str] | None = None

    # -- transport -----------------------------------------------------------

    def _conn(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
            # Headers and body go out in separate writes; without
            # TCP_NODELAY, Nagle holds the body until the header ACK
            # (~40ms of delayed-ACK stall added to every step).
            conn.connect()
            conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._local.conn = conn
            with self._conns_lock:
                self._conns.append(conn)
        return conn

    def _drop_conn(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None
            with self._conns_lock:
                if conn in self._conns:
                    self._conns.remove(conn)

    def _auth_headers(self) -> dict[str, str]:
        if self._token is None:
            return {}
        return {"Authorization": f"Bearer {self._token}"}

    def _request(self, method: str, path: str,
                 payload: dict | None = None, *,
                 headers: dict[str, str] | None = None,
                 raw: bytes | None = None,
                 frame: bytes | None = None) -> dict[str, Any]:
        if frame is not None:
            # one pre-encoded wire frame; ask for the result framed too
            body: bytes | None = frame
            send_headers = {"Content-Type": wire.CONTENT_TYPE,
                            "Accept": wire.CONTENT_TYPE}
        elif raw is not None:
            body = raw
            send_headers = {"Content-Type": "application/octet-stream"}
        else:
            body = None if payload is None else json.dumps(payload).encode()
            send_headers = {"Content-Type": "application/json"} \
                if body else {}
        send_headers.update(self._auth_headers())
        if headers:
            send_headers.update(headers)
        response = data = None
        for attempt in (0, 1):
            try:
                conn = self._conn()
                conn.request(method, path, body, send_headers)
            except (http.client.RemoteDisconnected, ConnectionError,
                    BrokenPipeError) as exc:
                # A stale keep-alive connection (server idled it out, or
                # restarted) fails while *sending*; the server never saw
                # the request, so one reconnect-and-retry is safe.
                self._drop_conn()
                if attempt:
                    raise GatewayError(
                        0, f"connection to {self.host}:{self.port} lost: "
                           f"{exc}") from exc
                continue
            try:
                response = conn.getresponse()
                data = response.read()
            except (http.client.HTTPException, ConnectionError,
                    OSError) as exc:
                # The request reached the server but the response was
                # lost. Not retried *here*: only step() with an
                # idempotency key knows the retry is safe.
                self._drop_conn()
                raise ResponseLost(
                    0, f"connection lost awaiting the response ({exc}); "
                       f"the request may still have executed") from exc
            break
        parsed: dict[str, Any] = {}
        ctype = (response.headers.get("Content-Type") or "") \
            .split(";")[0].strip().lower()
        if data and ctype == wire.CONTENT_TYPE:
            try:
                parsed = dict(wire.decode_frame(data)[0] or {})
            except wire.WireError as exc:
                raise GatewayError(
                    response.status,
                    f"garbled wire-frame response: {exc}") from exc
        elif data:
            try:
                parsed = json.loads(data)
            except json.JSONDecodeError as exc:
                raise GatewayError(
                    response.status,
                    f"non-JSON response: {data[:200]!r}") from exc
        if response.status >= 400:
            message = parsed.get("error", response.reason)
            retry_after = parsed.get("retry_after")
            if retry_after is None:
                header = response.headers.get("Retry-After")
                retry_after = float(header) if header else None
            if response.status == 429:
                raise RateLimited(response.status, message, retry_after)
            raise GatewayError(response.status, message, retry_after)
        # The gateway's per-stage span breakdown rides in Server-Timing on
        # step responses; surface it without another round trip.
        timing = response.headers.get("Server-Timing")
        if timing:
            parsed["timings"] = parse_server_timing(timing)
        request_id = response.headers.get("X-Request-Id")
        if request_id and "request_id" not in parsed:
            parsed["request_id"] = request_id
        return parsed

    # -- API -----------------------------------------------------------------

    def create_session(self, model: str, *, scheme: str = "paper",
                       tenant: str | None = None,
                       model_kwargs: dict | None = None) -> dict:
        """Open a tenant session; returns the session document (id,
        input/label shapes and dtypes, num_classes)."""
        payload: dict[str, Any] = {"model": model, "scheme": scheme}
        if tenant is not None:
            payload["tenant"] = tenant
        if model_kwargs:
            payload["model_kwargs"] = model_kwargs
        return self._request("POST", "/v1/sessions", payload)

    def _features(self) -> frozenset[str]:
        """What the server speaks, probed from /v1/healthz once and
        cached (an unreachable/legacy server probes as featureless)."""
        features = self._features_cache
        if features is None:
            try:
                features = frozenset(self.healthz().get("features") or ())
            except (ServeError, ValueError):
                features = frozenset()
            self._features_cache = features
        return features

    def step(self, session_id: str, x, y, *, wait: bool = True,
             max_wait: float = 30.0, timeout: float | None = None) -> dict:
        """One training step; blocks until the result (or a refusal).

        With ``wait=True`` transient failures are retried until
        ``max_wait`` seconds have been spent, then the last error
        propagates: a 429 waits the server's ``Retry-After`` hint; a
        lost response (:class:`ResponseLost`) and a 500 are retried with
        decorrelated-jitter backoff **only** when the server advertises
        the ``idempotency`` feature — every attempt of one call carries
        the same minted ``Idempotency-Key``, so the server applies the
        update at most once and replays the recorded result to retries
        (``"replayed": true``). Against an older server those failures
        propagate immediately, exactly the pre-key behaviour.
        ``wait=False`` raises on the first refusal — benchmark loops
        measuring shed rate use it.

        ``timeout`` is an *end-to-end deadline* in seconds, shipped to
        the server as an absolute ``X-Deadline`` header: work still
        queued when it expires is shed server-side (504) instead of
        executed for nobody.

        The body format follows the healthz probe (see the module
        docstring): binary wire frames against a ``binary_step`` server,
        JSON otherwise. Both carry identical values — the server's
        results are byte-for-byte the same either way.
        """
        binary = self._binary if self._binary is not None \
            else "binary_step" in self._features()
        payload = frame = None
        if binary:
            # copy() rather than ascontiguousarray: the latter promotes
            # 0-d label scalars to shape (1,), which the server rejects
            xa, ya = np.asarray(x), np.asarray(y)
            if not xa.flags.c_contiguous:
                xa = xa.copy()
            if not ya.flags.c_contiguous:
                ya = ya.copy()
            frame = wire.encode_frame(None, {"x": xa, "y": ya})
        else:
            payload = {"x": np.asarray(x).tolist(),
                       "y": np.asarray(y).tolist()}
        path = f"/v1/sessions/{session_id}/step"
        budget = time.monotonic() + max_wait
        headers: dict[str, str] = {}
        if timeout is not None:
            headers["X-Deadline"] = f"{time.time() + timeout:.6f}"
            budget = min(budget, time.monotonic() + timeout)
        keyed = "idempotency" in self._features()
        if keyed:
            # One key per logical step: every retry below re-sends it, so
            # the server can dedupe no matter which attempt(s) executed.
            headers["Idempotency-Key"] = \
                f"{session_id}:{uuid.uuid4().hex}"
        retryable = wait and keyed
        pause = _BACKOFF_BASE
        while True:
            try:
                return self._request("POST", path, payload,
                                     headers=headers, frame=frame)
            except RateLimited as exc:
                if not wait:
                    raise
                error: GatewayError = exc
                delay = exc.retry_after if exc.retry_after else pause
            except ResponseLost as exc:
                if not retryable:
                    raise
                error, delay = exc, pause
            except GatewayError as exc:
                # 500 = the step itself failed (e.g. a worker crashed
                # mid-batch); with a key the server released the claim,
                # so re-execution is safe. 4xx/504 are not transient.
                if not retryable or exc.status != 500:
                    raise
                error, delay = exc, pause
            remaining = budget - time.monotonic()
            if remaining <= 0:
                raise error
            # Decorrelated jitter: spreads synchronized retry storms
            # without the unbounded growth of pure exponential backoff.
            pause = min(_BACKOFF_CAP,
                        random.uniform(_BACKOFF_BASE, pause * 3))
            time.sleep(min(delay, remaining))

    def session(self, session_id: str) -> dict:
        return self._request("GET", f"/v1/sessions/{session_id}")

    def close_session(self, session_id: str) -> dict:
        """Retire the session; returns its final summary."""
        return self._request("DELETE", f"/v1/sessions/{session_id}")

    def metrics(self) -> dict:
        return self._request("GET", "/v1/metrics")

    def prometheus_metrics(self) -> str:
        """The Prometheus text exposition (``/v1/metrics?format=prometheus``)."""
        conn = self._conn()
        try:
            conn.request("GET", "/v1/metrics?format=prometheus",
                         headers=self._auth_headers())
            response = conn.getresponse()
            data = response.read()
        except (http.client.HTTPException, ConnectionError, OSError) as exc:
            self._drop_conn()
            raise GatewayError(0, f"connection lost: {exc}") from exc
        if response.status >= 400:
            raise GatewayError(response.status, data.decode(errors="replace"))
        return data.decode()

    def trace(self) -> dict:
        """The server's span ring as a chrome://tracing document."""
        return self._request("GET", "/v1/trace")

    # -- durability ----------------------------------------------------------

    def checkpoint(self, session_id: str) -> dict:
        """Persist one checkpoint version server-side; returns its meta
        (step_seq, path, retained versions)."""
        return self._request(
            "POST", f"/v1/sessions/{session_id}/checkpoint")

    def download_checkpoint(self, session_id: str, *,
                            binary: bool | None = None) -> bytes:
        """The session's current checkpoint as raw bytes (feed them back
        through :meth:`restore`, possibly against a different server).

        Against a server advertising ``binary_checkpoint`` the download
        is negotiated as a wire frame (``Accept``) — same values, no
        sha256 trailer, tensor segments ready for zero-copy decode.
        ``binary`` pins either way; :meth:`restore` accepts both forms.
        """
        if binary is None:
            binary = self._binary if self._binary is not None \
                else "binary_checkpoint" in self._features()
        headers = self._auth_headers()
        if binary:
            headers["Accept"] = wire.CONTENT_TYPE
        conn = self._conn()
        try:
            conn.request("GET", f"/v1/sessions/{session_id}/checkpoint",
                         headers=headers)
            response = conn.getresponse()
            data = response.read()
        except (http.client.HTTPException, ConnectionError, OSError) as exc:
            self._drop_conn()
            raise GatewayError(0, f"connection lost: {exc}") from exc
        if response.status >= 400:
            try:
                message = json.loads(data).get("error", response.reason)
            except (json.JSONDecodeError, AttributeError):
                message = data.decode(errors="replace")
            raise GatewayError(response.status, message)
        return data

    def restore(self, data: bytes | None = None, *,
                session_id: str | None = None,
                version: int | None = None) -> dict:
        """Resurrect a session from checkpoint ``data`` bytes, or from
        the server's store by ``session_id`` (newest intact version, or
        exactly ``version``). Returns the restored session summary.
        ``data`` may be either checkpoint form (``.ckpt`` bytes or a wire
        frame from a binary download) — the content type is set from the
        leading magic."""
        if data is not None:
            headers = {"Content-Type": wire.CONTENT_TYPE} \
                if data.startswith(wire.MAGIC) else None
            return self._request("POST", "/v1/sessions/restore", raw=data,
                                 headers=headers)
        if session_id is None:
            raise ServeError("restore needs checkpoint bytes or a "
                             "session_id")
        payload: dict[str, Any] = {"session_id": session_id}
        if version is not None:
            payload["version"] = version
        return self._request("POST", "/v1/sessions/restore", payload)

    def healthz(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def close(self) -> None:
        with self._conns_lock:
            conns, self._conns = list(self._conns), []
        for conn in conns:
            conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
