"""Blocking Python client for the :mod:`repro.serve.gateway` HTTP API.

Stdlib-only (``http.client``), one persistent keep-alive connection per
calling thread — N client threads drive N concurrent handler threads on
the gateway, which is exactly the concurrency model the benchmark and CI
drive need.

Backpressure is surfaced as typed exceptions: a ``429`` raises
:class:`RateLimited` carrying the server's ``Retry-After`` hint, and
:meth:`ServeClient.step` can optionally honour it (``wait=True``) by
sleeping and retrying until ``max_wait`` is spent — the well-behaved
client the gateway's shedding is designed for. Every other HTTP error
raises :class:`GatewayError` with the status and the server's message.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from typing import Any
from urllib.parse import urlsplit

import numpy as np

from ..errors import ServeError
from ..obs import parse_server_timing


class GatewayError(ServeError):
    """An HTTP-level failure reported by the gateway."""

    def __init__(self, status: int, message: str,
                 retry_after: float | None = None) -> None:
        super().__init__(f"HTTP {status}: {message}" if status
                         else message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


class RateLimited(GatewayError):
    """The gateway shed this request (rate limit or queue watermark)."""


class ServeClient:
    """Blocking client over one gateway; thread-safe via per-thread
    connections."""

    def __init__(self, url_or_host: str, port: int | None = None, *,
                 timeout: float = 120.0) -> None:
        if "://" in url_or_host:
            parsed = urlsplit(url_or_host)
            self.host = parsed.hostname or "127.0.0.1"
            self.port = parsed.port or 80
        else:
            if port is None:
                raise ServeError(
                    "ServeClient needs a port (or a full http:// URL)")
            self.host = url_or_host
            self.port = port
        self.timeout = timeout
        self._local = threading.local()
        self._conns_lock = threading.Lock()
        self._conns: list[http.client.HTTPConnection] = []

    # -- transport -----------------------------------------------------------

    def _conn(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
            # Headers and body go out in separate writes; without
            # TCP_NODELAY, Nagle holds the body until the header ACK
            # (~40ms of delayed-ACK stall added to every step).
            conn.connect()
            conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._local.conn = conn
            with self._conns_lock:
                self._conns.append(conn)
        return conn

    def _drop_conn(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None
            with self._conns_lock:
                if conn in self._conns:
                    self._conns.remove(conn)

    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> dict[str, Any]:
        body = None if payload is None else json.dumps(payload).encode()
        headers = {"Content-Type": "application/json"} if body else {}
        response = data = None
        for attempt in (0, 1):
            try:
                conn = self._conn()
                conn.request(method, path, body, headers)
            except (http.client.RemoteDisconnected, ConnectionError,
                    BrokenPipeError) as exc:
                # A stale keep-alive connection (server idled it out, or
                # restarted) fails while *sending*; the server never saw
                # the request, so one reconnect-and-retry is safe.
                self._drop_conn()
                if attempt:
                    raise GatewayError(
                        0, f"connection to {self.host}:{self.port} lost: "
                           f"{exc}") from exc
                continue
            try:
                response = conn.getresponse()
                data = response.read()
            except (http.client.HTTPException, ConnectionError,
                    OSError) as exc:
                # The request reached the server but the response was
                # lost. Never retried: re-sending a non-idempotent step
                # here would silently apply the same update twice.
                self._drop_conn()
                raise GatewayError(
                    0, f"connection lost awaiting the response ({exc}); "
                       f"the request may still have executed") from exc
            break
        parsed: dict[str, Any] = {}
        if data:
            try:
                parsed = json.loads(data)
            except json.JSONDecodeError as exc:
                raise GatewayError(
                    response.status,
                    f"non-JSON response: {data[:200]!r}") from exc
        if response.status >= 400:
            message = parsed.get("error", response.reason)
            retry_after = parsed.get("retry_after")
            if retry_after is None:
                header = response.headers.get("Retry-After")
                retry_after = float(header) if header else None
            if response.status == 429:
                raise RateLimited(response.status, message, retry_after)
            raise GatewayError(response.status, message, retry_after)
        # The gateway's per-stage span breakdown rides in Server-Timing on
        # step responses; surface it without another round trip.
        timing = response.headers.get("Server-Timing")
        if timing:
            parsed["timings"] = parse_server_timing(timing)
        request_id = response.headers.get("X-Request-Id")
        if request_id and "request_id" not in parsed:
            parsed["request_id"] = request_id
        return parsed

    # -- API -----------------------------------------------------------------

    def create_session(self, model: str, *, scheme: str = "paper",
                       tenant: str | None = None,
                       model_kwargs: dict | None = None) -> dict:
        """Open a tenant session; returns the session document (id,
        input/label shapes and dtypes, num_classes)."""
        payload: dict[str, Any] = {"model": model, "scheme": scheme}
        if tenant is not None:
            payload["tenant"] = tenant
        if model_kwargs:
            payload["model_kwargs"] = model_kwargs
        return self._request("POST", "/v1/sessions", payload)

    def step(self, session_id: str, x, y, *, wait: bool = True,
             max_wait: float = 30.0) -> dict:
        """One training step; blocks until the result (or a refusal).

        With ``wait=True`` a 429 is retried after the server's
        ``Retry-After`` hint until ``max_wait`` seconds have been spent,
        then the last :class:`RateLimited` propagates. ``wait=False``
        raises immediately — benchmark loops measuring shed rate use it.
        """
        payload = {"x": np.asarray(x).tolist(), "y": np.asarray(y).tolist()}
        path = f"/v1/sessions/{session_id}/step"
        deadline = time.monotonic() + max_wait
        while True:
            try:
                return self._request("POST", path, payload)
            except RateLimited as exc:
                if not wait:
                    raise
                pause = exc.retry_after if exc.retry_after else 0.05
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise
                time.sleep(min(pause, remaining))

    def session(self, session_id: str) -> dict:
        return self._request("GET", f"/v1/sessions/{session_id}")

    def close_session(self, session_id: str) -> dict:
        """Retire the session; returns its final summary."""
        return self._request("DELETE", f"/v1/sessions/{session_id}")

    def metrics(self) -> dict:
        return self._request("GET", "/v1/metrics")

    def prometheus_metrics(self) -> str:
        """The Prometheus text exposition (``/v1/metrics?format=prometheus``)."""
        conn = self._conn()
        try:
            conn.request("GET", "/v1/metrics?format=prometheus")
            response = conn.getresponse()
            data = response.read()
        except (http.client.HTTPException, ConnectionError, OSError) as exc:
            self._drop_conn()
            raise GatewayError(0, f"connection lost: {exc}") from exc
        if response.status >= 400:
            raise GatewayError(response.status, data.decode(errors="replace"))
        return data.decode()

    def trace(self) -> dict:
        """The server's span ring as a chrome://tracing document."""
        return self._request("GET", "/v1/trace")

    def healthz(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def close(self) -> None:
        with self._conns_lock:
            conns, self._conns = list(self._conns), []
        for conn in conns:
            conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
