"""`repro.serve`: a multi-tenant fine-tuning service over the compiler.

The paper front-loads all training intelligence into compilation so the
runtime step is cheap; this package makes that pay off under traffic. A
long-lived :class:`FineTuneService` compiles each *configuration* once
(:class:`ProgramCache`, keyed by the canonical hashes in
:mod:`repro.serve.keys`), keeps per-tenant mutable state decoupled from the
shared immutable programs (:class:`SessionManager`), coalesces
single-example step requests into bucketed micro-batches on a worker pool
(:class:`BatchScheduler`), and reports throughput / cache hit rate /
latency quantiles through a :class:`MetricsRegistry`.

Quickstart::

    from repro.serve import FineTuneService

    with FineTuneService(max_batch=8, workers=4) as service:
        session = service.create_session("mcunet_micro", scheme="paper")
        futures = [service.submit(session.id, x, y)
                   for x, y in example_stream]
        losses = [f.result().loss for f in futures]
        print(service.render_metrics())
"""

from .cache import CacheEntry, CacheStats, ProgramCache
from .checkpoint import (CheckpointStore, SessionCheckpoint, dump_checkpoint,
                         load_checkpoint, read_checkpoint, write_checkpoint)
from .client import GatewayError, RateLimited, ResponseLost, ServeClient
from .faults import FAULT_POINTS, FAULTS, FaultRegistry
from .gateway import GatewayServer
from .keys import key_document, program_key
from .metrics import (CallbackGauge, Counter, Gauge, Histogram,
                      MetricsRegistry)
from .ratelimit import RateLimiter, TokenBucket
from .scheduler import (BatchScheduler, StepRequest, StepResult,
                        bucket_sizes)
from .service import BACKENDS, FineTuneService, ProgramFamily
from .sessions import IDEMPOTENCY_WINDOW, SessionManager, TenantSession
from .workers import ProcessPoolEngine

__all__ = [
    "BACKENDS",
    "BatchScheduler",
    "CacheEntry",
    "CacheStats",
    "CallbackGauge",
    "CheckpointStore",
    "Counter",
    "FAULTS",
    "FAULT_POINTS",
    "FaultRegistry",
    "FineTuneService",
    "Gauge",
    "GatewayError",
    "GatewayServer",
    "Histogram",
    "IDEMPOTENCY_WINDOW",
    "MetricsRegistry",
    "ProcessPoolEngine",
    "ProgramCache",
    "ProgramFamily",
    "RateLimited",
    "RateLimiter",
    "ResponseLost",
    "ServeClient",
    "SessionCheckpoint",
    "SessionManager",
    "StepRequest",
    "StepResult",
    "TenantSession",
    "TokenBucket",
    "bucket_sizes",
    "dump_checkpoint",
    "key_document",
    "load_checkpoint",
    "program_key",
    "read_checkpoint",
    "write_checkpoint",
]
