"""`repro.serve`: a multi-tenant fine-tuning service over the compiler.

The paper front-loads all training intelligence into compilation so the
runtime step is cheap; this package makes that pay off under traffic. A
long-lived :class:`FineTuneService` compiles each *configuration* once
(:class:`ProgramCache`, keyed by the canonical hashes in
:mod:`repro.serve.keys`), keeps per-tenant mutable state decoupled from the
shared immutable programs (:class:`SessionManager`), coalesces
single-example step requests into bucketed micro-batches on a worker pool
(:class:`BatchScheduler`), and reports throughput / cache hit rate /
latency quantiles through a :class:`MetricsRegistry`.

Quickstart::

    from repro.serve import FineTuneService

    with FineTuneService(max_batch=8, workers=4) as service:
        session = service.create_session("mcunet_micro", scheme="paper")
        futures = [service.submit(session.id, x, y)
                   for x, y in example_stream]
        losses = [f.result().loss for f in futures]
        print(service.render_metrics())

Attribute access is lazy (PEP 562): importing :mod:`repro.serve` — or a
light submodule like :mod:`repro.serve.wire` / :mod:`repro.serve.shm`
from a process-pool step worker — must not drag in
:mod:`repro.runtime.compiler` via :mod:`repro.serve.service`. The
compiler-free-worker invariant is asserted by ``stepworker.probe()``.
"""

from importlib import import_module

_EXPORTS = {
    "CacheEntry": "cache",
    "CacheStats": "cache",
    "ProgramCache": "cache",
    "CheckpointStore": "checkpoint",
    "SessionCheckpoint": "checkpoint",
    "dump_checkpoint": "checkpoint",
    "load_checkpoint": "checkpoint",
    "read_checkpoint": "checkpoint",
    "write_checkpoint": "checkpoint",
    "GatewayError": "client",
    "RateLimited": "client",
    "ResponseLost": "client",
    "ServeClient": "client",
    "FAULT_POINTS": "faults",
    "FAULTS": "faults",
    "FaultRegistry": "faults",
    "GatewayServer": "gateway",
    "key_document": "keys",
    "program_key": "keys",
    "CallbackGauge": "metrics",
    "Counter": "metrics",
    "Gauge": "metrics",
    "Histogram": "metrics",
    "MetricsRegistry": "metrics",
    "RateLimiter": "ratelimit",
    "TokenBucket": "ratelimit",
    "BatchScheduler": "scheduler",
    "StepRequest": "scheduler",
    "StepResult": "scheduler",
    "bucket_sizes": "scheduler",
    "BACKENDS": "service",
    "FineTuneService": "service",
    "ProgramFamily": "service",
    "IDEMPOTENCY_WINDOW": "sessions",
    "SessionManager": "sessions",
    "TenantSession": "sessions",
    "SlabRing": "shm",
    "WireError": "wire",
    "ProcessPoolEngine": "workers",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(f".{module}", __name__), name)
    globals()[name] = value  # cache for the next lookup
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
