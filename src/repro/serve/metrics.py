"""Service metrics: counters, gauges, and quantile histograms.

A tiny in-process registry in the spirit of Prometheus clients, sized for
the serving layer's needs: throughput counters, cache hit rates, and
p50/p95 step/request latencies. Histograms keep a bounded ring of recent
observations, so quantiles reflect steady-state behaviour rather than the
cold start. Rendering goes through :func:`repro.report.render_table` like
every other report in the repo.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Sequence

import numpy as np

from ..report import render_table


class Counter:
    """Monotonically increasing count."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        # Locked like the writes: float loads are GIL-atomic today, but a
        # torn read would be silent data corruption in a metrics endpoint,
        # and the lock documents the intended contract.
        with self._lock:
            return self._value


class Gauge:
    """Last-write-wins value (e.g. live session count, peak bytes)."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is higher (high-water mark)."""
        with self._lock:
            self._value = max(self._value, float(value))

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class CallbackGauge:
    """Gauge whose value is read from a callback at *sample* time.

    For signals that must never go stale — backpressure decisions read
    ``serve.queue_depth`` between renders, so a set-on-render gauge would
    lag exactly when it matters. The callback must be cheap and
    thread-safe (e.g. a lock-guarded ``len``/``sum``).
    """

    def __init__(self, name: str, fn, help: str = "") -> None:
        self.name = name
        self.fn = fn
        self.help = help

    @property
    def value(self) -> float:
        return float(self.fn())


#: default cumulative-bucket bounds, tuned for millisecond latencies
#: (they also resolve small counts like batch sizes well enough)
DEFAULT_BUCKETS = (0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
                   500.0, 1000.0, 2500.0, 5000.0, 10000.0)


class Histogram:
    """Quantile sketch over a ring of recent observations, plus all-time
    cumulative buckets for Prometheus exposition.

    The ring answers "what is p95 right now" (steady-state, cold start
    forgotten); the bucket counters answer a scraper's "how many
    observations ever fell at or under each bound" — both fed by the same
    :meth:`observe`.
    """

    def __init__(self, name: str, help: str = "", window: int = 2048,
                 buckets: Sequence[float] | None = None) -> None:
        self.name = name
        self.help = help
        self._ring = np.zeros(window, dtype=np.float64)
        self._next = 0
        self._count = 0
        self._sum = 0.0
        self._bounds = tuple(sorted(buckets or DEFAULT_BUCKETS))
        #: per-bucket (non-cumulative) counts; last entry is +Inf
        self._bucket_counts = [0] * (len(self._bounds) + 1)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._ring[self._next % len(self._ring)] = value
            self._next += 1
            self._count += 1
            self._sum += value
            self._bucket_counts[bisect_left(self._bounds, value)] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Empirical quantile over the retained window (0 when empty)."""
        with self._lock:
            n = min(self._count, len(self._ring))
            if n == 0:
                return 0.0
            return float(np.quantile(self._ring[:n], q))

    def bucket_counts(self) -> tuple[tuple[float, ...], list[int],
                                     float, int]:
        """``(bounds, cumulative_counts_incl_inf, sum, count)`` snapshot.

        Cumulative per Prometheus semantics: entry i counts observations
        ``<= bounds[i]``; the final entry (+Inf) equals ``count``.
        """
        with self._lock:
            cumulative: list[int] = []
            running = 0
            for bucket in self._bucket_counts:
                running += bucket
                cumulative.append(running)
            return self._bounds, cumulative, self._sum, self._count

    def summary(self) -> dict[str, float]:
        # One consistent snapshot: count/mean and the quantile window are
        # read under the same lock acquisition, so a render racing
        # observe() can't pair a new count with an old sum.
        with self._lock:
            count = self._count
            mean = self._sum / count if count else 0.0
            n = min(count, len(self._ring))
            window = self._ring[:n].copy() if n else None
        if window is None:
            p50 = p95 = 0.0
        else:
            p50, p95 = (float(q) for q in
                        np.quantile(window, (0.50, 0.95)))
        return {"count": count, "mean": mean, "p50": p50, "p95": p95}


class MetricsRegistry:
    """Named metric store shared by the cache, scheduler, and sessions."""

    def __init__(self) -> None:
        self._metrics: dict[
            str, Counter | Gauge | CallbackGauge | Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_create(name, Histogram, help)

    def items(self) -> list[tuple[str, object]]:
        """Stable snapshot of ``(name, metric)`` pairs (exposition)."""
        with self._lock:
            return sorted(self._metrics.items())

    def callback_gauge(self, name: str, fn,
                       help: str = "") -> CallbackGauge:
        """Register a live gauge backed by ``fn`` (re-registering rebinds).

        Rebinding matters when a registry outlives the object it samples
        (e.g. a shared registry across service restarts): the gauge must
        follow the *live* scheduler, not a closed one.
        """
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = CallbackGauge(name, fn, help)
                self._metrics[name] = metric
            elif isinstance(metric, CallbackGauge):
                metric.fn = fn
            else:
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not CallbackGauge"
                )
            return metric

    def _get_or_create(self, name: str, kind, help: str):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, help)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric

    def replace_prefixed(self, prefixes: tuple[str, ...],
                         values: dict[str, float]) -> None:
        """Re-publish a dynamic gauge group atomically.

        Gauges whose names start with one of ``prefixes`` but are absent
        from ``values`` are dropped; every entry of ``values`` is set. This
        keeps per-object gauge groups (e.g. per cached program) bounded by
        the live object set instead of growing with everything ever seen.
        """
        with self._lock:
            for name in list(self._metrics):
                if name.startswith(prefixes) and name not in values:
                    del self._metrics[name]
        for name, value in values.items():
            self.gauge(name).set(value)

    def as_dict(self) -> dict[str, float | dict[str, float]]:
        """Flat snapshot: scalars for counters/gauges, summaries for hists."""
        with self._lock:
            metrics = dict(self._metrics)
        out: dict[str, float | dict[str, float]] = {}
        for name, metric in sorted(metrics.items()):
            if isinstance(metric, Histogram):
                out[name] = metric.summary()
            else:
                out[name] = metric.value
        return out

    def render(self, title: str | None = "service metrics") -> str:
        """ASCII table of every registered metric."""
        rows: list[Sequence[object]] = []
        for name, value in self.as_dict().items():
            if isinstance(value, dict):
                rows.append([
                    name,
                    f"n={value['count']:.0f} mean={value['mean']:.3f} "
                    f"p50={value['p50']:.3f} p95={value['p95']:.3f}",
                ])
            else:
                rows.append([name, value])
        return render_table(["metric", "value"], rows, title=title)
