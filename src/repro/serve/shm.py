"""A shared-memory slab ring: zero-copy batches/overlays for step workers.

The process backend used to pickle the full state overlay + batch into
every ``pool.submit`` and pickle the updated overlay back — four copies
of every tensor per step (pickle-out, pipe, unpickle, and again for the
result). This module replaces that with a fixed ring of reusable slots
in one ``multiprocessing.shared_memory`` segment:

* the parent leases a slot, writes one wire frame
  (:func:`repro.serve.wire.encode_into` — state overlay + stacked batch,
  each tensor copied exactly once) into it, and submits only the
  ``(ring name, slot index)`` coordinates through the pool;
* the worker attaches the segment once per process (cached), decodes
  **writable views** into the slot, runs the step mutating the state
  overlay *in place* in shared memory, and returns only a tiny pickled
  stub (fetched scalars + observability payload);
* the parent copies the updated overlay views back into the session
  arrays and releases the slot for reuse. Slabs are recycled — steady
  state allocates nothing.

Torn writes are impossible to hand to a reader: every slot carries a
little-endian ``(seq, length)`` header, and writers bump ``seq`` to an
odd value before touching payload bytes and to a fresh even value after
(:func:`begin_write` / :func:`commit_write`). A reader that observes an
odd or changed ``seq`` raises :class:`ServeError` instead of decoding
garbage — relevant when a worker was SIGKILLed mid-step and the slot is
being salvaged. Cross-process ordering is otherwise provided by the
pool's own result pipe: the worker's return happens-after its last shm
write, so the parent never polls.

Python 3.11's ``SharedMemory`` has no ``track=False``; attaching
registers the segment with the attacher's resource tracker, which can
unlink the parent's live segment when the attaching process exits (or,
with the inherited tracker, strip the parent's own registration via
unregister). :func:`attach` suppresses registration for the attach call
instead — the creating parent stays the sole owner of the segment's
lifetime.
"""

from __future__ import annotations

import os
import struct
import threading
from collections import deque
from multiprocessing import resource_tracker, shared_memory

from ..errors import ServeError
from . import wire

#: fallback slot size for rings created without a measured frame — a full
#: MCUNet batch-8 frame (state overlay + stacked feeds) is ~150 KB, so
#: 4 MiB leaves generous headroom. :class:`~repro.serve.workers.
#: ProcessPoolEngine` normally sizes its ring from the model's actual
#: state+feeds footprint instead (``slot_bytes=None``) and only uses a
#: fixed size when one is pinned explicitly.
DEFAULT_SLOT_BYTES = 4 << 20

_SLOT_HEADER = struct.Struct("<QQ")  # (sequence counter, frame length)

#: the slot header occupies a full cache line so every frame starts
#: 64-byte aligned in the (page-aligned) segment — wire frames then place
#: each tensor segment on a 64-byte boundary in memory, keeping numpy's
#: ALIGNED flag (and therefore kernel selection, and therefore bit-exact
#: results) identical to freshly allocated arrays
_SLOT_HEADER_SPAN = 64


def slot_span(slot_bytes: int) -> int:
    """Total bytes one slot occupies in the segment (header + payload)."""
    payload = (int(slot_bytes) + _SLOT_HEADER_SPAN - 1) \
        // _SLOT_HEADER_SPAN * _SLOT_HEADER_SPAN
    return _SLOT_HEADER_SPAN + payload


def attach(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting its lifetime.

    Counterpart of the parent's ``SharedMemory(create=True)``; safe to
    call from pool workers — the resource tracker workaround keeps a
    worker exit (or kill) from unlinking the parent's segment.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _slot_view(buf, slot: int, slot_bytes: int) -> memoryview:
    start = slot * slot_span(slot_bytes)
    return memoryview(buf)[start:start + slot_span(slot_bytes)]


def begin_write(buf, slot: int, slot_bytes: int) -> memoryview:
    """Mark ``slot`` as being written; return its payload view."""
    view = _slot_view(buf, slot, slot_bytes)
    seq, _ = _SLOT_HEADER.unpack_from(view, 0)
    writing = seq + 1 + (seq % 2)  # next odd value strictly above seq
    _SLOT_HEADER.pack_into(view, 0, writing, 0)
    return view[_SLOT_HEADER_SPAN:]


def commit_write(buf, slot: int, slot_bytes: int, length: int) -> int:
    """Publish ``length`` payload bytes; returns the new (even) seq."""
    view = _slot_view(buf, slot, slot_bytes)
    seq, _ = _SLOT_HEADER.unpack_from(view, 0)
    if seq % 2 == 0:
        raise ServeError(
            f"shm slot {slot} committed without begin_write (seq={seq})")
    _SLOT_HEADER.pack_into(view, 0, seq + 1, int(length))
    return seq + 1


def mark_busy(buf, slot: int, slot_bytes: int) -> None:
    """Flip ``slot`` to an odd seq while its payload is being mutated.

    Workers wrap their in-place step between :func:`mark_busy` and
    :func:`mark_done` — a parent that inspects the slot after a worker
    crash sees a torn marker instead of a half-applied overlay. Unlike
    :func:`begin_write`, the committed frame length is preserved.
    """
    view = _slot_view(buf, slot, slot_bytes)
    seq, length = _SLOT_HEADER.unpack_from(view, 0)
    _SLOT_HEADER.pack_into(view, 0, seq + 1 + (seq % 2), length)


def mark_done(buf, slot: int, slot_bytes: int) -> None:
    """Flip ``slot`` back to an even seq after an in-place mutation."""
    view = _slot_view(buf, slot, slot_bytes)
    seq, length = _SLOT_HEADER.unpack_from(view, 0)
    if seq % 2:
        _SLOT_HEADER.pack_into(view, 0, seq + 1, length)


def read_frame(buf, slot: int, slot_bytes: int, *, copy: bool = False):
    """Decode the frame in ``slot``; torn/garbled slots raise cleanly.

    Returns ``(meta, tensors, seq)``. With ``copy=False`` the tensors
    view shared memory directly — writable, so a worker's in-place
    kernel updates land in the parent's segment with no return pickle.
    """
    view = _slot_view(buf, slot, slot_bytes)
    seq, length = _SLOT_HEADER.unpack_from(view, 0)
    if seq % 2:
        raise ServeError(
            f"shm slot {slot} is mid-write (seq={seq}); refusing to read "
            f"a torn frame")
    if length > slot_bytes:
        raise ServeError(
            f"shm slot {slot} claims {length} bytes in a {slot_bytes}-byte "
            f"slot")
    payload = view[_SLOT_HEADER_SPAN:_SLOT_HEADER_SPAN + length]
    try:
        meta, tensors = wire.decode_frame(payload, copy=copy)
    except wire.WireError as exc:
        raise ServeError(f"shm slot {slot} holds a garbled frame: "
                         f"{exc}") from exc
    check, _ = _SLOT_HEADER.unpack_from(view, 0)
    if check != seq:
        raise ServeError(
            f"shm slot {slot} was overwritten while being read "
            f"(seq {seq} -> {check})")
    return meta, tensors, seq


class SlabRing:
    """Parent-side lease manager over one shared segment of slots.

    ``acquire`` blocks while every slot is leased (the pool is saturated
    anyway at that point) and fails fast once closed. All slot I/O goes
    through the module-level seq-counter protocol, so worker-side reads
    see exactly the same layout.
    """

    def __init__(self, slots: int, slot_bytes: int = DEFAULT_SLOT_BYTES,
                 *, name_hint: str = "repro-ring"):
        if slots < 1:
            raise ValueError(f"SlabRing needs >= 1 slot, got {slots}")
        if slot_bytes < wire.frame_nbytes({}) :
            raise ValueError(f"slot_bytes={slot_bytes} cannot hold a frame")
        self.slots = int(slots)
        self.slot_bytes = int(slot_bytes)
        self._shm = shared_memory.SharedMemory(
            create=True, size=self.slots * slot_span(self.slot_bytes))
        # zero the headers so first reads see seq=0/len=0, not page noise
        for slot in range(self.slots):
            _SLOT_HEADER.pack_into(
                _slot_view(self._shm.buf, slot, self.slot_bytes), 0, 0, 0)
        self._free: deque[int] = deque(range(self.slots))
        self._cond = threading.Condition()
        self._closed = False

    @property
    def name(self) -> str:
        return self._shm.name

    def free_slots(self) -> int:
        with self._cond:
            return len(self._free)

    def acquire(self, timeout: float | None = 30.0) -> int:
        with self._cond:
            if not self._cond.wait_for(
                    lambda: self._free or self._closed, timeout):
                raise ServeError(
                    f"timed out waiting {timeout}s for a free shm slot "
                    f"({self.slots} slots, all leased)")
            if self._closed:
                raise ServeError("shm ring is closed")
            return self._free.popleft()

    def release(self, slot: int) -> None:
        with self._cond:
            if not self._closed and slot not in self._free:
                self._free.append(slot)
                self._cond.notify()

    def write_frame(self, slot: int, meta, tensors) -> int:
        """Encode one frame into ``slot``; returns the frame length.

        :class:`~repro.serve.wire.WireError` propagates for payloads
        that cannot travel (too big for the slot, non-contiguous) —
        callers fall back to the pickle channel.
        """
        payload = begin_write(self._shm.buf, slot, self.slot_bytes)
        try:
            length = wire.encode_into(payload, meta, tensors)
        except wire.WireError:
            # leave the slot committed-empty rather than torn
            commit_write(self._shm.buf, slot, self.slot_bytes, 0)
            raise
        commit_write(self._shm.buf, slot, self.slot_bytes, length)
        return length

    def read_frame(self, slot: int, *, copy: bool = False):
        meta, tensors, _ = read_frame(
            self._shm.buf, slot, self.slot_bytes, copy=copy)
        return meta, tensors

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._free.clear()
            self._cond.notify_all()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        try:
            self._shm.close()
        except BufferError:
            # numpy views into the segment are still alive somewhere; the
            # name is already unlinked, so just drop our handles — the
            # mapping is reclaimed when the last view is collected, and
            # clearing the fields keeps SharedMemory.__del__ from raising
            # the same BufferError again at interpreter shutdown
            self._shm._buf = None
            self._shm._mmap = None
            if self._shm._fd >= 0:
                os.close(self._shm._fd)
                self._shm._fd = -1

    def __enter__(self) -> "SlabRing":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
