"""Fault injection for the serving stack (tests and chaos benchmarks).

A *fault point* is a named place in the serving code where a failure can
be injected: the code calls :func:`fire` unconditionally, and ``fire`` is
a no-op unless that point has been explicitly armed. Arming happens from
tests (``FAULTS.arm(...)``), from the chaos benchmark, or — for code
running in spawned worker processes, which share no Python state with the
parent — through the ``REPRO_FAULTS`` environment variable.

Catalog of instrumented points:

====================================  =====================================
point                                 where it fires
====================================  =====================================
``checkpoint.write``                  mid-checkpoint-write, after the
                                      header but before the payload is
                                      complete (atomicity tests)
``checkpoint.read``                   before parsing a checkpoint file
                                      (corrupt-restore fallback tests)
``cache.artifact_read``               before binding a persisted program
                                      artifact (quarantine tests)
``gateway.reset_after_send``          after a step executed but before
                                      its HTTP response is written — the
                                      connection is dropped, simulating a
                                      response lost on the wire
``worker.step``                       inside a step worker's ``run_step``
                                      (armed via ``REPRO_FAULTS`` since
                                      workers are spawned; typically with
                                      ``action="kill"`` for SIGKILL loops)
``disk.slow``                         before checkpoint/artifact disk IO
                                      (latency injection)
====================================  =====================================

Semantics of one armed point: it fires for the next ``times`` calls
(``times=None`` = every call) and each firing, in order, sleeps
``delay`` seconds, runs ``handler(**ctx)`` if given, SIGKILLs the
process if ``action="kill"``, and finally raises ``exc`` (default
:class:`~repro.errors.FaultInjected`) unless ``exc=None`` was armed
explicitly, in which case the call continues normally (pure delay /
handler faults).
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import FaultInjected

#: the instrumented fault points (arming an unknown name is an error so
#: tests fail loudly when a point is renamed or removed)
FAULT_POINTS = frozenset({
    "checkpoint.write",
    "checkpoint.read",
    "cache.artifact_read",
    "gateway.reset_after_send",
    "worker.step",
    "disk.slow",
})

#: environment variable spawned workers read to arm faults at import:
#: a JSON object {point: {"times": N, "delay": S, "action": "kill"}}
FAULTS_ENV = "REPRO_FAULTS"


@dataclass
class _Armed:
    times: int | None = 1          #: firings remaining (None = unlimited)
    delay: float = 0.0             #: sleep this long per firing
    action: str | None = None      #: "kill" -> SIGKILL this process
    exc: BaseException | type[BaseException] | None = FaultInjected
    handler: Callable[..., None] | None = None
    skip: int = 0                  #: no-op the first ``skip`` calls
    fired: int = 0                 #: lifetime firings (observability)
    calls: int = 0                 #: lifetime calls while armed
    meta: dict[str, Any] = field(default_factory=dict)


class FaultRegistry:
    """Thread-safe registry of armed fault points."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._armed: dict[str, _Armed] = {}

    def arm(self, point: str, *, times: int | None = 1, delay: float = 0.0,
            action: str | None = None,
            exc: BaseException | type[BaseException] | None = FaultInjected,
            handler: Callable[..., None] | None = None,
            skip: int = 0) -> None:
        """Arm ``point`` to fire on its next ``times`` calls.

        ``skip`` lets a test target the Nth call (e.g. corrupt only the
        second checkpoint read). Re-arming replaces the previous arming.
        """
        if point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {point!r}; catalog: "
                f"{sorted(FAULT_POINTS)}")
        if action not in (None, "kill"):
            raise ValueError(f"unknown fault action {action!r}")
        with self._lock:
            self._armed[point] = _Armed(
                times=times, delay=delay, action=action, exc=exc,
                handler=handler, skip=skip)

    def disarm(self, point: str | None = None) -> None:
        """Disarm one point, or every point (``None``): test teardown."""
        with self._lock:
            if point is None:
                self._armed.clear()
            else:
                self._armed.pop(point, None)

    def armed(self, point: str) -> bool:
        with self._lock:
            armed = self._armed.get(point)
            return armed is not None \
                and (armed.times is None or armed.fired < armed.times)

    def fired(self, point: str) -> int:
        """Lifetime firings of ``point`` under its current arming."""
        with self._lock:
            armed = self._armed.get(point)
            return armed.fired if armed is not None else 0

    def fire(self, point: str, **ctx: Any) -> bool:
        """Fire ``point`` if armed; returns True when a fault ran.

        Called unconditionally from the instrumented sites — the fast
        path (nothing armed, the overwhelmingly common case) is one dict
        lookup under a lock.
        """
        with self._lock:
            armed = self._armed.get(point)
            if armed is None:
                return False
            armed.calls += 1
            if armed.calls <= armed.skip:
                return False
            if armed.times is not None \
                    and armed.fired >= armed.times:
                return False
            armed.fired += 1
            # Snapshot under the lock; run effects outside it (a handler
            # or sleep must not serialize unrelated fault checks).
            delay, action = armed.delay, armed.action
            exc, handler = armed.exc, armed.handler
        if delay:
            time.sleep(delay)
        if handler is not None:
            handler(**ctx)
        if action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if exc is not None:
            raise exc if isinstance(exc, BaseException) \
                else exc(f"fault injected at {point}")
        return True

    def load_env(self, env: dict[str, str] | None = None) -> None:
        """Arm points from the ``REPRO_FAULTS`` env var (worker processes).

        The JSON shape mirrors :meth:`arm`'s keyword arguments minus
        ``exc``/``handler`` (not representable): ``{"worker.step":
        {"times": null, "skip": 5, "action": "kill"}}``. An armed env
        fault with no ``action`` raises :class:`FaultInjected`.
        """
        raw = (env if env is not None else os.environ).get(FAULTS_ENV)
        if not raw:
            return
        for point, spec in json.loads(raw).items():
            self.arm(point,
                     times=spec.get("times", 1),
                     delay=float(spec.get("delay", 0.0)),
                     action=spec.get("action"),
                     skip=int(spec.get("skip", 0)),
                     exc=None if spec.get("action") == "kill"
                     else FaultInjected)


#: the process-global registry every instrumented site fires through;
#: tests arm/disarm it directly, spawned workers arm it from the env
FAULTS = FaultRegistry()
FAULTS.load_env()
