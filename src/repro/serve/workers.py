"""Process-pool execution backend: step workers that never see the compiler.

The GIL caps the thread-pool backend at roughly one core of numpy kernel
work per Python process. This module escapes it the way the paper's
deployment story says to: the *control plane* (compiler, cache, scheduler,
sessions) stays in the parent, and the *data plane* is a pool of worker
processes that only ever execute frozen plan artifacts.

Protocol per (worker, program) pair — by design identical to a device
receiving a deployed model:

1. the worker receives the **artifact directory once** (first step for a
   given program key), binds the persisted execution plan against its own
   kernel registry (:func:`repro.deploy.artifact.load_artifact`), and
   caches the bound executor for every later step;
2. every step ships only the session's **mutable state overlay and the
   micro-batch arrays**; the worker runs one plan step (mutating the
   overlay in place, exactly like the in-process path) and ships back the
   requested outputs plus the updated overlay.

The worker-side code lives in :mod:`repro.deploy.stepworker` so a worker's
import closure stays compiler-free (importing anything under
``repro.serve`` would drag the compiler in); workers are spawned, not
forked, so they genuinely demonstrate the compile-once/run-anywhere split.
:meth:`ProcessPoolEngine.probe` verifies the claim against a live pool.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable

import numpy as np

from ..deploy import stepworker
from ..errors import ServeError


class ProcessPoolEngine:
    """A pool of plan-executing worker processes (the data plane).

    ``run_step`` blocks the calling scheduler thread until the worker
    finishes — the scheduler's per-session FIFO and fairness invariants
    carry over unchanged; only the compute escapes the GIL.

    A crashed worker (OOM-killed, segfaulted numpy, ``os._exit``) marks
    the whole ``ProcessPoolExecutor`` broken — without intervention every
    later step on every session would fail with ``BrokenProcessPool``
    forever. ``run_step`` converts that into one failed batch: the
    affected call raises a clear :class:`ServeError`, the pool is rebuilt
    exactly once (``restarts`` counts it, ``on_restart`` publishes it),
    and the next step binds artifacts into fresh workers and proceeds.
    """

    def __init__(self, workers: int, mp_context: str = "spawn",
                 on_restart: Callable[[], None] | None = None) -> None:
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._mp_context = mp_context
        self._on_restart = on_restart
        self._lock = threading.Lock()
        self._shutdown = False
        #: lifetime count of pool rebuilds after a worker crash
        self.restarts = 0
        self._pool = self._make_pool()

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=multiprocessing.get_context(self._mp_context))

    def run_step(self, artifact_dir, key: str,
                 state: dict[str, np.ndarray],
                 feeds: dict[str, np.ndarray],
                 fetch: Iterable[str],
                 trace=None):
        """One plan step on some worker; see
        :func:`repro.deploy.stepworker.run_step`.

        ``trace`` (a :class:`repro.obs.TraceCarrier` or None) crosses the
        pickle boundary with the task; the worker's observations ride back
        in the result tuple's ``obs_payload`` slot.
        """
        if artifact_dir is None:
            raise ServeError(
                f"program {key[:12]}… has no persisted artifact; the "
                f"process backend needs a writable cache_dir")
        pool = self._pool
        try:
            return pool.submit(
                stepworker.run_step, str(artifact_dir), key, state, feeds,
                tuple(fetch), trace).result()
        except BrokenProcessPool as exc:
            self._rebuild(pool)
            raise ServeError(
                f"worker process died while executing program "
                f"{key[:12]}…; this batch failed, the worker pool was "
                f"rebuilt — retry the step"
            ) from exc

    def _rebuild(self, broken: ProcessPoolExecutor) -> None:
        """Replace ``broken`` with a fresh pool (idempotent per pool).

        Several scheduler threads can observe the same broken pool
        concurrently; the identity check makes exactly one of them swap
        in a replacement (and count the restart) while the rest reuse it.
        """
        with self._lock:
            if self._pool is broken and not self._shutdown:
                self._pool = self._make_pool()
                self.restarts += 1
                if self._on_restart is not None:
                    self._on_restart()
        broken.shutdown(wait=False)

    def worker_pids(self) -> list[int]:
        """PIDs of the live worker processes (monitoring, crash tests)."""
        return list(self._pool._processes or ())

    def probe(self) -> dict:
        """Ask one live worker what it has imported and bound."""
        pool = self._pool
        try:
            return pool.submit(stepworker.probe).result()
        except BrokenProcessPool as exc:
            self._rebuild(pool)
            raise ServeError(
                "worker process died during probe; the worker pool was "
                "rebuilt — retry") from exc

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._shutdown = True
            pool = self._pool
        pool.shutdown(wait=wait)
