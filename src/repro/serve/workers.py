"""Process-pool execution backend: step workers that never see the compiler.

The GIL caps the thread-pool backend at roughly one core of numpy kernel
work per Python process. This module escapes it the way the paper's
deployment story says to: the *control plane* (compiler, cache, scheduler,
sessions) stays in the parent, and the *data plane* is a pool of worker
processes that only ever execute frozen plan artifacts.

Protocol per (worker, program) pair — by design identical to a device
receiving a deployed model:

1. the worker receives the **artifact directory once** (first step for a
   given program key), binds the persisted execution plan against its own
   kernel registry (:func:`repro.deploy.artifact.load_artifact`), and
   caches the bound executor for every later step;
2. every step ships only the session's **mutable state overlay and the
   micro-batch arrays**; the worker runs one plan step (mutating the
   overlay in place, exactly like the in-process path) and ships back the
   requested outputs plus the updated overlay.

The worker-side code lives in :mod:`repro.deploy.stepworker` so a worker's
import closure stays compiler-free (importing anything under
``repro.serve`` would drag the compiler in); workers are spawned, not
forked, so they genuinely demonstrate the compile-once/run-anywhere split.
:meth:`ProcessPoolEngine.probe` verifies the claim against a live pool.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable

import numpy as np

from ..deploy import stepworker
from ..errors import ServeError


class ProcessPoolEngine:
    """A pool of plan-executing worker processes (the data plane).

    ``run_step`` blocks the calling scheduler thread until the worker
    finishes — the scheduler's per-session FIFO and fairness invariants
    carry over unchanged; only the compute escapes the GIL.
    """

    def __init__(self, workers: int, mp_context: str = "spawn") -> None:
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context(mp_context))

    def run_step(self, artifact_dir, key: str,
                 state: dict[str, np.ndarray],
                 feeds: dict[str, np.ndarray],
                 fetch: Iterable[str]):
        """One plan step on some worker; see
        :func:`repro.deploy.stepworker.run_step`."""
        if artifact_dir is None:
            raise ServeError(
                f"program {key[:12]}… has no persisted artifact; the "
                f"process backend needs a writable cache_dir")
        return self._pool.submit(
            stepworker.run_step, str(artifact_dir), key, state, feeds,
            tuple(fetch)).result()

    def probe(self) -> dict:
        """Ask one live worker what it has imported and bound."""
        return self._pool.submit(stepworker.probe).result()

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)
