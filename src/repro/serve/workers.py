"""Process-pool execution backend: step workers that never see the compiler.

The GIL caps the thread-pool backend at roughly one core of numpy kernel
work per Python process. This module escapes it the way the paper's
deployment story says to: the *control plane* (compiler, cache, scheduler,
sessions) stays in the parent, and the *data plane* is a pool of worker
processes that only ever execute frozen plan artifacts.

Protocol per (worker, program) pair — by design identical to a device
receiving a deployed model:

1. the worker receives the **artifact directory once** (first step for a
   given program key), binds the persisted execution plan against its own
   kernel registry (:func:`repro.deploy.artifact.load_artifact`), and
   caches the bound executor for every later step;
2. every step ships only the session's **mutable state overlay and the
   micro-batch arrays**; the worker runs one plan step (mutating the
   overlay in place, exactly like the in-process path) and ships back the
   requested outputs plus the updated overlay.

The worker-side code lives in :mod:`repro.deploy.stepworker` so a worker's
import closure stays compiler-free (``repro.serve`` is import-lazy, so the
worker can still reach :mod:`repro.serve.shm` without the compiler);
workers are spawned, not forked, so they genuinely demonstrate the
compile-once/run-anywhere split. :meth:`ProcessPoolEngine.probe` verifies
the claim against a live pool.

Step 2 above has two transports, selected by ``channel``:

* ``"shm"`` (default) — the overlay + batch travel through a
  :class:`~repro.serve.shm.SlabRing` slot as one wire frame; the task
  pickles only the slot coordinates, the worker mutates the overlay in
  place in shared memory, and only fetched scalars come back by value.
  Payloads that cannot be framed (bigger than a slot, non-contiguous,
  name collisions) fall back to pickle per step, counted in
  ``serve.worker.shm_fallbacks``.
* ``"pickle"`` — the original full-pickle path, kept as the
  byte-exactness oracle and for hosts without POSIX shared memory.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable

import numpy as np

from ..deploy import stepworker
from ..errors import ServeError
from . import shm as shm_mod
from . import wire
from .wire import WireError

#: valid values for ``ProcessPoolEngine(channel=...)``
CHANNELS = ("shm", "pickle")

#: rough pickle overhead per step result stub (protocol framing, the
#: obs payload dict, scalar boxes) — keeps the serialized-bytes counter
#: honest without re-pickling just to measure
_STUB_OVERHEAD = 512


def _nbytes(arrays: dict[str, np.ndarray]) -> int:
    return sum(int(np.asarray(a).nbytes) for a in arrays.values())


class ProcessPoolEngine:
    """A pool of plan-executing worker processes (the data plane).

    ``run_step`` blocks the calling scheduler thread until the worker
    finishes — the scheduler's per-session FIFO and fairness invariants
    carry over unchanged; only the compute escapes the GIL.

    A crashed worker (OOM-killed, segfaulted numpy, ``os._exit``) marks
    the whole ``ProcessPoolExecutor`` broken — without intervention every
    later step on every session would fail with ``BrokenProcessPool``
    forever. ``run_step`` converts that into one failed batch: the
    affected call raises a clear :class:`ServeError`, the pool is rebuilt
    exactly once (``restarts`` counts it, ``on_restart`` publishes it),
    and the next step binds artifacts into fresh workers and proceeds.
    """

    def __init__(self, workers: int, mp_context: str = "spawn",
                 on_restart: Callable[[], None] | None = None, *,
                 channel: str = "shm",
                 slot_bytes: int | None = None,
                 metrics=None) -> None:
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers}")
        if channel not in CHANNELS:
            raise ServeError(
                f"unknown worker channel {channel!r}; expected one of "
                f"{CHANNELS}")
        self.workers = workers
        self.channel = channel
        self._mp_context = mp_context
        self._on_restart = on_restart
        self._lock = threading.Lock()
        self._shutdown = False
        #: lifetime count of pool rebuilds after a worker crash
        self.restarts = 0
        # slot sizing: an explicit slot_bytes pins the ring (payloads that
        # do not fit take the pickle fallback — tests rely on this); None
        # defers creation to the first step, sizing slots from the actual
        # state + feeds frame (see _ensure_ring) instead of a fixed slab.
        self._slot_bytes = slot_bytes
        self._ring_lock = threading.Lock()
        #: ring name -> steps currently using that ring's slots
        self._ring_inflight: dict[str, int] = {}
        #: rings replaced by a bigger one, kept open until they drain
        self._ring_retired: dict[str, shm_mod.SlabRing] = {}
        #: lifetime count of ring re-sizes (a growing workload signal)
        self.ring_resizes = 0
        # 2 slots per worker: one in flight per scheduler thread plus one
        # being written/read, so acquire() never blocks in steady state
        self._ring = (shm_mod.SlabRing(max(2, 2 * workers), slot_bytes)
                      if channel == "shm" and slot_bytes is not None
                      else None)
        self._use_shm = channel == "shm"
        if metrics is not None:
            self._serialized_bytes = metrics.counter(
                "serve.worker.serialized_bytes",
                "bytes pickled across the worker pool boundary")
            self._shm_bytes = metrics.counter(
                "serve.worker.shm_bytes",
                "bytes carried via shared-memory slabs instead of pickle")
            self._steps_shm = metrics.counter(
                "serve.worker.steps_shm", "steps run over the shm channel")
            self._steps_pickle = metrics.counter(
                "serve.worker.steps_pickle",
                "steps run over the pickle channel")
            self._shm_fallbacks = metrics.counter(
                "serve.worker.shm_fallbacks",
                "steps that fell back from shm to pickle "
                "(oversized / non-contiguous payloads)")
            self._ring_resizes = metrics.counter(
                "serve.worker.ring_resizes",
                "shm slab rings re-created for a larger model frame")
        else:
            self._serialized_bytes = self._shm_bytes = None
            self._steps_shm = self._steps_pickle = self._shm_fallbacks = None
            self._ring_resizes = None
        self._pool = self._make_pool()

    @staticmethod
    def _count(counter, n: int = 1) -> None:
        if counter is not None:
            counter.inc(n)

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=multiprocessing.get_context(self._mp_context))

    def run_step(self, artifact_dir, key: str,
                 state: dict[str, np.ndarray],
                 feeds: dict[str, np.ndarray],
                 fetch: Iterable[str],
                 trace=None):
        """One plan step on some worker; see
        :func:`repro.deploy.stepworker.run_step`.

        ``trace`` (a :class:`repro.obs.TraceCarrier` or None) crosses the
        pickle boundary with the task; the worker's observations ride back
        in the result tuple's ``obs_payload`` slot.
        """
        if artifact_dir is None:
            raise ServeError(
                f"program {key[:12]}… has no persisted artifact; the "
                f"process backend needs a writable cache_dir")
        if self._use_shm:
            try:
                return self._run_step_shm(
                    artifact_dir, key, state, feeds, tuple(fetch), trace)
            except WireError:
                # payload can't be framed (oversized for a pinned slot,
                # non-contiguous, or state/feed name collision): this
                # step takes the pickle path, the channel stays shm
                self._count(self._shm_fallbacks)
        return self._run_step_pickle(
            artifact_dir, key, state, feeds, tuple(fetch), trace)

    def _run_step_pickle(self, artifact_dir, key, state, feeds, fetch,
                         trace):
        pool = self._pool
        try:
            result = pool.submit(
                stepworker.run_step, str(artifact_dir), key, state, feeds,
                fetch, trace).result()
        except BrokenProcessPool as exc:
            self._rebuild(pool)
            raise ServeError(
                f"worker process died while executing program "
                f"{key[:12]}…; this batch failed, the worker pool was "
                f"rebuilt — retry the step"
            ) from exc
        self._count(self._steps_pickle)
        if self._serialized_bytes is not None:
            # task: state + feeds by value; result: state + fetched back
            fetched = result[0]
            self._serialized_bytes.inc(
                2 * _nbytes(state) + _nbytes(feeds) + _nbytes(fetched)
                + _STUB_OVERHEAD)
        return result

    # -- slab-ring sizing ----------------------------------------------------

    @staticmethod
    def _auto_slot_bytes(need: int) -> int:
        """Slot size for a model whose frame needs ``need`` bytes.

        12.5% headroom (meta name lists vary a little across programs
        sharing the engine) rounded up to 64 KiB, so a small MLP's ring
        costs kilobytes, not the 4 MiB fixed slab — and a model bigger
        than the old slab gets zero-copy steps instead of silently
        falling back to pickle forever.
        """
        granule = 64 << 10
        sized = need + need // 8 + 4096
        return max(granule, -(-sized // granule) * granule)

    def _ensure_ring(self, meta, tensors) -> shm_mod.SlabRing:
        """The ring this step's frame fits in, creating/growing if auto.

        Raises :class:`WireError` (→ pickle fallback) for unframeable
        payloads, and for oversized payloads when ``slot_bytes`` was
        pinned explicitly.
        """
        need = wire.frame_nbytes(meta, tensors)
        if self._slot_bytes is not None and need > self._slot_bytes:
            raise WireError(
                f"frame needs {need} bytes but slot_bytes is pinned at "
                f"{self._slot_bytes}")
        to_close = None
        with self._ring_lock:
            if self._shutdown:
                raise ServeError("worker engine is shut down")
            ring = self._ring
            if ring is None or (self._slot_bytes is None
                                and ring.slot_bytes < need):
                new = shm_mod.SlabRing(max(2, 2 * self.workers),
                                       self._auto_slot_bytes(need))
                if ring is not None:
                    self.ring_resizes += 1
                    self._count(self._ring_resizes)
                    if self._ring_inflight.get(ring.name):
                        # steps still lease its slots; drained in
                        # _ring_unref once the last one releases
                        self._ring_retired[ring.name] = ring
                    else:
                        to_close = ring
                self._ring = ring = new
            self._ring_inflight[ring.name] = \
                self._ring_inflight.get(ring.name, 0) + 1
        if to_close is not None:
            to_close.close()
        return ring

    def _ring_unref(self, ring: shm_mod.SlabRing) -> None:
        to_close = None
        with self._ring_lock:
            count = self._ring_inflight.get(ring.name, 1) - 1
            if count <= 0:
                self._ring_inflight.pop(ring.name, None)
                to_close = self._ring_retired.pop(ring.name, None)
            else:
                self._ring_inflight[ring.name] = count
        if to_close is not None:
            to_close.close()

    def _run_step_shm(self, artifact_dir, key, state, feeds, fetch, trace):
        """One step over the slab ring; ``WireError`` means "use pickle".

        The returned state dict **is** the caller's ``state``: the worker
        mutated the shared-memory views in place and this method copied
        them back into the caller's arrays, so there is no second dict to
        reconcile (the service skips its copy-back when it sees identity).
        """
        if set(state) & set(feeds):
            raise WireError(
                f"state/feed name collision: "
                f"{sorted(set(state) & set(feeds))}")
        meta = {"state": sorted(state), "feeds": sorted(feeds)}
        ring = self._ensure_ring(meta, {**state, **feeds})
        try:
            return self._run_step_shm_on(
                ring, artifact_dir, key, state, feeds, fetch, trace, meta)
        finally:
            self._ring_unref(ring)

    def _run_step_shm_on(self, ring, artifact_dir, key, state, feeds,
                         fetch, trace, meta):
        slot = ring.acquire(timeout=60.0)
        try:
            frame_len = ring.write_frame(slot, meta, {**state, **feeds})
            pool = self._pool
            try:
                fetched, peak, allocs, obs = pool.submit(
                    stepworker.run_step_shm, str(artifact_dir), key,
                    ring.name, slot, ring.slot_bytes, fetch,
                    trace).result()
            except BrokenProcessPool as exc:
                self._rebuild(pool)
                raise ServeError(
                    f"worker process died while executing program "
                    f"{key[:12]}…; this batch failed, the worker pool was "
                    f"rebuilt — retry the step"
                ) from exc
            _, updated = ring.read_frame(slot)
            for name, array in state.items():
                np.copyto(array, updated[name], casting="no")
            del updated
        finally:
            ring.release(slot)
        self._count(self._steps_shm)
        if self._serialized_bytes is not None:
            self._serialized_bytes.inc(_nbytes(fetched) + _STUB_OVERHEAD)
            self._shm_bytes.inc(frame_len)
        return fetched, state, peak, allocs, obs

    def _rebuild(self, broken: ProcessPoolExecutor) -> None:
        """Replace ``broken`` with a fresh pool (idempotent per pool).

        Several scheduler threads can observe the same broken pool
        concurrently; the identity check makes exactly one of them swap
        in a replacement (and count the restart) while the rest reuse it.
        """
        with self._lock:
            if self._pool is broken and not self._shutdown:
                self._pool = self._make_pool()
                self.restarts += 1
                if self._on_restart is not None:
                    self._on_restart()
        broken.shutdown(wait=False)

    def worker_pids(self) -> list[int]:
        """PIDs of the live worker processes (monitoring, crash tests)."""
        return list(self._pool._processes or ())

    def probe(self) -> dict:
        """Ask one live worker what it has imported and bound."""
        pool = self._pool
        try:
            return pool.submit(stepworker.probe).result()
        except BrokenProcessPool as exc:
            self._rebuild(pool)
            raise ServeError(
                "worker process died during probe; the worker pool was "
                "rebuilt — retry") from exc

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._shutdown = True
            pool = self._pool
        pool.shutdown(wait=wait)
        with self._ring_lock:
            rings = [self._ring, *self._ring_retired.values()]
            self._ring = None
            self._ring_retired.clear()
        for ring in rings:
            if ring is not None:
                ring.close()
