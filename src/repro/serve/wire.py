"""Binary step-payload framing for the serving wire and the shm channel.

JSON bodies are fine for control routes, but a fine-tuning step moves
image-sized tensors — base64/JSON encoding of a single MCUNet example is
~5x the raw bytes and burns gateway CPU on both encode and decode. This
module defines one versioned, length-prefixed binary frame used in two
places:

* ``POST /v1/sessions/{id}/step`` request/response bodies, negotiated via
  ``Content-Type`` / ``Accept`` (:data:`CONTENT_TYPE`); and
* slots of the shared-memory slab ring (:mod:`repro.serve.shm`) that
  carries batches and state overlays to process-pool step workers.

Frame layout (same idiom as :mod:`repro.serve.checkpoint`)::

    magic   b"RPWIRE1\\n"                          8 bytes
    hlen    big-endian uint32                      4 bytes
    header  JSON: {"version": 1, "meta": {...},
                   "tensors": [{name, dtype,
                                shape, offset,
                                nbytes}, ...]}     hlen bytes
    payload raw C-contiguous tensor bytes, each
            segment at its table offset            rest of frame

``meta`` carries small JSON-safe control fields (hyperparams, fetch
names, scalar results); tensors travel as raw bytes with an explicit
dtype/shape table, so :func:`decode_frame` can hand back zero-copy NumPy
views into the incoming buffer. Tensor segments are 64-byte aligned
within the payload so views into shared memory stay cache-line friendly.

Unlike checkpoints there is no trailing digest: frames live inside an
HTTP body whose length the server already knows, or inside an shm slot
guarded by a sequence counter — both framings detect truncation, and a
per-step sha256 would cost more than the copy it replaces. Every decode
failure raises :class:`WireError`, which the gateway maps to a clean 400.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Mapping

import numpy as np

from ..errors import ServeError

MAGIC = b"RPWIRE1\n"
WIRE_VERSION = 1

#: negotiated media type for binary step bodies (requests and responses)
CONTENT_TYPE = "application/x-repro-step"

_HLEN = struct.Struct(">I")
_PREFIX = len(MAGIC) + _HLEN.size
_ALIGN = 64

#: decode refuses headers larger than this — a hostile length prefix must
#: not make the server allocate or parse unbounded JSON
MAX_HEADER_BYTES = 1 << 20


class WireError(ServeError):
    """A frame that cannot be encoded or safely decoded."""


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def _tensor_table(tensors: Mapping[str, np.ndarray]):
    """Build the header table + per-tensor source arrays.

    Raises :class:`WireError` for arrays that cannot travel as raw
    segments (non-C-contiguous, object dtype) so callers can fall back
    to a copying path instead of silently pickling.
    """
    table = []
    arrays = []
    offset = 0
    for name in sorted(tensors):
        array = np.asarray(tensors[name])
        if array.dtype.hasobject:
            raise WireError(
                f"tensor {name!r} has object dtype {array.dtype!r}; only "
                f"plain numeric/bool buffers travel on the wire")
        if not array.flags.c_contiguous:
            raise WireError(
                f"tensor {name!r} is not C-contiguous; copy it "
                f"(np.ascontiguousarray) before framing")
        offset = _align(offset)
        table.append({
            "name": name,
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": offset,
            "nbytes": int(array.nbytes),
        })
        arrays.append(array)
        offset += array.nbytes
    return table, arrays, offset


def _header_bytes(meta: Mapping[str, Any] | None, table: list[dict]) -> bytes:
    header = json.dumps({
        "version": WIRE_VERSION,
        "meta": dict(meta or {}),
        "tensors": table,
    }, sort_keys=True, allow_nan=False).encode()
    # Pad (JSON tolerates trailing whitespace) so the payload starts on a
    # 64-byte boundary *within the frame*. Combined with 64-aligned tensor
    # offsets and a 64-aligned frame base (shm slots guarantee one), every
    # tensor segment is 64-byte aligned in memory — numpy keeps its
    # ALIGNED flag on the zero-copy views and takes exactly the same
    # kernel paths as for freshly allocated arrays, which is what makes
    # shm-channel results byte-identical to the pickle channel.
    header += b" " * (_align(_PREFIX + len(header)) - _PREFIX - len(header))
    if len(header) > MAX_HEADER_BYTES:
        raise WireError(
            f"frame header is {len(header)} bytes; the wire caps headers "
            f"at {MAX_HEADER_BYTES}")
    return header


def frame_nbytes(meta: Mapping[str, Any] | None,
                 tensors: Mapping[str, np.ndarray] | None = None) -> int:
    """Exact encoded size of the frame ``encode_frame`` would produce."""
    table, _, payload_len = _tensor_table(tensors or {})
    return _PREFIX + len(_header_bytes(meta, table)) + payload_len


def encode_frame(meta: Mapping[str, Any] | None = None,
                 tensors: Mapping[str, np.ndarray] | None = None) -> bytes:
    """Serialize ``meta`` + ``tensors`` into a standalone frame."""
    table, arrays, payload_len = _tensor_table(tensors or {})
    header = _header_bytes(meta, table)
    out = bytearray(_PREFIX + len(header) + payload_len)
    _write_into(memoryview(out), header, table, arrays)
    return bytes(out)


def encode_into(buf: memoryview,
                meta: Mapping[str, Any] | None = None,
                tensors: Mapping[str, np.ndarray] | None = None) -> int:
    """Write a frame directly into ``buf`` (e.g. an shm slot).

    Each tensor is copied exactly once, straight into the destination
    buffer — no intermediate ``bytes`` join. Returns the frame length.
    Raises :class:`WireError` if the frame does not fit.
    """
    table, arrays, payload_len = _tensor_table(tensors or {})
    header = _header_bytes(meta, table)
    total = _PREFIX + len(header) + payload_len
    if total > len(buf):
        raise WireError(
            f"frame needs {total} bytes but the slab slot holds only "
            f"{len(buf)}")
    _write_into(buf, header, table, arrays)
    return total


def _write_into(buf: memoryview, header: bytes, table: list[dict],
                arrays: list[np.ndarray]) -> None:
    buf[:len(MAGIC)] = MAGIC
    _HLEN.pack_into(buf, len(MAGIC), len(header))
    buf[_PREFIX:_PREFIX + len(header)] = header
    payload_start = _PREFIX + len(header)
    for spec, array in zip(table, arrays):
        start = payload_start + spec["offset"]
        dst = np.frombuffer(
            buf[start:start + spec["nbytes"]], dtype=array.dtype,
        ).reshape(array.shape)
        np.copyto(dst, array, casting="no")


def decode_frame(data, *, copy: bool = False,
                 ) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
    """Parse a frame into ``(meta, tensors)``.

    With ``copy=False`` the returned arrays are views into ``data``
    (read-only for ``bytes``, writable for a writable ``memoryview`` —
    that is how shm workers mutate state in place). ``copy=True``
    detaches them, for callers that outlive the buffer.

    Raises :class:`WireError` on any malformed input: wrong magic,
    unsupported version, truncated header or payload, a tensor table
    whose offsets/shapes do not add up, or unknown dtypes.
    """
    view = memoryview(data)
    if len(view) < _PREFIX:
        raise WireError(
            f"frame truncated: {len(view)} bytes is shorter than the "
            f"fixed framing")
    if bytes(view[:len(MAGIC)]) != MAGIC:
        raise WireError("not a step frame (bad magic)")
    (hlen,) = _HLEN.unpack_from(view, len(MAGIC))
    if hlen > MAX_HEADER_BYTES:
        raise WireError(
            f"frame header claims {hlen} bytes; the wire caps headers at "
            f"{MAX_HEADER_BYTES}")
    payload_start = _PREFIX + hlen
    if payload_start > len(view):
        raise WireError("frame header overruns the buffer")
    try:
        header = json.loads(bytes(view[_PREFIX:payload_start]))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise WireError(f"garbled frame header: {exc}") from None
    if not isinstance(header, dict):
        raise WireError("frame header is not a JSON object")
    version = header.get("version")
    if version != WIRE_VERSION:
        raise WireError(
            f"frame version {version!r} not supported by this runtime "
            f"(speaks {WIRE_VERSION})")
    meta = header.get("meta")
    if not isinstance(meta, dict):
        raise WireError("frame meta is not a JSON object")
    table = header.get("tensors")
    if not isinstance(table, list):
        raise WireError("frame tensor table is not a list")
    payload = view[payload_start:]
    tensors: dict[str, np.ndarray] = {}
    for spec in table:
        tensors.update(_decode_tensor(spec, payload, copy))
    return meta, tensors


def _decode_tensor(spec: Any, payload: memoryview, copy: bool):
    if not isinstance(spec, dict):
        raise WireError("tensor table entry is not a JSON object")
    name = spec.get("name")
    if not isinstance(name, str) or not name:
        raise WireError("tensor table entry is missing a name")
    try:
        offset = int(spec["offset"])
        nbytes = int(spec["nbytes"])
        shape = tuple(int(d) for d in spec["shape"])
        dtype = np.dtype(str(spec["dtype"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"tensor {name!r} has a garbled table entry: "
                        f"{exc}") from None
    if dtype.hasobject:
        raise WireError(f"tensor {name!r} declares an object dtype")
    if offset < 0 or nbytes < 0 or any(d < 0 for d in shape):
        raise WireError(f"tensor {name!r} declares negative extents")
    count = 1
    for d in shape:
        count *= d
    if count * dtype.itemsize != nbytes:
        raise WireError(
            f"tensor {name!r} declares {nbytes} bytes but shape "
            f"{shape} x {dtype.str} needs {count * dtype.itemsize}")
    if offset + nbytes > len(payload):
        raise WireError(f"tensor {name!r} overruns the frame payload")
    segment = payload[offset:offset + nbytes]
    array = np.frombuffer(segment, dtype=dtype).reshape(shape)
    return {name: array.copy() if copy else array}
