"""`FineTuneService`: the multi-tenant fine-tuning front door.

Composition of the serving layer (paper workflow, made long-lived):

* :class:`ProgramFamily` — one fine-tuning *configuration* (model builder,
  scheme, optimizer, options, loss). Owns the per-batch-size program
  variants, fetched through the shared :class:`ProgramCache` under
  canonical keys from :mod:`repro.serve.keys`.
* :class:`~repro.serve.sessions.SessionManager` — per-tenant mutable state
  over the shared programs.
* :class:`~repro.serve.scheduler.BatchScheduler` — coalesces single-example
  step requests into bucketed micro-batches on a worker pool.
* :class:`~repro.serve.metrics.MetricsRegistry` — throughput, cache hit
  rate, latency quantiles, per-program peak transient bytes.

The model argument is a registry key (``"mcunet_micro"``) or a callable
``batch -> Graph`` (with an explicit ``model_id``), because micro-batching
needs the forward graph rebuilt at each bucket's batch size.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import threading
from concurrent.futures import Future
from dataclasses import asdict, replace
from pathlib import Path
from time import monotonic, perf_counter
from typing import Any, Callable

import numpy as np

from ..errors import CheckpointError, DeadlineExpired, ServeError
from ..ir import Graph
from ..models import build_model, paper_scheme
from ..obs import TraceCarrier, TraceContext, Tracer, render_prometheus
from ..runtime.compiler import CompileOptions, compile_training
from ..sparse import UpdateScheme, bias_only, full_update
from ..train.optim import SGD, Adam, Lion, OptimizerSpec
from .cache import CacheEntry, ProgramCache
from .checkpoint import (CheckpointStore, SessionCheckpoint,
                         checkpoint_to_wire, dump_checkpoint,
                         load_checkpoint)
from .keys import program_key
from .metrics import Gauge, MetricsRegistry
from .scheduler import BatchScheduler, StepRequest, StepResult
from .sessions import SessionManager, TenantSession
from .workers import ProcessPoolEngine

logger = logging.getLogger("repro.serve")

#: optimizer reconstruction table for checkpoint restore
_OPTIMIZERS: dict[str, type] = {"sgd": SGD, "adam": Adam, "lion": Lion}

#: step-execution backends: in-process thread pool (shares the GIL) or a
#: pool of plan-executing worker processes fed from the artifact cache
BACKENDS = ("thread", "process")

#: named scheme resolvers usable as ``scheme="paper"`` etc.
SCHEME_RESOLVERS: dict[str, Callable[[Graph], UpdateScheme]] = {
    "paper": paper_scheme,
    "full": full_update,
    "bias_only": bias_only,
}


class ProgramFamily:
    """One fine-tuning configuration and its cached program variants."""

    def __init__(self, service: "FineTuneService",
                 build: Callable[[int], Graph],
                 model_id: str,
                 scheme: UpdateScheme,
                 optimizer: OptimizerSpec,
                 options: CompileOptions,
                 loss: str,
                 logits: str | None,
                 forward_1: Graph | None = None) -> None:
        self._service = service
        self._build = build
        self.model_id = model_id
        self.scheme = scheme
        self.optimizer = optimizer
        self.options = options
        self.loss = loss
        self.logits = logits
        #: JSON description of how to rebuild this family in a fresh
        #: process (set by the service right after construction; embedded
        #: in session checkpoints)
        self.restore_config: dict[str, Any] | None = None
        self._lock = threading.Lock()
        #: bucket batch size -> canonical program key (forward graphs are
        #: rebuilt and fingerprinted once per bucket, not per request)
        self._bucket_keys: dict[int, str] = {}
        self._forwards: dict[int, Graph] = {}
        if forward_1 is not None:
            self._forwards[1] = forward_1

        # The template variant pins the family identity, the mutable-state
        # template sessions copy, and the feed names/shapes.
        entry = self.bucket(1)
        program = entry.program
        self.key = entry.key
        self.labels_name: str = program.meta["labels"]
        self.loss_name: str = program.meta["loss"]
        data_inputs = [name for name in program.graph.inputs
                       if name != self.labels_name]
        if len(data_inputs) != 1:
            raise ServeError(
                f"model {model_id!r} must have exactly one data input, "
                f"got {data_inputs}"
            )
        self.input_name = data_inputs[0]
        self.example_shape = tuple(
            program.graph.spec(self.input_name).shape[1:])
        self.example_dtype = program.graph.spec(self.input_name).dtype.np
        self.label_shape = tuple(
            program.graph.spec(self.labels_name).shape[1:])
        self.label_dtype = program.graph.spec(self.labels_name).dtype.np
        logits_name = program.meta["logits"]
        self.num_classes = int(program.graph.spec(logits_name).shape[-1])
        self._mutable_names = sorted(program.mutable_state_names())
        self._template = {name: program.state[name]
                          for name in self._mutable_names}

    def bucket(self, batch: int) -> CacheEntry:
        """The compiled program variant for micro-batches of ``batch``."""
        with self._lock:
            key = self._bucket_keys.get(batch)
            forward = self._forwards.get(batch)
        if key is None:
            if forward is None:
                forward = self._build(batch)
            key = program_key(forward, scheme=self.scheme,
                              optimizer=self.optimizer, options=self.options,
                              loss=self.loss, logits=self.logits)
            with self._lock:
                self._bucket_keys[batch] = key
                self._forwards[batch] = forward
        cache = self._service.cache
        return cache.get_or_build(
            key, lambda: self._compile(forward, key))

    def _compile(self, forward: Graph, key: str):
        began = perf_counter()
        program = compile_training(
            forward, loss=self.loss, logits=self.logits,
            optimizer=self.optimizer, scheme=self.scheme,
            options=self.options)
        # Lowering happens here with compilation (compile_training prebuilds
        # it; this keeps the invariant even for custom options) so cached
        # variants always ship an ExecutionPlan and no tenant's first step
        # pays for plan construction.
        program.plan()
        self._service._record_compile(self, key, program,
                                      (perf_counter() - began) * 1e3)
        return program

    def template_state(self) -> dict[str, np.ndarray]:
        """The initial mutable state new sessions copy (shared template)."""
        return self._template

    def mutable_names(self) -> list[str]:
        return list(self._mutable_names)


class FineTuneService:
    """Long-lived, multi-tenant serving layer over the one-shot compiler."""

    def __init__(self, *, cache_capacity: int = 32, max_batch: int = 8,
                 workers: int = 2, backend: str = "thread",
                 cache_dir: str | Path | None = None,
                 max_sessions: int | None = None,
                 session_ttl: float | None = None,
                 metrics: MetricsRegistry | None = None,
                 trace_sample: int = 0,
                 slow_ms: float | None = None,
                 trace_ring: int = 4096,
                 checkpoint_dir: str | Path | None = None,
                 checkpoint_every: int = 0,
                 keep_checkpoints: int = 3,
                 worker_channel: str = "shm",
                 shm_slot_bytes: int | None = None,
                 batch_hold_ms: float = 0.0) -> None:
        if backend not in BACKENDS:
            raise ServeError(
                f"unknown serve backend {backend!r}; options: {BACKENDS}")
        self.backend = backend
        self.metrics = metrics or MetricsRegistry()
        #: the observability spine: request spans, the /v1/trace ring,
        #: sampled kernel timing (1 in trace_sample batches; 0 = off),
        #: and slow-request logging past slow_ms
        self.tracer = Tracer(self.metrics, ring_capacity=trace_ring,
                             sample_every=trace_sample, slow_ms=slow_ms)
        # The process backend feeds workers from persisted plan artifacts;
        # without a caller-provided cache_dir it uses a service-lifetime
        # temp dir (workers still skip compilation, persistence just does
        # not outlive the service).
        self._owned_cache_dir: tempfile.TemporaryDirectory | None = None
        if backend == "process" and cache_dir is None:
            self._owned_cache_dir = tempfile.TemporaryDirectory(
                prefix="repro-serve-cache-")
            cache_dir = self._owned_cache_dir.name
        self.cache = ProgramCache(capacity=cache_capacity,
                                  cache_dir=cache_dir)
        self._sessions_evicted = self.metrics.counter(
            "serve.sessions_evicted", "tenant sessions evicted (TTL/LRU)")
        self.sessions = SessionManager(
            max_sessions=max_sessions, ttl=session_ttl,
            busy=lambda session_id: self.scheduler.pending(session_id),
            on_evict=lambda session: self._sessions_evicted.inc())
        self._worker_restarts = self.metrics.counter(
            "serve.worker_restarts",
            "process pools rebuilt after a worker crash")
        # Durability: the versioned checkpoint store (None = checkpointing
        # only through explicit checkpoint_bytes downloads), auto-
        # checkpoint cadence, and the replay/deadline counters.
        if checkpoint_every < 0:
            raise ServeError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}")
        self.checkpoint_every = checkpoint_every
        self.checkpoints = CheckpointStore(
            checkpoint_dir, keep=keep_checkpoints) \
            if checkpoint_dir is not None else None
        self._checkpoints_written = self.metrics.counter(
            "serve.checkpoints_written",
            "session checkpoints persisted (manual + auto)")
        self._checkpoints_restored = self.metrics.counter(
            "serve.checkpoints_restored",
            "sessions restored from a checkpoint")
        self._checkpoint_errors = self.metrics.counter(
            "serve.checkpoint_errors",
            "auto-checkpoint writes that failed (the step still succeeded)")
        self._steps_replayed = self.metrics.counter(
            "serve.steps_replayed",
            "retried steps answered from the idempotency window "
            "(no second optimizer update)")
        # shm_slot_bytes=None lets the engine size ring slots from each
        # model's actual state+feeds frame (growing on demand); an explicit
        # value pins the slot size (oversized payloads fall back to pickle).
        self.engine = ProcessPoolEngine(
            workers=workers, on_restart=self._worker_restarts.inc,
            channel=worker_channel, metrics=self.metrics,
            slot_bytes=shm_slot_bytes) \
            if backend == "process" else None
        self.scheduler = BatchScheduler(
            self._run_batch, max_batch=max_batch, workers=workers,
            metrics=self.metrics, batch_hold_ms=batch_hold_ms)
        # One counter shared by every shedding stage (service submit,
        # scheduler cut, gateway admission): the scheduler registered it,
        # the registry hands back the same object.
        self._deadline_expired = self.metrics.counter(
            "serve.deadline_expired")
        self._families: dict[str, ProgramFamily] = {}
        self._family_lock = threading.Lock()
        self._closed = False

        self._steps_total = self.metrics.counter(
            "serve.steps_total", "optimizer updates executed")
        self._examples_total = self.metrics.counter(
            "serve.examples_total", "training examples consumed")
        self._step_latency = self.metrics.histogram(
            "serve.step_latency_ms", "executor wall time per micro-batch")
        self._step_allocs = self.metrics.histogram(
            "serve.step_fresh_allocs",
            "fresh output buffers per step (0-ish once arenas are warm)")
        self._compile_latency = self.metrics.histogram(
            "serve.compile_ms", "compile wall time per cache miss")
        # Satellite of the memory story: the runtime-measured peak
        # transient bytes of the most recent step (the per-program
        # high-water marks live on the cache entries).
        self._step_peak_bytes = self.metrics.gauge(
            "serve.step_peak_transient_bytes",
            "peak transient bytes of the most recent executed step")
        self.metrics.callback_gauge(
            "serve.trace_spans_recorded",
            lambda: float(self.tracer.spans_recorded),
            "request spans published to the trace ring")
        self.metrics.callback_gauge(
            "serve.trace_kernel_samples",
            lambda: float(self.tracer.kernel_samples),
            "sampled per-instruction kernel timings recorded")
        self.metrics.callback_gauge(
            "serve.slow_requests",
            lambda: float(self.tracer.slow_requests),
            "requests logged for exceeding the slow-ms threshold")
        # Callback gauges so these can never go stale: TTL sweeps retire
        # sessions without passing through create/close, and the gateway
        # reads queue depth (registered by the scheduler, which owns the
        # number) between metric renders for admission control.
        self.metrics.callback_gauge(
            "serve.sessions_live", lambda: float(len(self.sessions)),
            "open tenant sessions (live)")

    # -- session lifecycle ---------------------------------------------------

    def create_session(
        self,
        model: str | Callable[[int], Graph],
        *,
        scheme: UpdateScheme | str = "paper",
        optimizer: OptimizerSpec | None = None,
        options: CompileOptions | None = None,
        loss: str = "softmax_ce",
        logits: str | None = None,
        tenant: str | None = None,
        weights: dict[str, np.ndarray] | None = None,
        model_kwargs: dict[str, Any] | None = None,
        model_id: str | None = None,
    ) -> TenantSession:
        """Open a tenant session; compiles (or reuses) its program family.

        ``model`` is a registry key or a ``batch -> Graph`` callable;
        callables need an explicit ``model_id`` for cache identity.
        ``weights`` optionally seeds the session's *mutable* state (the
        scheme's updated parameters and optimizer slots).
        """
        self._check_open()
        family = self._family_for(model, scheme=scheme, optimizer=optimizer,
                                  options=options, loss=loss, logits=logits,
                                  model_kwargs=model_kwargs,
                                  model_id=model_id)
        return self.sessions.create(family, tenant=tenant, weights=weights)

    def close_session(self, session_id: str) -> dict[str, np.ndarray]:
        """Retire a session; returns its final mutable state snapshot.

        Refuses while the session still has queued or in-flight step
        requests — a snapshot taken mid-stream would not be final. Resolve
        or await the outstanding futures (or :meth:`drain`) first.

        The check is best-effort against *concurrent* submitters: a
        ``submit`` for the same session racing this call can slip a step
        in after the snapshot. Don't do that — a tenant closing its own
        session must stop submitting first (await its futures); the
        serving layer only guarantees that tenants can't affect *each
        other*.
        """
        session = self.sessions.get(session_id)
        if self.scheduler.pending(session_id):
            raise ServeError(
                f"session {session_id} has outstanding step requests; "
                f"await its futures or drain() before closing"
            )
        snapshot = session.snapshot()
        self.sessions.close(session_id)
        return snapshot

    def snapshot(self, session_id: str) -> dict[str, np.ndarray]:
        return self.sessions.get(session_id).snapshot()

    def load_weights(self, session_id: str,
                     weights: dict[str, np.ndarray]) -> None:
        self.sessions.get(session_id).load(weights)

    # -- durability: checkpoint / restore ------------------------------------

    def _checkpoint_payload(self, session: TenantSession) -> SessionCheckpoint:
        """Assemble one consistent checkpoint of ``session``.

        Taken under the session lock, so it never interleaves with a
        step's in-place state mutation (the scheduler serializes steps
        per session; the lock covers direct library callers too).
        """
        family = session.family
        if family.restore_config is None:
            raise ServeError(
                f"session {session.id}: its program family predates "
                f"checkpoint support and records no restore config")
        with session.lock:
            state = {name: array.copy()
                     for name, array in session.state.items()}
            meta = {
                "id": session.id,
                "tenant": session.tenant,
                "step_seq": session.step_seq,
                "steps": session.steps,
                "examples": session.examples,
                "last_loss": session.last_loss,
            }
        idempotency = {key: asdict(result)
                       for key, result in
                       session.idempotency_window().items()}
        return SessionCheckpoint(session=meta,
                                 family=dict(family.restore_config),
                                 state=state, idempotency=idempotency)

    def checkpoint_session(self, session_id: str) -> dict[str, Any]:
        """Persist one checkpoint version to the store; returns its meta.

        Requires a ``checkpoint_dir``; for a download without server-side
        persistence use :meth:`checkpoint_bytes`.
        """
        if self.checkpoints is None:
            raise ServeError(
                "checkpointing to disk is disabled: the service was "
                "built without a checkpoint_dir")
        session = self.sessions.get(session_id)
        ckpt = self._checkpoint_payload(session)
        path = self.checkpoints.save(ckpt)
        with session.lock:
            session.steps_since_checkpoint = 0
        self._checkpoints_written.inc()
        return {
            "session_id": session.id,
            "step_seq": ckpt.step_seq,
            "state_bytes": ckpt.state_bytes(),
            "path": str(path),
            "versions": self.checkpoints.versions(session.id),
        }

    def checkpoint_bytes(self, session_id: str) -> bytes:
        """The session's current checkpoint, serialized (download/export)."""
        session = self.sessions.get(session_id)
        return dump_checkpoint(self._checkpoint_payload(session))

    def checkpoint_frame(self, session_id: str) -> bytes:
        """The current checkpoint as one wire frame (binary download for
        clients that negotiated :data:`repro.serve.wire.CONTENT_TYPE`)."""
        session = self.sessions.get(session_id)
        return checkpoint_to_wire(self._checkpoint_payload(session))

    def restore_session(self,
                        data: bytes | SessionCheckpoint | None = None, *,
                        session_id: str | None = None,
                        version: int | None = None,
                        model: Callable[[int], Graph] | None = None,
                        options: CompileOptions | None = None
                        ) -> TenantSession:
        """Resurrect a session from a checkpoint, under its original id.

        The checkpoint comes either as ``data`` (bytes produced by
        :meth:`checkpoint_bytes` / the gateway download route, or an
        already-decoded :class:`SessionCheckpoint` — the gateway's
        wire-frame upload path decodes before calling in) or by
        ``session_id`` from the store (newest intact version, or exactly
        ``version``). The restored overlay is byte-identical to the
        checkpointed one; counters and the idempotency window carry over,
        so a client retrying a step acked before the crash still gets the
        recorded result instead of a double-apply.

        ``model`` is only needed for families built from a callable (the
        checkpoint cannot serialize those); registry-key families rebuild
        themselves. ``options`` defaults to the family's compile options
        at checkpoint time semantics (i.e. the service default).
        """
        self._check_open()
        if isinstance(data, SessionCheckpoint):
            ckpt = data
        elif data is not None:
            ckpt = load_checkpoint(data)
        else:
            if self.checkpoints is None:
                raise ServeError(
                    "no checkpoint bytes given and the service has no "
                    "checkpoint_dir to restore from")
            if session_id is None:
                raise ServeError(
                    "restore needs checkpoint bytes or a session_id")
            ckpt = self.checkpoints.load(session_id, version=version)
        # Fail fast on the one conflict a caller can do nothing about by
        # changing arguments — before paying for the family rebuild.
        if any(live.id == ckpt.session_id for live in self.sessions):
            raise ServeError(
                f"session {ckpt.session_id!r} is already open; close it "
                f"before restoring a checkpoint over it")
        config = ckpt.family
        model_arg: Any = config.get("model") or model
        if model_arg is None:
            raise ServeError(
                f"checkpointed session {ckpt.session_id!r} was built from "
                f"a callable model ({config.get('model_id')!r}); pass the "
                f"builder via restore_session(model=...)")
        optim_cfg = config.get("optimizer") or {}
        optim_cls = _OPTIMIZERS.get(optim_cfg.get("family", ""))
        if optim_cls is None:
            raise CheckpointError(
                f"checkpoint names unknown optimizer family "
                f"{optim_cfg.get('family')!r}")
        scheme_cfg = config.get("scheme") or {}
        family = self._family_for(
            model_arg,
            scheme=UpdateScheme(name=scheme_cfg.get("name", "restored"),
                                updates=dict(scheme_cfg.get("updates", {}))),
            optimizer=optim_cls(**optim_cfg.get("params", {})),
            options=options,
            loss=config.get("loss", "softmax_ce"),
            logits=config.get("logits"),
            model_kwargs=config.get("model_kwargs"),
            model_id=config.get("model_id"),
        )
        session = TenantSession(
            ckpt.session_id, str(ckpt.session.get("tenant") or
                                 ckpt.session_id),
            family, family.template_state())
        missing = set(session.state) - set(ckpt.state)
        extra = set(ckpt.state) - set(session.state)
        if missing or extra:
            raise CheckpointError(
                f"checkpoint state does not match the family's mutable "
                f"state (missing {sorted(missing)}, unexpected "
                f"{sorted(extra)}); was the model or scheme changed?")
        session.load(ckpt.state)
        session.restore_counters(
            step_seq=ckpt.step_seq,
            steps=int(ckpt.session.get("steps", ckpt.step_seq)),
            examples=int(ckpt.session.get("examples", 0)),
            last_loss=float(ckpt.session.get("last_loss", float("nan"))),
        )
        session.restore_idempotency({
            key: StepResult(**fields)
            for key, fields in ckpt.idempotency.items()
        })
        self.sessions.adopt(session)
        self._checkpoints_restored.inc()
        return session

    # -- stepping ------------------------------------------------------------

    def submit(self, session_id: str, x: np.ndarray,
               y: np.ndarray,
               trace: TraceContext | None = None,
               deadline: float | None = None,
               idempotency_key: str | None = None) -> Future:
        """Enqueue one single-example step; returns a Future[StepResult].

        Every request carries a trace context: the gateway passes the one
        it minted at ingress (so the request ID in the response headers
        matches the spans), and direct library callers get one minted
        here. The resolved StepResult's ``timings`` holds this request's
        per-stage span durations.

        ``deadline`` is absolute on ``time.monotonic()``: already-expired
        requests raise :class:`~repro.errors.DeadlineExpired` here, and
        ones that expire while queued are shed at batch-cut time.

        ``idempotency_key`` makes the step safe to retry: a key already
        in the session's dedupe window returns an immediately-resolved
        future carrying the recorded result (``replayed=True``, no second
        optimizer update); a key still in flight returns the in-flight
        future; otherwise the step executes and its result is recorded
        under the key before the future resolves.
        """
        entered = perf_counter()
        self._check_open()
        if deadline is not None and monotonic() > deadline:
            self._deadline_expired.inc()
            raise DeadlineExpired(
                "deadline passed before the step was enqueued")
        # Opportunistic TTL sweep on the request path (self-throttled to
        # ~1/s inside the manager; a no-op without a session TTL).
        self.sessions.sweep()
        session = self.sessions.get(session_id)
        family = session.family
        x = np.asarray(x)
        y = np.asarray(y)
        if x.shape != family.example_shape:
            raise ServeError(
                f"example for {family.model_id!r} must have shape "
                f"{family.example_shape}, got {x.shape} (submit one "
                f"example per request; the scheduler does the batching)"
            )
        if y.shape != family.label_shape:
            raise ServeError(
                f"label must have shape {family.label_shape}, got {y.shape}"
            )
        if trace is None:
            trace = self.tracer.trace(session_id=session_id,
                                      tenant=session.tenant)
        x = x.astype(family.example_dtype, copy=False)
        y = y.astype(family.label_dtype, copy=False)
        if idempotency_key is None:
            # queue_wait is backdated to service entry so shape validation
            # and dtype copies are attributed to a span instead of falling
            # into the gap between admission and the scheduler queue.
            return self.scheduler.submit(session, x, y, trace=trace,
                                         submitted_at=entered,
                                         deadline=deadline)
        # The window probe, the in-flight probe, and the enqueue must be
        # one atomic step against a concurrent retry with the same key —
        # otherwise two retries racing a miss both enqueue and the step
        # applies twice. scheduler.submit is a lock + deque append, cheap
        # enough to run under the session's idempotency lock.
        with session.idem_lock:
            recorded = session.recall(idempotency_key)
            if recorded is not None:
                self._steps_replayed.inc()
                future: Future = Future()
                future.set_result(replace(recorded, replayed=True))
                return future
            pending = session.pending_future(idempotency_key)
            if pending is not None and not pending.cancelled():
                return pending
            future = self.scheduler.submit(session, x, y, trace=trace,
                                           submitted_at=entered,
                                           deadline=deadline,
                                           idem_key=idempotency_key)
            session.note_pending(idempotency_key, future)
            return future

    def step(self, session_id: str, x: np.ndarray,
             y: np.ndarray) -> StepResult:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(session_id, x, y).result()

    def drain(self, timeout: float | None = None) -> bool:
        return self.scheduler.drain(timeout=timeout)

    def warm(self, session_id: str, batches: list[int] | None = None) -> None:
        """Precompile program variants so first requests hit the cache."""
        family = self.sessions.get(session_id).family
        from .scheduler import bucket_sizes
        for batch in batches or bucket_sizes(self.scheduler.max_batch):
            family.bucket(batch)

    # -- reporting -----------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Snapshot of service metrics, cache stats included."""
        self._sync_cache_metrics()
        return self.metrics.as_dict()

    def render_metrics(self, title: str = "repro.serve metrics") -> str:
        self._sync_cache_metrics()
        return self.metrics.render(title=title)

    def prometheus_metrics(self) -> str:
        """Prometheus text exposition of the full registry.

        Histograms publish real cumulative ``le`` buckets (all-time, not
        the windowed quantile ring the human-readable render shows).
        """
        self._sync_cache_metrics()
        return render_prometheus(self.metrics)

    def _sync_cache_metrics(self) -> None:
        stats = self.cache.stats
        self.metrics.gauge(
            "serve.cache.entries", "live cached programs").set(len(self.cache))
        self.metrics.gauge("serve.cache.hits").set(stats.hits)
        self.metrics.gauge("serve.cache.misses").set(stats.misses)
        self.metrics.gauge("serve.cache.evictions").set(stats.evictions)
        self.metrics.gauge("serve.cache.hit_rate").set(stats.hit_rate)
        self.metrics.gauge(
            "serve.cache.compiles",
            "programs actually compiled in this process").set(stats.compiles)
        self.metrics.gauge(
            "serve.cache.disk_hits",
            "misses served by binding a persisted artifact").set(
                stats.disk_hits)
        self.metrics.gauge(
            "serve.cache.disk_writes").set(stats.disk_writes)
        self.metrics.gauge(
            "serve.cache.prebuilt_plans_dropped",
            "evictions that discarded an already-lowered plan").set(
                stats.prebuilt_plans_dropped)
        self.metrics.gauge(
            "serve.cache.plan_version_miss",
            "persisted artifacts recompiled due to plan version skew").set(
                stats.plan_version_miss)
        self.metrics.gauge(
            "serve.cache.compile_seconds_total").set(
                stats.compile_seconds_total)
        self.metrics.gauge(
            "serve.cache.corrupt_entries",
            "persisted artifacts quarantined as corrupt").set(
                stats.corrupt_entries)
        self.metrics.gauge(
            "serve.cache.verify_rejects",
            "persisted artifacts quarantined by the plan verifier").set(
                stats.verify_rejects)
        if self.checkpoints is not None:
            self.metrics.gauge(
                "serve.checkpoint.store_writes",
                "checkpoint files written by the store").set(
                    self.checkpoints.writes)
            self.metrics.gauge(
                "serve.checkpoint.store_corrupt",
                "checkpoint files quarantined as corrupt").set(
                    self.checkpoints.corrupt)
        # serve.queue_depth and serve.sessions_live are callback gauges
        # registered at construction: they sample live state on every
        # read and need no refresh here.
        per_program: dict[str, float] = {}
        for entry in self.cache.entries():
            short = entry.key[:12]
            gauge = entry.meta.get("peak_gauge")
            if gauge is not None:
                per_program[
                    f"serve.peak_transient_bytes[program={short}]"
                ] = gauge.value
            report = entry.program.meta.get("report")
            if report is not None:
                per_program[
                    f"serve.compiled_peak_transient_bytes[program={short}]"
                ] = report.peak_transient_bytes
        self.metrics.replace_prefixed(
            ("serve.peak_transient_bytes[",
             "serve.compiled_peak_transient_bytes["), per_program)

    # -- internals -----------------------------------------------------------

    def _family_for(self, model, *, scheme, optimizer, options, loss,
                    logits, model_kwargs, model_id) -> ProgramFamily:
        optimizer = optimizer or SGD(lr=0.01)
        options = options or CompileOptions()
        model_kwargs = dict(model_kwargs or {})
        if callable(model) and not isinstance(model, str):
            if model_id is None:
                raise ServeError(
                    "callable model builders need an explicit model_id"
                )
            build = lambda batch: model(batch, **model_kwargs)  # noqa: E731
        else:
            model_id = model_id or str(model)
            build = lambda batch: build_model(  # noqa: E731
                model, batch=batch, **model_kwargs)

        # Cheap pre-key so identical create_session calls reuse the family
        # without rebuilding/fingerprinting the forward graph every time.
        probe = json.dumps({
            "model_id": model_id,
            "kwargs": {k: repr(v) for k, v in sorted(model_kwargs.items())},
            "scheme": scheme if isinstance(scheme, str)
            else [scheme.name, sorted(scheme.updates.items())],
            "optimizer": repr(optimizer),
            "options": repr(options),
            "loss": loss,
            "logits": logits,
        }, sort_keys=True)
        with self._family_lock:
            family = self._families.get(probe)
        if family is not None:
            return family

        # Built once, reused both for named-scheme resolution and as the
        # family's bucket-1 template graph.
        forward_1 = build(1)
        if isinstance(scheme, str):
            try:
                resolver = SCHEME_RESOLVERS[scheme]
            except KeyError:
                raise ServeError(
                    f"unknown scheme {scheme!r}; named schemes: "
                    f"{sorted(SCHEME_RESOLVERS)}"
                ) from None
            scheme = resolver(forward_1)
        family = ProgramFamily(self, build, model_id, scheme, optimizer,
                               options, loss, logits, forward_1=forward_1)
        # What a checkpoint needs to rebuild this family in a fresh
        # process. Registry-key models round-trip completely; callable
        # builders record model=None, and restore then requires the
        # caller to supply the callable again (checked against model_id).
        family.restore_config = {
            "model": model if isinstance(model, str) else None,
            "model_id": model_id,
            "model_kwargs": model_kwargs,
            "scheme": {"name": scheme.name, "updates": dict(scheme.updates)},
            "optimizer": {"family": optimizer.family,
                          "params": asdict(optimizer)},
            "loss": loss,
            "logits": logits,
        }
        with self._family_lock:
            # Two threads may have built the family concurrently; the
            # canonical program key decides the winner so both end up
            # sharing one object (and one cache entry either way).
            existing = self._families.get(probe)
            if existing is not None:
                return existing
            self._families[probe] = family
        return family

    def _run_batch(self, session: TenantSession,
                   batch: list[StepRequest]) -> StepResult:
        family = session.family
        entry = family.bucket(len(batch))
        if len(batch) == 1:
            x = batch[0].x[None, ...]
            y = batch[0].y[None, ...]
        else:
            x = np.stack([request.x for request in batch])
            y = np.stack([request.y for request in batch])
        feeds = {family.input_name: x, family.labels_name: y}
        traces = [request.trace for request in batch
                  if request.trace is not None]
        trace_ids = tuple(t.request_id for t in traces)
        sample = self.tracer.should_sample()
        kernel_events: list[tuple[str, str, float, float]] = []
        began = perf_counter()
        if self.engine is not None:
            # Data-plane step: ship the session's mutable overlay and the
            # micro-batch to a worker holding the bound plan artifact; copy
            # the updated overlay back *into* the session arrays (never
            # rebind — snapshots and live views stay coherent). The trace
            # carrier rides along so the worker can stamp its events with
            # our request IDs; its observations come back *in the result*
            # (workers never share trace state, so a killed worker can't
            # tear the span ring).
            carrier = TraceCarrier(request_ids=trace_ids, sample=sample) \
                if trace_ids or sample else None
            with session.lock:
                fetched, new_state, peak_bytes, fresh_allocs, obs_payload = \
                    self.engine.run_step(
                        entry.meta.get("artifact_path"), entry.key,
                        session.state, feeds, fetch=(family.loss_name,),
                        trace=carrier)
                if new_state is not session.state:
                    # pickle channel: the worker mutated its own unpickled
                    # copies; land them back in the session arrays. The shm
                    # channel returns the session dict itself (the engine
                    # already copied the shared-memory views back).
                    for name, array in new_state.items():
                        session.state[name][...] = array
            loss = float(fetched[family.loss_name])
            if obs_payload is not None:
                self.tracer.record_worker_step(obs_payload, session.id)
        else:
            executor = session.executor_for(entry.key, entry.program)
            with session.lock:
                # instr_observer install/removal happens under the session
                # lock that also serializes executor.run, so a sampled
                # batch never records another batch's kernels.
                if sample:
                    executor.instr_observer = \
                        lambda instr, t0, t1: kernel_events.append(
                            (instr.node.op_type, instr.variant, t0, t1))
                try:
                    out = executor.run(feeds)
                finally:
                    executor.instr_observer = None
            loss = float(out[family.loss_name])
            peak_bytes = executor.peak_transient_bytes
            fresh_allocs = executor.last_step_fresh_allocs
            if kernel_events:
                self.tracer.record_kernels(
                    kernel_events, pid=os.getpid(),
                    request_ids=trace_ids, session_id=session.id)
        ended = perf_counter()
        elapsed_ms = (ended - began) * 1e3
        session.record(loss, len(batch))
        if self.checkpoints is not None and self.checkpoint_every \
                and session.steps_since_checkpoint >= self.checkpoint_every:
            # Auto-checkpoint rides the step that crossed the threshold;
            # a failed write must not fail the step (the update is already
            # applied) — count it and keep serving.
            try:
                self.checkpoint_session(session.id)
            except Exception as exc:  # noqa: BLE001 - durability best-effort
                self._checkpoint_errors.inc()
                logger.warning("auto-checkpoint of %s failed: %s",
                               session.id, exc)
        self._steps_total.inc()
        self._examples_total.inc(len(batch))
        self._step_latency.observe(elapsed_ms)
        self._step_allocs.observe(float(fresh_allocs))
        self._step_peak_bytes.set(float(peak_bytes))
        # High-water mark travels with the cache entry (and dies with it on
        # eviction); _sync_cache_metrics publishes only live entries, so
        # per-program gauge cardinality stays bounded by the cache.
        peak = entry.meta.setdefault(
            "peak_gauge", Gauge(f"peak[{entry.key[:12]}]"))
        peak.max(peak_bytes)
        for request in batch:
            if request.trace is None:
                continue
            # batch_wait: cut from the queue until the batch hit the
            # engine (bucket compile on a cold cache lands here too).
            request.trace.add("batch_wait", request.cut_at, began)
            request.trace.add("execute", began, ended)
            self.tracer.maybe_log_slow(
                request.trace, loss=loss, step=session.steps,
                batch_size=len(batch), program_key=entry.key[:12],
                peak_transient_bytes=int(peak_bytes))
        return StepResult(
            session_id=session.id,
            loss=loss,
            step=session.steps,
            batch_size=len(batch),
            program_key=entry.key,
        )

    def _record_compile(self, family: ProgramFamily, key: str, program,
                        elapsed_ms: float) -> None:
        self._compile_latency.observe(elapsed_ms)

    # -- lifecycle -----------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once close/shutdown has begun; submits are refused."""
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ServeError("service is closed")

    def close(self, wait: bool = True) -> None:
        self.shutdown(drain_timeout=None if wait else 0.0)

    def shutdown(self, drain_timeout: float | None = None) -> bool:
        """Close with a bound on how long queued work may hold us up.

        ``drain_timeout=None`` waits for every queued request (exactly
        ``close(wait=True)``); a finite timeout drains for at most that
        long and then cancels whatever is still queued. Either way every
        outstanding future is *settled* — resolved, failed, or cancelled,
        never left hanging — which is what a front door needs on Ctrl-C.
        Returns True when the queue drained fully.
        """
        if self._closed:
            return True
        # Refuse new service-level submits first so the drain below races
        # only work that was already accepted.
        self._closed = True
        if drain_timeout is None:
            self.scheduler.close(wait=True)
            drained = True
        else:
            drained = drain_timeout > 0 \
                and self.scheduler.drain(timeout=drain_timeout)
            self.scheduler.close(wait=drained)
        if self.engine is not None:
            self.engine.shutdown(wait=drained)
        if self._owned_cache_dir is not None:
            self._owned_cache_dir.cleanup()
            self._owned_cache_dir = None
        return drained

    def __enter__(self) -> "FineTuneService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
