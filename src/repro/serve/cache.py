"""The compiled-program cache: LRU + single-flight + cross-process persistence.

Compilation is the expensive part of the engine by design; the cache makes
it a once-per-configuration cost under concurrent traffic:

* **LRU eviction** bounded by entry count (programs are small on the Python
  side; the dominant memory is template state, which eviction releases).
  Evicting an entry also drops its prebuilt
  :class:`~repro.runtime.plan.ExecutionPlan`; that is counted
  (``prebuilt_plans_dropped``) rather than silent, and the plan is rebuilt
  eagerly the next time the key lands in the cache, so no tenant's first
  step after re-admission pays lowering latency.
* **Single-flight builds**: when many tenants miss on the same key at once,
  exactly one thread compiles while the rest wait on a per-key latch and
  then read the finished entry. No duplicate compile work, no lock held
  across compilation.
* **Cross-process persistence** (``cache_dir``): every built program is
  saved as a deployment artifact (:mod:`repro.deploy.artifact` — graph +
  weights + serialized execution plan) under its canonical key
  (:func:`repro.serve.keys.program_key`). A miss checks the directory
  before compiling, so worker processes and restarts skip compilation
  entirely — they *bind* the persisted plan against the kernel registry
  instead. Writes go to a temp directory followed by an atomic
  ``os.rename``, which is the cross-process analogue of single-flight:
  concurrent writers race, exactly one rename wins, losers discard their
  copy, and readers never observe a half-written artifact.

Cached programs carry their lowered
:class:`~repro.runtime.plan.ExecutionPlan`, so caching a program caches its
plan: every tenant session over a variant shares one instruction stream
through ``Program.with_state`` and only per-session registers/arenas
differ.
"""

from __future__ import annotations

import os
import shutil
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..errors import PlanVerifyError, PlanVersionError, ReproError
from ..runtime import Program
from .faults import FAULTS


@dataclass
class CacheEntry:
    """One cached compiled program plus bookkeeping."""

    key: str
    program: Program
    compile_seconds: float
    hits: int = 0
    #: True when the entry was bound from a persisted artifact instead of
    #: compiled in this process
    from_disk: bool = False
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def plan(self):
        """The variant's compiled execution plan (shared by its tenants)."""
        return self.program.plan()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: builds actually executed in this process (disk hits are not compiles)
    compiles: int = 0
    #: misses satisfied by binding a persisted artifact
    disk_hits: int = 0
    #: artifacts this process persisted to the cache directory
    disk_writes: int = 0
    #: evictions that discarded an entry whose plan was already lowered
    prebuilt_plans_dropped: int = 0
    #: persisted artifacts skipped because their embedded plan speaks a
    #: spec version this runtime does not (recompiled + overwritten)
    plan_version_miss: int = 0
    #: persisted artifacts that failed to load (corrupt/truncated) and
    #: were quarantined to ``<key>.corrupt`` before recompiling
    corrupt_entries: int = 0
    #: persisted artifacts rejected by the static plan verifier
    #: (:mod:`repro.analysis.planlint`) — quarantined like corrupt ones,
    #: but counted separately: a decodable-but-unsafe plan points at a
    #: miscompile or tampering, not bit rot
    verify_rejects: int = 0
    compile_seconds_total: float = 0.0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class ProgramCache:
    """Thread-safe LRU cache of compiled :class:`Program` objects.

    With ``cache_dir`` set, the cache is also a durable, cross-process
    program store (see the module docstring).
    """

    def __init__(self, capacity: int = 32,
                 cache_dir: str | Path | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self._lock = threading.Lock()
        self._building: dict[str, threading.Event] = {}
        self.stats = CacheStats()

    def get_or_build(self, key: str,
                     build: Callable[[], Program]) -> CacheEntry:
        """Return the entry for ``key``, compiling via ``build`` on a miss.

        A miss first consults the persistent cache directory (if
        configured); only a disk miss runs ``build``. Either way the
        entry's plan is prebuilt before it is published, so tenants never
        pay lowering latency — including after an eviction/re-admission
        cycle. Concurrent misses on one key run the load/build exactly
        once; the other callers block until it lands and count as hits
        (they did not pay for compilation). If the winning build raises,
        waiters retry — one of them becomes the new builder.
        """
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    entry.hits += 1
                    self.stats.hits += 1
                    return entry
                latch = self._building.get(key)
                if latch is None:
                    latch = threading.Event()
                    self._building[key] = latch
                    self.stats.misses += 1
                    break  # this thread builds
            latch.wait()
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    entry.hits += 1
                    self.stats.hits += 1
                    return entry
            # builder failed; loop and race to become the next builder

        began = time.perf_counter()
        try:
            program = self._load_persisted(key)
            from_disk = program is not None
            repair = False
            if program is None:
                # If an artifact dir exists but was unreadable, the rebuild
                # must overwrite it — otherwise the broken artifact would
                # keep feeding worker processes (and defeating warm
                # restarts) forever.
                repair = self.cache_dir is not None \
                    and (self.cache_dir / key).exists()
                program = build()
            # Lowering (or re-binding the persisted plan) happens here, with
            # the miss, never on a tenant's first step. This also repairs
            # the plan dropped when a previous eviction discarded the entry.
            program.plan()
            if not from_disk:
                # Verify before persisting/publishing (on by default here;
                # REPRO_VERIFY_PLANS=0 opts out): a miscompiled plan must
                # never land in the shared cache dir where every worker
                # process would bind it.
                from ..analysis.planlint import check_plan, verify_enabled
                if verify_enabled(default=True):
                    check_plan(program.plan_spec(), program,
                               stage="program cache build")
                self._persist(key, program, overwrite=repair)
        except BaseException:
            # Release waiters; with no entry present they retry the build.
            with self._lock:
                self._building.pop(key, None)
            latch.set()
            raise
        elapsed = time.perf_counter() - began
        entry = CacheEntry(key=key, program=program,
                           compile_seconds=0.0 if from_disk else elapsed,
                           from_disk=from_disk)
        if self.cache_dir is not None:
            # Resolved once here; the process backend reads it per batch
            # and must not pay a manifest stat on the hot step path.
            entry.meta["artifact_path"] = self.cache_dir / key
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            if from_disk:
                self.stats.disk_hits += 1
            else:
                self.stats.compiles += 1
                self.stats.compile_seconds_total += elapsed
            while len(self._entries) > self.capacity:
                _, evicted = self._entries.popitem(last=False)
                self._count_eviction(evicted)
            self._building.pop(key, None)
        latch.set()
        return entry

    # -- persistence ---------------------------------------------------------

    def artifact_path(self, key: str) -> Path | None:
        """Where ``key``'s persisted artifact lives (None: not persisted)."""
        if self.cache_dir is None:
            return None
        path = self.cache_dir / key
        return path if (path / "manifest.json").exists() else None

    def _load_persisted(self, key: str) -> Program | None:
        """Bind a persisted artifact for ``key``, or None on a disk miss.

        An unreadable artifact (corrupt or truncated) is treated as a
        miss: the broken directory is *quarantined* — renamed to
        ``<key>.corrupt`` and counted (``corrupt_entries``) — so it stops
        feeding worker processes, stays on disk for forensics, and the
        caller recompiles a clean replacement. A plan whose spec version
        this runtime does not speak is the same miss but is counted
        separately (``plan_version_miss``) and not quarantined: it
        signals a runtime upgrade/downgrade against a warm cache dir, not
        corruption.
        """
        if self.cache_dir is None:
            return None
        path = self.cache_dir / key
        if not (path / "manifest.json").exists():
            return None
        from ..deploy.artifact import load_artifact

        try:
            FAULTS.fire("cache.artifact_read", key=key, path=str(path))
            return load_artifact(path).program
        except PlanVersionError:
            self.stats.plan_version_miss += 1
            return None
        except PlanVerifyError:
            # The plan decoded but the verifier proved it unsafe to run.
            # Same quarantine as corruption (never read it again, keep it
            # for forensics), separate counter: this is a miscompile or
            # tampering signal, not bit rot.
            with self._lock:
                self.stats.verify_rejects += 1
            self._quarantine(key, path)
            return None
        except ReproError:
            self._quarantine(key, path)
            return None

    def _quarantine(self, key: str, path: Path) -> None:
        """Move a corrupt artifact aside so it can never be read again."""
        with self._lock:
            self.stats.corrupt_entries += 1
        try:
            os.replace(path, path.with_name(f"{path.name}.corrupt"))
        except OSError:
            # Lost a race with a concurrent quarantine/repair, or the
            # target exists from an earlier quarantine — drop it instead.
            shutil.rmtree(path, ignore_errors=True)

    def _persist(self, key: str, program: Program,
                 overwrite: bool = False) -> None:
        """Atomically publish ``program`` under ``key`` in the cache dir.

        Writes land in a process-private temp directory first; the final
        ``os.rename`` either wins (artifact appears complete) or loses to
        a concurrent writer, in which case this copy is discarded — their
        artifact is equivalent by construction (the key is a canonical
        hash of everything that determines the program). Real persistence
        failures (unwritable/full cache dir) propagate: silently dropping
        them would strand the process backend without artifacts.

        ``overwrite`` replaces an existing (unreadable) artifact: the
        broken directory is moved aside before the rename and deleted
        after, so readers still never observe a partial artifact.
        """
        if self.cache_dir is None:
            return
        final = self.cache_dir / key
        if (final / "manifest.json").exists() and not overwrite:
            return
        from ..deploy.artifact import save_artifact

        tmp = self.cache_dir / f".tmp-{os.getpid()}-{key[:16]}"
        try:
            save_artifact(program, tmp)
            if overwrite and final.exists():
                trash = self.cache_dir / f".old-{os.getpid()}-{key[:16]}"
                try:
                    os.rename(final, trash)
                except OSError:
                    pass  # a concurrent repairer already moved it
                else:
                    shutil.rmtree(trash, ignore_errors=True)
            try:
                os.rename(tmp, final)
            except OSError:
                # Benign exactly when a concurrent writer won the rename;
                # anything else is a real failure the caller must see.
                shutil.rmtree(tmp, ignore_errors=True)
                if not (final / "manifest.json").exists():
                    raise
                return
            self.stats.disk_writes += 1
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise

    # -- eviction ------------------------------------------------------------

    def _count_eviction(self, entry: CacheEntry) -> None:
        """Account one eviction (callers hold ``self._lock``).

        Every published entry carries a bound plan (``get_or_build``
        prebuilds unconditionally), so each eviction also drops a lowered
        plan; ``prebuilt_plans_dropped`` names that cost explicitly for
        the eviction-tuning dashboards rather than leaving it implied by
        ``evictions``. Re-admission re-prebuilds eagerly.
        """
        self.stats.evictions += 1
        self.stats.prebuilt_plans_dropped += 1

    def peek(self, key: str) -> CacheEntry | None:
        """Look up without touching LRU order or stats."""
        with self._lock:
            return self._entries.get(key)

    def evict(self, key: str) -> bool:
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self._count_eviction(entry)
                return True
            return False

    def clear(self) -> None:
        with self._lock:
            for entry in self._entries.values():
                self._count_eviction(entry)
            self._entries.clear()

    def entries(self) -> list[CacheEntry]:
        """Snapshot of live entries, least- to most-recently used."""
        with self._lock:
            return list(self._entries.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries
