"""The compiled-program cache: LRU + single-flight compilation.

Compilation is the expensive part of the engine by design; the cache makes
it a once-per-configuration cost under concurrent traffic:

* **LRU eviction** bounded by entry count (programs are small on the Python
  side; the dominant memory is template state, which eviction releases).
* **Single-flight builds**: when many tenants miss on the same key at once,
  exactly one thread compiles while the rest wait on a per-key latch and
  then read the finished entry. No duplicate compile work, no lock held
  across compilation.

Cached programs carry their lowered
:class:`~repro.runtime.plan.ExecutionPlan` (built at compile time and
stored in ``program.meta``), so caching a program caches its plan: every
tenant session over a variant shares one instruction stream through
``Program.with_state`` and only per-session registers/arenas differ.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable

from ..runtime import Program


@dataclass
class CacheEntry:
    """One cached compiled program plus bookkeeping."""

    key: str
    program: Program
    compile_seconds: float
    hits: int = 0
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def plan(self):
        """The variant's compiled execution plan (shared by its tenants)."""
        return self.program.plan()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    compile_seconds_total: float = 0.0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class ProgramCache:
    """Thread-safe LRU cache of compiled :class:`Program` objects."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self._lock = threading.Lock()
        self._building: dict[str, threading.Event] = {}
        self.stats = CacheStats()

    def get_or_build(self, key: str,
                     build: Callable[[], Program]) -> CacheEntry:
        """Return the entry for ``key``, compiling via ``build`` on a miss.

        Concurrent misses on one key run ``build`` exactly once; the other
        callers block until it lands and count as hits (they did not pay
        for compilation). If the winning build raises, waiters retry — one
        of them becomes the new builder.
        """
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    entry.hits += 1
                    self.stats.hits += 1
                    return entry
                latch = self._building.get(key)
                if latch is None:
                    latch = threading.Event()
                    self._building[key] = latch
                    self.stats.misses += 1
                    break  # this thread builds
            latch.wait()
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    entry.hits += 1
                    self.stats.hits += 1
                    return entry
            # builder failed; loop and race to become the next builder

        began = time.perf_counter()
        try:
            program = build()
        except BaseException:
            # Release waiters; with no entry present they retry the build.
            with self._lock:
                self._building.pop(key, None)
            latch.set()
            raise
        elapsed = time.perf_counter() - began
        entry = CacheEntry(key=key, program=program, compile_seconds=elapsed)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self.stats.compile_seconds_total += elapsed
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            self._building.pop(key, None)
        latch.set()
        return entry

    def peek(self, key: str) -> CacheEntry | None:
        """Look up without touching LRU order or stats."""
        with self._lock:
            return self._entries.get(key)

    def evict(self, key: str) -> bool:
        with self._lock:
            if key in self._entries:
                del self._entries[key]
                self.stats.evictions += 1
                return True
            return False

    def clear(self) -> None:
        with self._lock:
            self.stats.evictions += len(self._entries)
            self._entries.clear()

    def entries(self) -> list[CacheEntry]:
        """Snapshot of live entries, least- to most-recently used."""
        with self._lock:
            return list(self._entries.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries
