"""HTTP front door for :class:`~repro.serve.service.FineTuneService`.

Stdlib-only (``http.server`` + ``json``): a threaded HTTP/1.1 server in
the style of model-serving front ends (Clipper et al.) where admission
control is first-class. Each connection gets a handler thread that blocks
on the submitted step's future — the concurrency model of the service
(scheduler coalesces, worker pool executes) is unchanged; the gateway
only adds ingestion, shedding, and JSON.

Protocol (all bodies JSON)::

    POST   /v1/sessions            {"model", "scheme"?, "tenant"?,
                                    "model_kwargs"?}        -> 201 session
    POST   /v1/sessions/{id}/step  {"x": [...], "y": ...}   -> 200 result
    GET    /v1/sessions/{id}                                -> 200 status
    DELETE /v1/sessions/{id}                                -> 200 summary
    POST   /v1/sessions/{id}/checkpoint                     -> 200 meta
    GET    /v1/sessions/{id}/checkpoint       -> 200 octet-stream download
    POST   /v1/sessions/restore    checkpoint bytes, or JSON
                                   {"session_id", "version"?} -> 201 session
    GET    /v1/metrics                                      -> 200 stats
    GET    /v1/metrics?format=prometheus                    -> 200 text
    GET    /v1/trace                                        -> 200 chrome-trace
    GET    /v1/healthz                                      -> 200 health

Tracing contract: every request gets a request ID — the caller's
``X-Request-Id`` header when present (16-64 chars of [A-Za-z0-9._-]),
minted otherwise — and every response echoes it back in
``X-Request-Id``. Step responses additionally carry a ``Server-Timing``
header with the request's per-stage span durations; the same spans land
in the trace ring served at ``/v1/trace``.

Durability contract (see the README's *Durability & fault tolerance*):

* ``Idempotency-Key`` on a step marks it safely retryable — a retry
  carrying the same key returns the recorded result (``"replayed":
  true``) instead of applying a second optimizer update;
* ``X-Deadline`` carries an absolute epoch-seconds deadline; work whose
  deadline has passed is shed wherever it is first noticed — admission,
  the scheduler's batch cut, or the blocked handler — with ``504`` and
  the shared ``serve.deadline_expired`` counter.

Backpressure — enforced *before* enqueue, in order:

1. **per-tenant token bucket** (:mod:`repro.serve.ratelimit`): a tenant
   past its rate gets ``429`` with ``Retry-After`` set to when its next
   token matures;
2. **global queue watermark**: when the scheduler's *live* queue depth
   (the ``serve.queue_depth`` callback gauge's source) is at or past
   ``max_queue_depth``, the request is shed with ``429`` and a
   ``Retry-After`` derived from recent request latency. The queue is
   therefore bounded by the watermark plus in-flight handler threads —
   load never accumulates without bound.

Shutdown (:meth:`GatewayServer.close`) is ordered so no future is ever
left hanging: stop accepting connections, settle every in-flight future
(drain with a bound, then cancel stragglers), then release sockets.
Handlers blocked on a cancelled future answer ``503``.
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from concurrent.futures import CancelledError
from concurrent.futures import TimeoutError as FutureTimeout
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs

import numpy as np

from ..errors import (CheckpointError, DeadlineExpired, FaultInjected,
                      ReproError, ServeError)
from ..obs import mint_request_id, server_timing_header
from .checkpoint import MAGIC as _CKPT_MAGIC
from .faults import FAULTS
from .ratelimit import RateLimiter
from .service import FineTuneService
from .sessions import TenantSession

#: accepted shape for caller-supplied X-Request-Id values; anything else
#: (too long, header-injection attempts, empty) gets a minted ID instead
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")

#: accepted shape for Idempotency-Key values (anything else is a 400: a
#: silently dropped key would turn a retry into a double-apply)
_IDEM_KEY_RE = re.compile(r"^[A-Za-z0-9._:-]{1,128}$")

#: what this server speaks; clients feature-probe /v1/healthz before
#: relying on retry-with-idempotency-key semantics
_FEATURES = ("checkpoint", "deadline", "idempotency")


def _json_safe(value):
    """NaN/Inf-free copy of ``value`` (strict JSON has no NaN literal)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return value


class _GatewayHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    #: injected by GatewayServer after construction
    gateway: "GatewayServer"

    def handle_error(self, request, client_address):
        # Clients dropping a connection mid-response (benchmark churn,
        # Ctrl-C'd curl) is routine, not a server error worth a traceback.
        import sys
        exc = sys.exc_info()[1]
        if isinstance(exc, (ConnectionError, BrokenPipeError, OSError)):
            return
        super().handle_error(request, client_address)


class GatewayServer:
    """Serve a :class:`FineTuneService` over HTTP with admission control."""

    def __init__(self, service: FineTuneService, host: str = "127.0.0.1",
                 port: int = 0, *, max_queue_depth: int = 64,
                 rate_limit: float | None = None,
                 rate_burst: float | None = None,
                 step_timeout: float = 120.0) -> None:
        if max_queue_depth < 0:
            raise ServeError(
                f"max_queue_depth must be >= 0, got {max_queue_depth}")
        self.service = service
        self.max_queue_depth = max_queue_depth
        self.limiter = RateLimiter(rate_limit, burst=rate_burst)
        self.step_timeout = step_timeout

        metrics = service.metrics
        self._requests_total = metrics.counter(
            "serve.http_requests_total", "HTTP requests received")
        self._shed_total = metrics.counter(
            "serve.http_shed_total",
            "step requests shed at the queue-depth watermark")
        self._limited_total = metrics.counter(
            "serve.http_rate_limited_total",
            "step requests refused by per-tenant rate limits")
        self._step_latency = metrics.histogram(
            "serve.http_step_ms", "gateway-side step latency (admitted)")
        # Shared with the service/scheduler shedding stages (registry
        # get-or-create returns the one counter).
        self._deadline_expired = metrics.counter("serve.deadline_expired")
        # Sampled for Retry-After hints on shed responses.
        self._request_latency = metrics.histogram(
            "serve.request_latency_ms", "submit-to-result latency")

        self._httpd = _GatewayHTTPServer((host, port), _Handler)
        self._httpd.gateway = self
        self.host = self._httpd.server_address[0]
        self.port = int(self._httpd.server_address[1])
        self._thread: threading.Thread | None = None
        self._close_lock = threading.Lock()
        self._closed = False
        self._drained = True

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "GatewayServer":
        """Begin serving on a background thread; returns self."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve-http",
            daemon=True)
        self._thread.start()
        return self

    def retry_after_hint(self, depth: int) -> float:
        """Seconds a shed client should back off: roughly how long the
        current backlog takes to clear at recent request latency."""
        p50_ms = self._request_latency.quantile(0.5) or 50.0
        return min(5.0, max(0.1, depth * p50_ms / 1000.0))

    def close(self, drain_timeout: float | None = None) -> bool:
        """Ordered shutdown; True when the queue drained fully.

        1. stop accepting connections (in-flight handlers keep running);
        2. settle every outstanding future via
           :meth:`FineTuneService.shutdown` — drained, failed, or
           cancelled, never hung; blocked handlers answer their clients;
        3. release the listening socket.
        """
        with self._close_lock:
            if self._closed:
                return self._drained
            self._closed = True
        if self._thread is not None:
            # shutdown() blocks on a flag only serve_forever() sets;
            # calling it on a never-started server would hang forever.
            self._httpd.shutdown()
        self._drained = self.service.shutdown(drain_timeout)
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        return self._drained

    def __enter__(self) -> "GatewayServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    # Small request/response pairs on a keep-alive connection hit the
    # Nagle + delayed-ACK interaction (a fixed ~40ms stall per exchange)
    # unless writes are batched and TCP_NODELAY is set.
    disable_nagle_algorithm = True
    wbufsize = -1

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging would swamp the benchmark loops

    @property
    def gateway(self) -> GatewayServer:
        return self.server.gateway

    def _read_body(self) -> bytes:
        """Drain the request body off the wire.

        The do_* dispatchers call this exactly once before routing — even
        for refusals (404, shed) and bodiless verbs: with HTTP/1.1
        keep-alive an unread body would be parsed as the next request
        line and poison the connection.
        """
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    @staticmethod
    def _parse_json(raw: bytes) -> dict:
        if not raw:
            return {}
        payload = json.loads(raw)
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _begin_request(self) -> None:
        """Adopt the caller's ``X-Request-Id`` or mint one.

        Runs first in every do_* dispatcher so even refusals (404, shed,
        429) echo a correlatable ID.
        """
        supplied = self.headers.get("X-Request-Id", "")
        self._request_id = supplied if _REQUEST_ID_RE.match(supplied) \
            else mint_request_id()

    def _send_body(self, status: int, body: bytes, content_type: str,
                   headers: dict[str, str] | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Request-Id",
                         getattr(self, "_request_id", None)
                         or mint_request_id())
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict,
                   headers: dict[str, str] | None = None) -> None:
        self._send_body(status, json.dumps(_json_safe(payload)).encode(),
                        "application/json", headers)

    # -- routing -------------------------------------------------------------

    def do_GET(self) -> None:
        self.gateway._requests_total.inc()
        self._begin_request()
        self._read_body()  # drain even on bodiless verbs (see _read_body)
        path, _, query = self.path.partition("?")
        parts = [p for p in path.split("/") if p]
        if parts == ["v1", "healthz"]:
            return self._healthz()
        if parts == ["v1", "metrics"]:
            return self._metrics(query)
        if parts == ["v1", "trace"]:
            return self._trace()
        if len(parts) == 4 and parts[:2] == ["v1", "sessions"] \
                and parts[3] == "checkpoint":
            return self._download_checkpoint(parts[2])
        if len(parts) == 3 and parts[:2] == ["v1", "sessions"]:
            return self._session_status(parts[2])
        self._send_json(404, {"error": f"no route for GET {self.path}"})

    def do_POST(self) -> None:
        self.gateway._requests_total.inc()
        self._begin_request()
        # The body comes off the wire exactly once, before routing, so
        # every refusal path (404 route miss, shed, unknown session)
        # leaves the keep-alive stream clean.
        raw = self._read_body()
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["v1", "sessions"]:
            return self._create_session(raw)
        if parts == ["v1", "sessions", "restore"]:
            return self._restore(raw)
        if len(parts) == 4 and parts[:2] == ["v1", "sessions"] \
                and parts[3] == "step":
            return self._step(parts[2], raw)
        if len(parts) == 4 and parts[:2] == ["v1", "sessions"] \
                and parts[3] == "checkpoint":
            return self._checkpoint(parts[2])
        self._send_json(404, {"error": f"no route for POST {self.path}"})

    def do_DELETE(self) -> None:
        self.gateway._requests_total.inc()
        self._begin_request()
        self._read_body()
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) == 3 and parts[:2] == ["v1", "sessions"]:
            return self._close_session(parts[2])
        self._send_json(404, {"error": f"no route for DELETE {self.path}"})

    # -- endpoints -----------------------------------------------------------

    def _healthz(self) -> None:
        gw = self.gateway
        closing = gw.service.closed
        self._send_json(503 if closing else 200, {
            "status": "closing" if closing else "ok",
            "queue_depth": gw.service.scheduler.queue_depth(),
            "max_queue_depth": gw.max_queue_depth,
            "sessions": len(gw.service.sessions),
            "features": list(_FEATURES),
        })

    def _metrics(self, query: str = "") -> None:
        fmt = parse_qs(query).get("format", ["json"])[0]
        if fmt == "prometheus":
            return self._send_body(
                200, self.gateway.service.prometheus_metrics().encode(),
                "text/plain; version=0.0.4; charset=utf-8")
        if fmt != "json":
            return self._send_json(
                400, {"error": f"unknown metrics format {fmt!r}; "
                               f"options: json, prometheus"})
        self._send_json(200, self.gateway.service.stats())

    def _trace(self) -> None:
        # The span ring as one chrome://tracing / Perfetto document;
        # request IDs live in each event's args for correlation.
        self._send_json(200, self.gateway.service.tracer.export())

    def _create_session(self, raw: bytes) -> None:
        gw = self.gateway
        try:
            payload = self._parse_json(raw)
            model = payload["model"]
            if not isinstance(model, str):
                raise ValueError(
                    "'model' must be a registry key string over HTTP")
            session = gw.service.create_session(
                model,
                scheme=payload.get("scheme", "paper"),
                tenant=payload.get("tenant"),
                model_kwargs=payload.get("model_kwargs"),
            )
        except ServeError as exc:
            status = 503 if "closed" in str(exc) else 400
            return self._send_json(status, {"error": str(exc)})
        except (ReproError, KeyError, ValueError, TypeError) as exc:
            # unknown model, bad kwargs, malformed body: the client's fault
            return self._send_json(400, {"error": f"bad request: {exc}"})
        family = session.family
        self._send_json(201, {
            "session_id": session.id,
            "tenant": session.tenant,
            "model": family.model_id,
            "input_shape": list(family.example_shape),
            "input_dtype": np.dtype(family.example_dtype).name,
            "label_shape": list(family.label_shape),
            "label_dtype": np.dtype(family.label_dtype).name,
            "num_classes": family.num_classes,
        })

    def _session_status(self, session_id: str) -> None:
        try:
            session = self.gateway.service.sessions.get(session_id)
        except ServeError as exc:
            return self._send_json(404, {"error": str(exc)})
        self._send_json(200, self._summary(session))

    def _close_session(self, session_id: str) -> None:
        gw = self.gateway
        try:
            session = gw.service.sessions.get(session_id)
            summary = self._summary(session)
            gw.service.close_session(session_id)
        except ServeError as exc:
            status = 404 if "unknown session" in str(exc) else 409
            return self._send_json(status, {"error": str(exc)})
        self._send_json(200, summary)

    def _summary(self, session: TenantSession) -> dict:
        return {
            "session_id": session.id,
            "tenant": session.tenant,
            "steps": session.steps,
            "examples": session.examples,
            "last_loss": session.last_loss,
        }

    # -- durability endpoints ------------------------------------------------

    def _checkpoint(self, session_id: str) -> None:
        """POST: persist one checkpoint version to the server-side store."""
        gw = self.gateway
        try:
            meta = gw.service.checkpoint_session(session_id)
        except CheckpointError as exc:
            return self._send_json(500, {"error": str(exc)})
        except ServeError as exc:
            msg = str(exc)
            # no checkpoint_dir / no restore config: a conflict with how
            # the server is configured, not a bad request
            status = 404 if "unknown session" in msg else 409
            return self._send_json(status, {"error": msg})
        self._send_json(200, meta)

    def _download_checkpoint(self, session_id: str) -> None:
        """GET: the session's current checkpoint as one binary download."""
        gw = self.gateway
        try:
            data = gw.service.checkpoint_bytes(session_id)
        except ServeError as exc:
            msg = str(exc)
            status = 404 if "unknown session" in msg else 409
            return self._send_json(status, {"error": msg})
        self._send_body(200, data, "application/octet-stream", headers={
            "Content-Disposition":
                f'attachment; filename="{session_id}.ckpt"'})

    def _restore(self, raw: bytes) -> None:
        """POST: resurrect a session from uploaded bytes or the store."""
        gw = self.gateway
        ctype = (self.headers.get("Content-Type") or "") \
            .split(";")[0].strip().lower()
        try:
            if ctype == "application/octet-stream" \
                    or raw.startswith(_CKPT_MAGIC):
                session = gw.service.restore_session(raw)
            else:
                payload = self._parse_json(raw)
                session_id = payload.get("session_id")
                if not isinstance(session_id, str) or not session_id:
                    raise ValueError(
                        "restore wants checkpoint bytes "
                        "(application/octet-stream) or a JSON body with "
                        "'session_id' (and optional 'version')")
                version = payload.get("version")
                if version is not None:
                    version = int(version)
                session = gw.service.restore_session(
                    session_id=session_id, version=version)
        except CheckpointError as exc:
            # corrupt/unreadable/incompatible checkpoint: the *content*
            # is the problem, not the request shape
            return self._send_json(422, {"error": str(exc)})
        except ServeError as exc:
            msg = str(exc)
            status = 503 if "closed" in msg \
                else 409 if "already open" in msg else 400
            return self._send_json(status, {"error": msg})
        except (ValueError, TypeError) as exc:
            return self._send_json(
                400, {"error": f"bad restore request: {exc}"})
        body = self._summary(session)
        body["restored"] = True
        body["step_seq"] = session.step_seq
        self._send_json(201, body)

    def _step(self, session_id: str, raw: bytes) -> None:
        gw = self.gateway
        began = time.perf_counter()
        try:
            session = gw.service.sessions.get(session_id)
        except ServeError as exc:
            return self._send_json(404, {"error": str(exc)})

        # Admission control before the request touches the scheduler:
        # shed load costs the service one body read and nothing else.
        retry = gw.limiter.try_acquire(session.tenant)
        if retry > 0.0:
            gw._limited_total.inc()
            return self._send_json(
                429,
                {"error": f"tenant {session.tenant!r} is over its rate "
                          f"limit", "retry_after": retry},
                headers={"Retry-After": f"{retry:.3f}"})
        depth = gw.service.scheduler.queue_depth()
        if depth >= gw.max_queue_depth:
            gw._shed_total.inc()
            retry = gw.retry_after_hint(depth)
            return self._send_json(
                429,
                {"error": f"queue depth {depth} at watermark "
                          f"{gw.max_queue_depth}; shedding load",
                 "queue_depth": depth, "retry_after": retry},
                headers={"Retry-After": f"{retry:.3f}"})

        # Durability headers. X-Deadline is absolute epoch seconds; it is
        # converted onto time.monotonic() once here and propagated so
        # every later shedding stage compares against the same clock.
        raw_deadline = self.headers.get("X-Deadline")
        deadline = None
        if raw_deadline is not None:
            try:
                deadline = time.monotonic() + (float(raw_deadline)
                                               - time.time())
            except ValueError:
                return self._send_json(
                    400, {"error": f"bad X-Deadline header "
                                   f"{raw_deadline!r}: want absolute "
                                   f"epoch seconds"})
            if time.monotonic() >= deadline:
                gw._deadline_expired.inc()
                return self._send_json(
                    504, {"error": "deadline already passed at admission",
                          "deadline_expired": True})
        idem_key = self.headers.get("Idempotency-Key")
        if idem_key is not None and not _IDEM_KEY_RE.match(idem_key):
            return self._send_json(
                400, {"error": "bad Idempotency-Key header: want 1-128 "
                               "chars of [A-Za-z0-9._:-]"})

        try:
            payload = self._parse_json(raw)
            family = session.family
            x = np.asarray(payload["x"], dtype=family.example_dtype)
            y = np.asarray(payload["y"], dtype=family.label_dtype)
        except (KeyError, ValueError, TypeError) as exc:
            return self._send_json(400, {"error": f"bad step body: {exc}"})
        # The trace context the whole request pipeline records into: the
        # gateway owns admission and serialize, the scheduler queue_wait,
        # the service batch_wait and execute.
        trace = gw.service.tracer.trace(
            self._request_id, session_id=session_id, tenant=session.tenant)
        trace.add("admission", began, time.perf_counter())
        try:
            future = gw.service.submit(session_id, x, y, trace=trace,
                                       deadline=deadline,
                                       idempotency_key=idem_key)
        except DeadlineExpired as exc:
            return self._send_json(
                504, {"error": str(exc), "deadline_expired": True})
        except ServeError as exc:
            status = 503 if "closed" in str(exc) else 400
            return self._send_json(status, {"error": str(exc)})

        timeout = gw.step_timeout
        if deadline is not None:
            timeout = min(timeout, max(0.0, deadline - time.monotonic()))
        try:
            result = future.result(timeout=timeout)
        except CancelledError:
            return self._send_json(
                503, {"error": "step cancelled: service is shutting down"})
        except DeadlineExpired as exc:
            return self._send_json(
                504, {"error": str(exc), "deadline_expired": True})
        except FutureTimeout:
            # Abandon the wait without leaking the request: cancel()
            # succeeds only while it is still queued (the scheduler then
            # drops it at batch-cut and releases any idempotency claim);
            # once running it completes server-side and, if keyed, lands
            # in the replay window for the client's retry.
            future.cancel()
            gw._deadline_expired.inc()
            return self._send_json(
                504, {"error": f"step did not complete within {timeout:.3f}s",
                      "deadline_expired": True})
        except ServeError as exc:
            return self._send_json(500, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - surface, don't hang
            return self._send_json(
                500, {"error": f"{type(exc).__name__}: {exc}"})
        # Serialize opens the moment the result lands (covering response
        # bookkeeping + json.dumps; socket write excluded: the span must
        # be *in* the headers it is reported through).
        serialize_began = time.perf_counter()
        gw._step_latency.observe((serialize_began - began) * 1e3)
        body = json.dumps(_json_safe({
            "session_id": result.session_id,
            "loss": result.loss,
            "step": result.step,
            "batch_size": result.batch_size,
            "program_key": result.program_key,
            "request_id": trace.request_id,
            "replayed": result.replayed,
        })).encode()
        trace.add("serialize", serialize_began, time.perf_counter())
        try:
            FAULTS.fire("gateway.reset_after_send",
                        request_id=trace.request_id, session_id=session_id)
        except FaultInjected:
            # Chaos/e2e-retry tests: the step executed and (if keyed) is
            # in the replay window, but the client never hears — simulate
            # the response lost on the wire by dropping the connection.
            self.close_connection = True
            try:
                self.connection.shutdown(2)  # socket.SHUT_RDWR
            except OSError:
                pass
            return
        self._send_body(200, body, "application/json", headers={
            "Server-Timing": server_timing_header(
                trace.timings_ms(), trace.total_ms()),
        })
