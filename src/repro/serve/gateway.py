"""HTTP front door for :class:`~repro.serve.service.FineTuneService`.

Stdlib-only: an **asyncio** HTTP/1.1 server (``asyncio.start_server``)
in the style of model-serving front ends (Clipper et al.) where
admission control is first-class. Connections are coroutines on one
event loop, so the number of held connections is bounded by file
descriptors, not threads — thousands of keep-alive clients cost a few
KB each, while the old thread-per-connection design topped out at the
thread budget. The service behind the gateway is unchanged and still
threaded: the scheduler coalesces, the worker pool executes, and each
step's :class:`concurrent.futures.Future` is bridged onto the loop with
``asyncio.wrap_future`` so an awaiting handler suspends instead of
pinning a thread.

Protocol (control bodies JSON; step bodies JSON or binary)::

    POST   /v1/sessions            {"model", "scheme"?, "tenant"?,
                                    "model_kwargs"?}        -> 201 session
    POST   /v1/sessions/{id}/step  {"x": [...], "y": ...}   -> 200 result
    GET    /v1/sessions/{id}                                -> 200 status
    DELETE /v1/sessions/{id}                                -> 200 summary
    POST   /v1/sessions/{id}/checkpoint                     -> 200 meta
    GET    /v1/sessions/{id}/checkpoint       -> 200 octet-stream download
                                   (Accept: x-repro-step -> wire frame)
    POST   /v1/sessions/restore    checkpoint bytes (.ckpt or wire frame),
                                   or JSON
                                   {"session_id", "version"?} -> 201 session
    GET    /v1/metrics                                      -> 200 stats
    GET    /v1/metrics?format=prometheus                    -> 200 text
    GET    /v1/trace                                        -> 200 chrome-trace
    GET    /v1/healthz                                      -> 200 health

**Binary step bodies** (:mod:`repro.serve.wire`): a step request whose
``Content-Type`` is ``application/x-repro-step`` carries one wire frame
with tensors ``x`` and ``y`` instead of JSON lists — raw dtype bytes,
no base64/decimal round trip. A request whose ``Accept`` includes the
same media type gets its result as a meta-only wire frame back. Both
directions are negotiated independently; JSON remains the default and
the only format for control routes, and a malformed frame is a clean
``400`` (never a poisoned connection — the body is always drained by
length first). Servers advertise ``binary_step`` in the ``/v1/healthz``
feature list; :class:`~repro.serve.client.ServeClient` upgrades off
that probe automatically.

**Auth** (optional): constructed with ``auth_tokens`` (bearer token ->
tenant id), every route except ``/v1/healthz`` requires a valid
``Authorization: Bearer`` header (``401`` otherwise). A token acts for
exactly its tenant: session creation is pinned to it, and touching
another tenant's session is ``403``.

Tracing contract: every request gets a request ID — the caller's
``X-Request-Id`` header when present (up to 64 chars of
[A-Za-z0-9._-]), minted otherwise — and every response echoes it back
in ``X-Request-Id``. Step responses additionally carry a
``Server-Timing`` header with the request's per-stage span durations;
the same spans land in the trace ring served at ``/v1/trace``.

Durability contract (see the README's *Durability & fault tolerance*):

* ``Idempotency-Key`` on a step marks it safely retryable — a retry
  carrying the same key returns the recorded result (``"replayed":
  true``) instead of applying a second optimizer update;
* ``X-Deadline`` carries an absolute epoch-seconds deadline; work whose
  deadline has passed is shed wherever it is first noticed — admission,
  the scheduler's batch cut, or the blocked handler — with ``504`` and
  the shared ``serve.deadline_expired`` counter.

Backpressure — enforced *before* enqueue, in order:

1. **per-tenant token bucket** (:mod:`repro.serve.ratelimit`): a tenant
   past its rate gets ``429`` with ``Retry-After`` set to when its next
   token matures;
2. **global queue watermark**: when the scheduler's *live* queue depth
   (the ``serve.queue_depth`` callback gauge's source) is at or past
   ``max_queue_depth``, the request is shed with ``429`` and a
   ``Retry-After`` derived from recent request latency. The queue is
   therefore bounded by the watermark plus in-flight awaiting handlers
   — load never accumulates without bound.

Shutdown (:meth:`GatewayServer.close`) is ordered so no future is ever
left hanging: stop accepting connections, settle every in-flight
future via :meth:`FineTuneService.shutdown` (drain with a bound, then
cancel stragglers), then let the loop retire — idle keep-alive
connections are dropped immediately, while a handler still awaiting a
running batch stays alive (on the daemon loop thread) until it can
answer its client. Handlers whose future was cancelled answer ``503``.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import math
import re
import socket
import sys
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from urllib.parse import parse_qs

import numpy as np

from ..errors import (CheckpointError, DeadlineExpired, FaultInjected,
                      ReproError, ServeError)
from ..obs import mint_request_id, server_timing_header
from . import wire
from .checkpoint import MAGIC as _CKPT_MAGIC
from .checkpoint import checkpoint_from_wire
from .faults import FAULTS
from .ratelimit import RateLimiter
from .service import FineTuneService
from .sessions import TenantSession
from .wire import WireError

#: accepted shape for caller-supplied X-Request-Id values; anything else
#: (too long, header-injection attempts, empty) gets a minted ID instead
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")

#: accepted shape for Idempotency-Key values (anything else is a 400: a
#: silently dropped key would turn a retry into a double-apply)
_IDEM_KEY_RE = re.compile(r"^[A-Za-z0-9._:-]{1,128}$")

#: what this server speaks; clients feature-probe /v1/healthz before
#: relying on retry-with-idempotency-key or binary-frame semantics
_FEATURES = ("binary_checkpoint", "binary_step", "checkpoint", "deadline",
             "idempotency")

#: request bodies past this are refused with 413 before allocation
#: becomes hostile (an MCUNet batch-8 JSON step is ~12 MB)
_MAX_BODY = 256 << 20

#: header block bounds: enough for real clients, hostile ones get cut
_MAX_HEADERS = 100

#: threads for blocking control-plane calls (create compiles, restore /
#: checkpoint do file IO); the step path never touches this pool
_OFFLOAD_THREADS = 8


def _json_safe(value):
    """NaN/Inf-free copy of ``value`` (strict JSON has no NaN literal)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return value


@dataclass
class _Request:
    """One parsed HTTP request plus its response plumbing."""

    method: str
    path: str
    query: str
    headers: dict[str, str]
    body: bytes
    writer: asyncio.StreamWriter
    request_id: str = ""
    #: tenant the Authorization header maps to (None when auth is off)
    auth_tenant: str | None = None
    #: set False by a handler that killed the connection (fault drop)
    alive: bool = field(default=True)

    def header(self, name: str, default: str | None = None) -> str | None:
        return self.headers.get(name.lower(), default)

    @property
    def wants_close(self) -> bool:
        return (self.headers.get("connection") or "").lower() == "close"


class GatewayServer:
    """Serve a :class:`FineTuneService` over HTTP with admission control."""

    def __init__(self, service: FineTuneService, host: str = "127.0.0.1",
                 port: int = 0, *, max_queue_depth: int = 64,
                 rate_limit: float | None = None,
                 rate_burst: float | None = None,
                 step_timeout: float = 120.0,
                 auth_tokens: dict[str, str] | None = None) -> None:
        if max_queue_depth < 0:
            raise ServeError(
                f"max_queue_depth must be >= 0, got {max_queue_depth}")
        self.service = service
        self.max_queue_depth = max_queue_depth
        self.limiter = RateLimiter(rate_limit, burst=rate_burst)
        self.step_timeout = step_timeout
        self.auth_tokens = dict(auth_tokens) if auth_tokens else None

        metrics = service.metrics
        self._requests_total = metrics.counter(
            "serve.http_requests_total", "HTTP requests received")
        self._shed_total = metrics.counter(
            "serve.http_shed_total",
            "step requests shed at the queue-depth watermark")
        self._limited_total = metrics.counter(
            "serve.http_rate_limited_total",
            "step requests refused by per-tenant rate limits")
        self._unauthorized_total = metrics.counter(
            "serve.http_unauthorized_total",
            "requests refused for a missing or invalid bearer token")
        self._step_latency = metrics.histogram(
            "serve.http_step_ms", "gateway-side step latency (admitted)")
        # Wire-format accounting: bytes on the HTTP wire per step, split
        # by body format, so benches can compare JSON vs binary framing.
        self._steps_json = metrics.counter(
            "serve.http.steps_json", "steps served with JSON bodies")
        self._steps_binary = metrics.counter(
            "serve.http.steps_binary",
            "steps served with binary wire-frame bodies")
        self._step_bytes_json = metrics.counter(
            "serve.http.step_bytes_json",
            "request+response body bytes across JSON-format steps")
        self._step_bytes_binary = metrics.counter(
            "serve.http.step_bytes_binary",
            "request+response body bytes across binary-format steps")
        # Shared with the service/scheduler shedding stages (registry
        # get-or-create returns the one counter).
        self._deadline_expired = metrics.counter("serve.deadline_expired")
        # Sampled for Retry-After hints on shed responses.
        self._request_latency = metrics.histogram(
            "serve.request_latency_ms", "submit-to-result latency")

        # The socket is bound (and the ephemeral port known) at
        # construction; start() only begins accepting.
        self._sock = socket.create_server((host, port), backlog=512,
                                          reuse_port=False)
        self._sock.setblocking(False)
        self.host, self.port = self._sock.getsockname()[:2]

        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._thread: threading.Thread | None = None
        self._offload = ThreadPoolExecutor(
            max_workers=_OFFLOAD_THREADS,
            thread_name_prefix="repro-gw-offload")
        #: writer -> currently-processing-a-request (loop thread only)
        self._conn_busy: dict[asyncio.StreamWriter, bool] = {}
        self._close_lock = threading.Lock()
        self._closed = False
        self._closing = False
        self._drained = True

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "GatewayServer":
        """Begin serving on a background event-loop thread; returns self."""
        self._loop = asyncio.new_event_loop()
        ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run_loop, args=(ready,), name="repro-serve-http",
            daemon=True)
        self._thread.start()
        ready.wait(timeout=10)
        return self

    def _run_loop(self, ready: threading.Event) -> None:
        loop = self._loop
        asyncio.set_event_loop(loop)

        async def boot():
            self._server = await asyncio.start_server(
                self._handle_connection, sock=self._sock)

        loop.run_until_complete(boot())
        ready.set()
        loop.run_forever()
        # stopped by the settle path: give just-finishing handler tasks a
        # beat to unwind, then close the loop
        pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
        if pending:
            loop.run_until_complete(asyncio.wait(pending, timeout=1.0))
        loop.close()

    def retry_after_hint(self, depth: int) -> float:
        """Seconds a shed client should back off: roughly how long the
        current backlog takes to clear at recent request latency."""
        p50_ms = self._request_latency.quantile(0.5) or 50.0
        return min(5.0, max(0.1, depth * p50_ms / 1000.0))

    def close(self, drain_timeout: float | None = None) -> bool:
        """Ordered shutdown; True when the queue drained fully.

        1. stop accepting connections (in-flight handlers keep running);
        2. settle every outstanding future via
           :meth:`FineTuneService.shutdown` — drained, failed, or
           cancelled, never hung; awaiting handlers answer their clients;
        3. drop idle keep-alive connections and let the loop retire once
           the last busy handler has answered. A handler still awaiting
           a genuinely running batch keeps the (daemon) loop alive until
           its client is answered — close() does not wait for that.
        """
        with self._close_lock:
            if self._closed:
                return self._drained
            self._closed = True
        self._closing = True
        if self._thread is not None:
            stop = asyncio.run_coroutine_threadsafe(
                self._stop_accepting(), self._loop)
            try:
                stop.result(timeout=5)
            except Exception:  # pragma: no cover - defensive
                pass
        self._drained = self.service.shutdown(drain_timeout)
        if self._thread is not None:
            try:
                self._loop.call_soon_threadsafe(self._begin_settling)
            except RuntimeError:
                pass  # the loop already settled itself (no connections)
        else:
            self._sock.close()
        self._offload.shutdown(wait=False)
        return self._drained

    async def _stop_accepting(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    def _begin_settling(self) -> None:
        """(loop thread) Drop idle connections; busy ones finish first."""
        for writer, busy in list(self._conn_busy.items()):
            if not busy:
                transport = writer.transport
                if transport is not None:
                    transport.abort()
        self._maybe_settle()

    def _maybe_settle(self) -> None:
        """(loop thread) Stop the loop once closing and fully idle."""
        if self._closing and not self._conn_busy \
                and self._loop is not None and self._loop.is_running():
            self._loop.call_soon(self._loop.stop)

    def __enter__(self) -> "GatewayServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- connection plumbing -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                # Small request/response pairs on a keep-alive connection
                # hit the Nagle + delayed-ACK interaction (~40ms per
                # exchange) unless responses go out immediately.
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - platform quirk
                pass
        self._conn_busy[writer] = False
        try:
            while not self._closing:
                request = await self._read_request(reader, writer)
                if request is None:
                    break
                self._requests_total.inc()
                self._conn_busy[writer] = True
                try:
                    await self._dispatch(request)
                    if request.alive:
                        await writer.drain()
                finally:
                    self._conn_busy[writer] = False
                if not request.alive or request.wants_close:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError, ValueError):
            # clients dropping a connection mid-exchange (benchmark
            # churn, Ctrl-C'd curl) is routine, not a server error
            pass
        except Exception:  # noqa: BLE001 - visible, never fatal
            traceback.print_exc(file=sys.stderr)
        finally:
            self._conn_busy.pop(writer, None)
            self._maybe_settle()
            try:
                writer.close()
            except Exception:  # pragma: no cover - already torn down
                pass

    async def _read_request(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter
                            ) -> _Request | None:
        """Parse one request off the stream; None ends the connection.

        The body always comes off the wire in full before routing, so
        every refusal path (404 route miss, shed, malformed frame)
        leaves the keep-alive stream clean.
        """
        line = await reader.readline()
        if not line:
            return None  # clean EOF between requests
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            return None  # garbage request line: drop the connection
        method, target = parts[0], parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if len(headers) >= _MAX_HEADERS:
                return None
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        if "transfer-encoding" in headers:
            self._write_response(writer, 413, json.dumps(
                {"error": "chunked bodies are not supported; send "
                          "Content-Length"}).encode(),
                "application/json", request_id=mint_request_id(),
                close=True)
            return None
        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            return None
        if length < 0 or length > _MAX_BODY:
            self._write_response(writer, 413, json.dumps(
                {"error": f"request body of {length} bytes exceeds the "
                          f"{_MAX_BODY}-byte cap"}).encode(),
                "application/json", request_id=mint_request_id(),
                close=True)
            return None
        body = bytearray()
        while len(body) < length:
            chunk = await reader.read(min(length - len(body), 1 << 16))
            if not chunk:
                return None  # connection died mid-body
            body += chunk
        path, _, query = target.partition("?")
        request = _Request(method=method, path=path, query=query,
                           headers=headers, body=bytes(body), writer=writer)
        supplied = request.header("x-request-id", "")
        request.request_id = supplied if _REQUEST_ID_RE.match(supplied) \
            else mint_request_id()
        return request

    def _write_response(self, writer: asyncio.StreamWriter, status: int,
                        body: bytes, content_type: str,
                        headers: dict[str, str] | None = None,
                        request_id: str | None = None,
                        close: bool = False) -> None:
        reason = http.client.responses.get(status, "")
        lines = [f"HTTP/1.1 {status} {reason}",
                 f"Content-Type: {content_type}",
                 f"Content-Length: {len(body)}",
                 f"X-Request-Id: {request_id or mint_request_id()}"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        if close:
            lines.append("Connection: close")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
                     + body)

    def _send_body(self, request: _Request, status: int, body: bytes,
                   content_type: str,
                   headers: dict[str, str] | None = None) -> int:
        self._write_response(request.writer, status, body, content_type,
                             headers, request_id=request.request_id,
                             close=request.wants_close)
        return len(body)

    def _send_json(self, request: _Request, status: int, payload: dict,
                   headers: dict[str, str] | None = None) -> int:
        return self._send_body(
            request, status, json.dumps(_json_safe(payload)).encode(),
            "application/json", headers)

    async def _offloaded(self, fn, *args):
        """Run a blocking control-plane call off the event loop."""
        return await asyncio.get_running_loop().run_in_executor(
            self._offload, fn, *args)

    # -- routing -------------------------------------------------------------

    async def _dispatch(self, request: _Request) -> None:
        parts = [p for p in request.path.split("/") if p]
        if parts == ["v1", "healthz"] and request.method == "GET":
            return self._healthz(request)
        if not self._authorize(request):
            return None
        method = request.method
        if method == "GET":
            if parts == ["v1", "metrics"]:
                return self._metrics(request)
            if parts == ["v1", "trace"]:
                return self._trace(request)
            if len(parts) == 4 and parts[:2] == ["v1", "sessions"] \
                    and parts[3] == "checkpoint":
                return await self._download_checkpoint(request, parts[2])
            if len(parts) == 3 and parts[:2] == ["v1", "sessions"]:
                return self._session_status(request, parts[2])
        elif method == "POST":
            if parts == ["v1", "sessions"]:
                return await self._create_session(request)
            if parts == ["v1", "sessions", "restore"]:
                return await self._restore(request)
            if len(parts) == 4 and parts[:2] == ["v1", "sessions"]:
                if parts[3] == "step":
                    return await self._step(request, parts[2])
                if parts[3] == "checkpoint":
                    return await self._checkpoint(request, parts[2])
        elif method == "DELETE":
            if len(parts) == 3 and parts[:2] == ["v1", "sessions"]:
                return await self._close_session(request, parts[2])
        self._send_json(request, 404, {
            "error": f"no route for {method} {request.path}"})
        return None

    def _authorize(self, request: _Request) -> bool:
        """Resolve the bearer token to a tenant; False = 401 already sent."""
        if self.auth_tokens is None:
            return True
        header = request.header("authorization", "") or ""
        tenant = None
        if header[:7].lower() == "bearer ":
            tenant = self.auth_tokens.get(header[7:].strip())
        if tenant is None:
            self._unauthorized_total.inc()
            self._send_json(
                request, 401,
                {"error": "missing or invalid bearer token"},
                headers={"WWW-Authenticate": "Bearer"})
            return False
        request.auth_tenant = tenant
        return True

    def _tenant_mismatch(self, request: _Request,
                         session: TenantSession) -> bool:
        """True (and a 403 sent) when the token may not touch ``session``."""
        if request.auth_tenant is None \
                or session.tenant == request.auth_tenant:
            return False
        self._send_json(request, 403, {
            "error": f"token for tenant {request.auth_tenant!r} cannot "
                     f"access a session owned by {session.tenant!r}"})
        return True

    @staticmethod
    def _parse_json(raw: bytes) -> dict:
        if not raw:
            return {}
        payload = json.loads(raw)
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # -- endpoints -----------------------------------------------------------

    def _healthz(self, request: _Request) -> None:
        closing = self.service.closed
        self._send_json(request, 503 if closing else 200, {
            "status": "closing" if closing else "ok",
            "queue_depth": self.service.scheduler.queue_depth(),
            "max_queue_depth": self.max_queue_depth,
            "sessions": len(self.service.sessions),
            "features": list(_FEATURES),
        })

    def _metrics(self, request: _Request) -> None:
        fmt = parse_qs(request.query).get("format", ["json"])[0]
        if fmt == "prometheus":
            self._send_body(
                request, 200, self.service.prometheus_metrics().encode(),
                "text/plain; version=0.0.4; charset=utf-8")
            return
        if fmt != "json":
            self._send_json(
                request, 400,
                {"error": f"unknown metrics format {fmt!r}; "
                          f"options: json, prometheus"})
            return
        self._send_json(request, 200, self.service.stats())

    def _trace(self, request: _Request) -> None:
        # The span ring as one chrome://tracing / Perfetto document;
        # request IDs live in each event's args for correlation.
        self._send_json(request, 200, self.service.tracer.export())

    async def _create_session(self, request: _Request) -> None:
        try:
            payload = self._parse_json(request.body)
            model = payload["model"]
            if not isinstance(model, str):
                raise ValueError(
                    "'model' must be a registry key string over HTTP")
            tenant = payload.get("tenant")
            if request.auth_tenant is not None:
                if tenant is not None and tenant != request.auth_tenant:
                    self._send_json(request, 403, {
                        "error": f"token for tenant "
                                 f"{request.auth_tenant!r} cannot create "
                                 f"a session for {tenant!r}"})
                    return
                tenant = request.auth_tenant
            # compiling a new program family blocks; keep it off the loop
            session = await self._offloaded(
                lambda: self.service.create_session(
                    model,
                    scheme=payload.get("scheme", "paper"),
                    tenant=tenant,
                    model_kwargs=payload.get("model_kwargs"),
                ))
        except ServeError as exc:
            status = 503 if "closed" in str(exc) else 400
            self._send_json(request, status, {"error": str(exc)})
            return
        except (ReproError, KeyError, ValueError, TypeError) as exc:
            # unknown model, bad kwargs, malformed body: the client's fault
            self._send_json(request, 400, {"error": f"bad request: {exc}"})
            return
        family = session.family
        self._send_json(request, 201, {
            "session_id": session.id,
            "tenant": session.tenant,
            "model": family.model_id,
            "input_shape": list(family.example_shape),
            "input_dtype": np.dtype(family.example_dtype).name,
            "label_shape": list(family.label_shape),
            "label_dtype": np.dtype(family.label_dtype).name,
            "num_classes": family.num_classes,
        })

    def _session_status(self, request: _Request, session_id: str) -> None:
        try:
            session = self.service.sessions.get(session_id)
        except ServeError as exc:
            self._send_json(request, 404, {"error": str(exc)})
            return
        if self._tenant_mismatch(request, session):
            return
        self._send_json(request, 200, self._summary(session))

    async def _close_session(self, request: _Request,
                             session_id: str) -> None:
        try:
            session = self.service.sessions.get(session_id)
            if self._tenant_mismatch(request, session):
                return
            summary = self._summary(session)
            await self._offloaded(self.service.close_session, session_id)
        except ServeError as exc:
            status = 404 if "unknown session" in str(exc) else 409
            self._send_json(request, status, {"error": str(exc)})
            return
        self._send_json(request, 200, summary)

    @staticmethod
    def _summary(session: TenantSession) -> dict:
        return {
            "session_id": session.id,
            "tenant": session.tenant,
            "steps": session.steps,
            "examples": session.examples,
            "last_loss": session.last_loss,
        }

    # -- durability endpoints ------------------------------------------------

    async def _checkpoint(self, request: _Request, session_id: str) -> None:
        """POST: persist one checkpoint version to the server-side store."""
        try:
            session = self.service.sessions.get(session_id)
            if self._tenant_mismatch(request, session):
                return
            meta = await self._offloaded(
                self.service.checkpoint_session, session_id)
        except CheckpointError as exc:
            self._send_json(request, 500, {"error": str(exc)})
            return
        except ServeError as exc:
            msg = str(exc)
            # no checkpoint_dir / no restore config: a conflict with how
            # the server is configured, not a bad request
            status = 404 if "unknown session" in msg else 409
            self._send_json(request, status, {"error": msg})
            return
        self._send_json(request, 200, meta)

    async def _download_checkpoint(self, request: _Request,
                                   session_id: str) -> None:
        """GET: the session's current checkpoint as one binary download.

        ``Accept: application/x-repro-step`` negotiates the wire-frame
        form (meta + raw aligned tensor segments, the same framing the
        binary step path uses); the default stays the self-verifying
        ``.ckpt`` byte format. Both feed back through the restore route.
        """
        accept = (request.header("accept") or "").lower()
        framed = wire.CONTENT_TYPE in accept
        try:
            session = self.service.sessions.get(session_id)
            if self._tenant_mismatch(request, session):
                return
            data = await self._offloaded(
                self.service.checkpoint_frame if framed
                else self.service.checkpoint_bytes, session_id)
        except ServeError as exc:
            msg = str(exc)
            status = 404 if "unknown session" in msg else 409
            self._send_json(request, status, {"error": msg})
            return
        ctype = wire.CONTENT_TYPE if framed else "application/octet-stream"
        self._send_body(request, 200, data, ctype,
                        headers={"Content-Disposition":
                                 f'attachment; filename="{session_id}.ckpt"'})

    async def _restore(self, request: _Request) -> None:
        """POST: resurrect a session from uploaded bytes or the store.

        Uploads speak three content types: a wire-framed checkpoint
        (``application/x-repro-step``), the self-verifying ``.ckpt``
        bytes (``application/octet-stream``), or a JSON body naming a
        server-side stored checkpoint. Magic sniffing backs the header
        up, so a mislabelled binary body still restores.
        """
        raw = request.body
        ctype = (request.header("content-type") or "") \
            .split(";")[0].strip().lower()
        try:
            if ctype == wire.CONTENT_TYPE or raw.startswith(wire.MAGIC):
                # decode (tensor copies) off the loop, like the restore
                ckpt = await self._offloaded(checkpoint_from_wire, raw)
                session = await self._offloaded(
                    self.service.restore_session, ckpt)
            elif ctype == "application/octet-stream" \
                    or raw.startswith(_CKPT_MAGIC):
                session = await self._offloaded(
                    self.service.restore_session, raw)
            else:
                payload = self._parse_json(raw)
                session_id = payload.get("session_id")
                if not isinstance(session_id, str) or not session_id:
                    raise ValueError(
                        "restore wants checkpoint bytes "
                        "(application/octet-stream) or a JSON body with "
                        "'session_id' (and optional 'version')")
                version = payload.get("version")
                if version is not None:
                    version = int(version)
                session = await self._offloaded(
                    lambda: self.service.restore_session(
                        session_id=session_id, version=version))
        except CheckpointError as exc:
            # corrupt/unreadable/incompatible checkpoint: the *content*
            # is the problem, not the request shape
            self._send_json(request, 422, {"error": str(exc)})
            return
        except ServeError as exc:
            msg = str(exc)
            status = 503 if "closed" in msg \
                else 409 if "already open" in msg else 400
            self._send_json(request, status, {"error": msg})
            return
        except (ValueError, TypeError) as exc:
            self._send_json(request, 400,
                            {"error": f"bad restore request: {exc}"})
            return
        body = self._summary(session)
        body["restored"] = True
        body["step_seq"] = session.step_seq
        self._send_json(request, 201, body)

    # -- the step path -------------------------------------------------------

    def _parse_step_body(self, request: _Request, family
                         ) -> tuple[np.ndarray, np.ndarray, bool]:
        """Decode the step example from JSON or a binary wire frame.

        Returns ``(x, y, binary)``; raises ``ValueError``/``WireError``
        (mapped to 400 by the caller) on malformed bodies. Binary
        tensors are decoded with ``copy=True`` so downstream kernels see
        ordinary aligned arrays — byte-for-byte the same results as the
        JSON path.
        """
        ctype = (request.header("content-type") or "") \
            .split(";")[0].strip().lower()
        if ctype == wire.CONTENT_TYPE:
            _, tensors = wire.decode_frame(request.body, copy=True)
            if "x" not in tensors or "y" not in tensors:
                raise ValueError(
                    "binary step frame must carry tensors 'x' and 'y'")
            x = np.asarray(tensors["x"], dtype=family.example_dtype)
            y = np.asarray(tensors["y"], dtype=family.label_dtype)
            return x, y, True
        payload = self._parse_json(request.body)
        x = np.asarray(payload["x"], dtype=family.example_dtype)
        y = np.asarray(payload["y"], dtype=family.label_dtype)
        return x, y, False

    async def _step(self, request: _Request, session_id: str) -> None:
        began = time.perf_counter()
        try:
            session = self.service.sessions.get(session_id)
        except ServeError as exc:
            self._send_json(request, 404, {"error": str(exc)})
            return
        if self._tenant_mismatch(request, session):
            return

        # Admission control before the request touches the scheduler:
        # shed load costs the service one body read and nothing else.
        retry = self.limiter.try_acquire(session.tenant)
        if retry > 0.0:
            self._limited_total.inc()
            self._send_json(
                request, 429,
                {"error": f"tenant {session.tenant!r} is over its rate "
                          f"limit", "retry_after": retry},
                headers={"Retry-After": f"{retry:.3f}"})
            return
        depth = self.service.scheduler.queue_depth()
        if depth >= self.max_queue_depth:
            self._shed_total.inc()
            retry = self.retry_after_hint(depth)
            self._send_json(
                request, 429,
                {"error": f"queue depth {depth} at watermark "
                          f"{self.max_queue_depth}; shedding load",
                 "queue_depth": depth, "retry_after": retry},
                headers={"Retry-After": f"{retry:.3f}"})
            return

        # Durability headers. X-Deadline is absolute epoch seconds; it is
        # converted onto time.monotonic() once here and propagated so
        # every later shedding stage compares against the same clock.
        raw_deadline = request.header("x-deadline")
        deadline = None
        if raw_deadline is not None:
            try:
                deadline = time.monotonic() + (float(raw_deadline)
                                               - time.time())
            except ValueError:
                self._send_json(
                    request, 400,
                    {"error": f"bad X-Deadline header {raw_deadline!r}: "
                              f"want absolute epoch seconds"})
                return
            if time.monotonic() >= deadline:
                self._deadline_expired.inc()
                self._send_json(
                    request, 504,
                    {"error": "deadline already passed at admission",
                     "deadline_expired": True})
                return
        idem_key = request.header("idempotency-key")
        if idem_key is not None and not _IDEM_KEY_RE.match(idem_key):
            self._send_json(
                request, 400,
                {"error": "bad Idempotency-Key header: want 1-128 chars "
                          "of [A-Za-z0-9._:-]"})
            return

        try:
            x, y, binary = self._parse_step_body(request, session.family)
        except WireError as exc:
            self._send_json(request, 400,
                            {"error": f"bad step frame: {exc}"})
            return
        except (KeyError, ValueError, TypeError,
                json.JSONDecodeError) as exc:
            self._send_json(request, 400,
                            {"error": f"bad step body: {exc}"})
            return
        respond_binary = wire.CONTENT_TYPE in (
            request.header("accept") or "")

        # The trace context the whole request pipeline records into: the
        # gateway owns admission and serialize, the scheduler queue_wait,
        # the service batch_wait and execute.
        trace = self.service.tracer.trace(
            request.request_id, session_id=session_id,
            tenant=session.tenant)
        trace.add("admission", began, time.perf_counter())
        try:
            future = self.service.submit(session_id, x, y, trace=trace,
                                         deadline=deadline,
                                         idempotency_key=idem_key)
        except DeadlineExpired as exc:
            self._send_json(request, 504, {"error": str(exc),
                                           "deadline_expired": True})
            return
        except ServeError as exc:
            status = 503 if "closed" in str(exc) else 400
            self._send_json(request, status, {"error": str(exc)})
            return

        timeout = self.step_timeout
        if deadline is not None:
            timeout = min(timeout, max(0.0, deadline - time.monotonic()))
        try:
            # Bridge the scheduler's concurrent future onto the loop: the
            # handler suspends here without pinning a thread, which is
            # what lets held connections outnumber the thread budget.
            result = await asyncio.wait_for(asyncio.wrap_future(future),
                                            timeout=timeout)
        except asyncio.CancelledError:
            if future.cancelled():
                # service shutdown cancelled the queued step
                self._send_json(request, 503, {
                    "error": "step cancelled: service is shutting down"})
                return
            raise  # the connection task itself was cancelled
        except asyncio.TimeoutError:
            # Abandon the wait without leaking the request: cancel()
            # succeeds only while it is still queued (the scheduler then
            # drops it at batch-cut and releases any idempotency claim);
            # once running it completes server-side and, if keyed, lands
            # in the replay window for the client's retry.
            future.cancel()
            self._deadline_expired.inc()
            self._send_json(
                request, 504,
                {"error": f"step did not complete within {timeout:.3f}s",
                 "deadline_expired": True})
            return
        except DeadlineExpired as exc:
            self._send_json(request, 504, {"error": str(exc),
                                           "deadline_expired": True})
            return
        except ServeError as exc:
            self._send_json(request, 500, {"error": str(exc)})
            return
        except Exception as exc:  # noqa: BLE001 - surface, don't hang
            self._send_json(request, 500,
                            {"error": f"{type(exc).__name__}: {exc}"})
            return

        # Serialize opens the moment the result lands (covering response
        # bookkeeping + encode; socket write excluded: the span must be
        # *in* the headers it is reported through).
        serialize_began = time.perf_counter()
        self._step_latency.observe((serialize_began - began) * 1e3)
        if trace.spans:
            # resume: the scheduler thread resolved the future at the end
            # of its last span; the loop woke this coroutine here. Without
            # it the handoff is unaccounted time and span coverage lies.
            trace.add("resume", max(s.ended for s in trace.spans),
                      serialize_began)
        doc = _json_safe({
            "session_id": result.session_id,
            "loss": result.loss,
            "step": result.step,
            "batch_size": result.batch_size,
            "program_key": result.program_key,
            "request_id": trace.request_id,
            "replayed": result.replayed,
        })
        if respond_binary:
            body, content_type = wire.encode_frame(doc), wire.CONTENT_TYPE
        else:
            body, content_type = json.dumps(doc).encode(), "application/json"
        trace.add("serialize", serialize_began, time.perf_counter())
        try:
            FAULTS.fire("gateway.reset_after_send",
                        request_id=trace.request_id, session_id=session_id)
        except FaultInjected:
            # Chaos/e2e-retry tests: the step executed and (if keyed) is
            # in the replay window, but the client never hears — simulate
            # the response lost on the wire by dropping the connection.
            request.alive = False
            transport = request.writer.transport
            if transport is not None:
                transport.abort()
            return
        sent = self._send_body(request, 200, body, content_type, headers={
            "Server-Timing": server_timing_header(
                trace.timings_ms(), trace.total_ms()),
        })
        if binary:
            self._steps_binary.inc()
            self._step_bytes_binary.inc(len(request.body) + sent)
        else:
            self._steps_json.inc()
            self._step_bytes_json.inc(len(request.body) + sent)
