"""Canonical cache keys for compiled training programs.

The whole point of the paper's compile-time pipeline is that the expensive
work (autodiff, pruning, graph optimization, scheduling) happens once per
*configuration*, not once per step. A configuration is fully determined by:

* the forward graph — structure, input shapes, **and weights** (constant
  folding can bake frozen weights into the compiled graph, so two tenants
  with different backbones must not share a program),
* the sparse-update scheme (which tensors train, at what channel ratio),
* the optimizer spec (it becomes in-place graph nodes),
* the loss kind and logits binding,
* the :class:`~repro.runtime.compiler.CompileOptions` switches.

:func:`program_key` hashes all of that into one stable hex digest via the
canonical graph encoding in :mod:`repro.ir.serialize`. Equal configurations
collide on purpose; any observable difference separates them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

from ..ir import Graph, graph_fingerprint
from ..runtime.compiler import CompileOptions
from ..sparse import UpdateScheme
from ..train.optim import OptimizerSpec

#: v2: CompileOptions grew ``plan_passes`` (the plan-lowering pipeline
#: joins the key, so cached artifacts re-prebuild when lowering changes).
#: v3: plan-spec v3 — autotuned variant tables, const-folded scalars, and
#: byte-bucketed arena keys change what lowering produces for the *same*
#: options, so every cached artifact must re-prebuild once.
KEY_VERSION = 3


def scheme_token(scheme: UpdateScheme) -> dict[str, Any]:
    """Scheme identity: the (param -> ratio) map, not the display name.

    Two schemes updating the same tensors at the same ratios compile to the
    same program regardless of what they are called.
    """
    return {"updates": {p: float(r) for p, r in sorted(scheme.updates.items())}}


def optimizer_token(spec: OptimizerSpec) -> dict[str, Any]:
    token = {k: v for k, v in sorted(dataclasses.asdict(spec).items())}
    token["family"] = spec.family
    return token


def options_token(options: CompileOptions) -> dict[str, Any]:
    token: dict[str, Any] = {}
    for field in dataclasses.fields(options):
        if field.name == "verify_plans":
            # Verification proves a plan; it never shapes one. Keying on
            # it would split otherwise-identical cached artifacts.
            continue
        value = getattr(options, field.name)
        if field.name == "device":
            # Device objects carry float cost-model constants; their
            # registry key is the stable identity.
            value = getattr(value, "key", None) if value is not None else None
        if isinstance(value, tuple):
            value = list(value)  # JSON-canonical (plan_passes sequences)
        token[field.name] = value
    return token


def program_key(
    forward: Graph,
    *,
    scheme: UpdateScheme,
    optimizer: OptimizerSpec,
    options: CompileOptions | None = None,
    loss: str = "softmax_ce",
    logits: str | None = None,
    include_weights: bool = True,
) -> str:
    """Canonical hash of one training-program configuration.

    ``include_weights=False`` keys on structure only — useful when the
    caller guarantees all tenants share one checkpoint and wants to skip
    hashing large weight tensors.
    """
    doc = key_document(forward, scheme=scheme, optimizer=optimizer,
                       options=options, loss=loss, logits=logits,
                       include_weights=include_weights)
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def key_document(
    forward: Graph,
    *,
    scheme: UpdateScheme,
    optimizer: OptimizerSpec,
    options: CompileOptions | None = None,
    loss: str = "softmax_ce",
    logits: str | None = None,
    include_weights: bool = True,
) -> dict[str, Any]:
    """The pre-hash canonical document (exposed for tests/debugging)."""
    return {
        "key_version": KEY_VERSION,
        "graph": graph_fingerprint(forward, include_weights=include_weights),
        "input_shapes": {
            name: list(forward.spec(name).shape) for name in forward.inputs
        },
        "scheme": scheme_token(scheme),
        "optimizer": optimizer_token(optimizer),
        "options": options_token(options or CompileOptions()),
        "loss": loss,
        "logits": logits,
    }
