"""Per-tenant session state over shared compiled programs.

A compiled :class:`~repro.runtime.Program` is immutable apart from its
``state`` mapping, and one training step only ever writes the entries that
in-place ``apply_*`` nodes touch — the scheme's updated parameters plus
their optimizer slots (:meth:`Program.mutable_state_names`). That makes a
program shareable across any number of tenants: each session owns a private
copy of exactly the mutable entries, and executes through a program *view*
(:meth:`Program.with_state`) that overlays them on the shared template.

Frozen weights, folded constants, graph, schedule: all shared, read-only.
Two sessions can therefore never observe each other's training state — the
only arrays a step writes belong to the session that ran it. (The paper's
sparse-update story is what makes this overlay small: a session's footprint
is the updated tensors, not the model.)
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import TYPE_CHECKING, Iterator

import numpy as np

from ..errors import ServeError
from ..runtime import Executor, Program

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .service import ProgramFamily


class TenantSession:
    """One tenant's mutable fine-tuning state bound to a program family."""

    def __init__(self, session_id: str, tenant: str,
                 family: "ProgramFamily",
                 template_state: dict[str, np.ndarray]) -> None:
        self.id = session_id
        self.tenant = tenant
        self.family = family
        #: private overlay: updated params + optimizer slots, mutated in
        #: place by the apply kernels through program views
        self.state = {name: array.copy()
                      for name, array in template_state.items()}
        #: serializes steps; the scheduler also guarantees one in-flight
        #: batch per session, this is the defence in depth for direct use
        self.lock = threading.RLock()
        self.steps = 0
        self.examples = 0
        self.last_loss = math.nan
        self.loss_history: deque[float] = deque(maxlen=512)
        self._executors: dict[str, Executor] = {}

    def executor_for(self, key: str, program: Program) -> Executor:
        """The session's executor over ``program`` with its state overlaid.

        Executors are created once per (session, compiled program) and
        reused for every subsequent step — the steady-state step path
        allocates no new engine objects. Each executor runs the variant's
        shared :class:`~repro.runtime.plan.ExecutionPlan` (the state
        overlay shares ``meta``, where the plan is cached) over its own
        registers and buffer arena, so recycled buffers never cross
        sessions.
        """
        executor = self._executors.get(key)
        if executor is None:
            executor = Executor(program.with_state(self.state))
            self._executors[key] = executor
        return executor

    def record(self, loss: float, batch_size: int) -> None:
        with self.lock:
            self.steps += 1
            self.examples += batch_size
            self.last_loss = loss
            self.loss_history.append(loss)

    def snapshot(self) -> dict[str, np.ndarray]:
        """Copies of the session's mutable state (checkpointable)."""
        with self.lock:
            return {name: array.copy() for name, array in self.state.items()}

    def load(self, weights: dict[str, np.ndarray]) -> None:
        """Install values into the session's mutable state.

        Copies **into** the existing arrays (never rebinds) so every live
        executor view observes the new values. Only mutable entries can be
        loaded: frozen weights are shared across tenants by construction —
        a tenant needing different frozen weights is a different model,
        i.e. a different program family.
        """
        with self.lock:
            for name, value in weights.items():
                target = self.state.get(name)
                if target is None:
                    raise ServeError(
                        f"session {self.id}: {name!r} is not part of the "
                        f"mutable session state; loadable entries: "
                        f"{sorted(self.state)}"
                    )
                value = np.asarray(value)
                if value.shape != target.shape:
                    raise ServeError(
                        f"session {self.id}: {name!r} expects shape "
                        f"{target.shape}, got {value.shape}"
                    )
                target[...] = value.astype(target.dtype, copy=False)

    def state_bytes(self) -> int:
        return sum(array.nbytes for array in self.state.values())


class SessionManager:
    """Creates, resolves, and retires tenant sessions (thread-safe)."""

    def __init__(self) -> None:
        self._sessions: dict[str, TenantSession] = {}
        self._lock = threading.Lock()
        self._next_id = 0

    def create(self, family: "ProgramFamily", tenant: str | None = None,
               weights: dict[str, np.ndarray] | None = None) -> TenantSession:
        with self._lock:
            session_id = f"sess-{self._next_id:04d}"
            self._next_id += 1
        tenant = tenant or session_id
        session = TenantSession(session_id, tenant, family,
                                family.template_state())
        if weights:
            session.load(weights)
        with self._lock:
            self._sessions[session_id] = session
        return session

    def get(self, session_id: str) -> TenantSession:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise ServeError(f"unknown session {session_id!r}")
        return session

    def close(self, session_id: str) -> TenantSession:
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            raise ServeError(f"unknown session {session_id!r}")
        return session

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __iter__(self) -> Iterator[TenantSession]:
        with self._lock:
            return iter(list(self._sessions.values()))
