"""Per-tenant session state over shared compiled programs.

A compiled :class:`~repro.runtime.Program` is immutable apart from its
``state`` mapping, and one training step only ever writes the entries that
in-place ``apply_*`` nodes touch — the scheme's updated parameters plus
their optimizer slots (:meth:`Program.mutable_state_names`). That makes a
program shareable across any number of tenants: each session owns a private
copy of exactly the mutable entries, and executes through a program *view*
(:meth:`Program.with_state`) that overlays them on the shared template.

Frozen weights, folded constants, graph, schedule: all shared, read-only.
Two sessions can therefore never observe each other's training state — the
only arrays a step writes belong to the session that ran it. (The paper's
sparse-update story is what makes this overlay small: a session's footprint
is the updated tensors, not the model.)
"""

from __future__ import annotations

import math
import re
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from typing import TYPE_CHECKING, Any, Callable, Iterator

import numpy as np

from ..errors import ServeError
from ..runtime import Executor, Program

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .service import ProgramFamily

#: recorded (idempotency key -> result) pairs retained per session; a
#: retry older than this window re-executes, so the window must exceed a
#: client's worst-case in-flight retries (it comfortably does: retries
#: target the most recent step)
IDEMPOTENCY_WINDOW = 128

_SESSION_ID_RE = re.compile(r"^sess-(\d+)$")


class TenantSession:
    """One tenant's mutable fine-tuning state bound to a program family."""

    def __init__(self, session_id: str, tenant: str,
                 family: "ProgramFamily",
                 template_state: dict[str, np.ndarray]) -> None:
        self.id = session_id
        self.tenant = tenant
        self.family = family
        #: private overlay: updated params + optimizer slots, mutated in
        #: place by the apply kernels through program views
        self.state = {name: array.copy()
                      for name, array in template_state.items()}
        #: serializes steps; the scheduler also guarantees one in-flight
        #: batch per session, this is the defence in depth for direct use
        self.lock = threading.RLock()
        self.steps = 0
        self.examples = 0
        self.last_loss = math.nan
        self.loss_history: deque[float] = deque(maxlen=512)
        #: monotonic count of optimizer updates ever applied to this
        #: session's state, *including* applications before a restore —
        #: the checkpoint version number and the dedupe anchor
        self.step_seq = 0
        #: optimizer updates applied since the last checkpoint write
        #: (drives --checkpoint-every)
        self.steps_since_checkpoint = 0
        # Idempotent replay bookkeeping. Guarded by its own small RLock,
        # NOT self.lock: the session lock is held across whole engine
        # steps, and a dedupe probe must never block behind one. The
        # lock is public (RLock) so the service can make its
        # check-window -> enqueue -> register-pending sequence atomic
        # against a concurrent retry carrying the same key.
        self.idem_lock = threading.RLock()
        self._idem_results: OrderedDict[str, Any] = OrderedDict()
        self._idem_pending: dict[str, Future] = {}
        #: monotonic timestamp of the last request touching this session
        #: (maintained by the SessionManager; drives TTL/idle-LRU eviction)
        self.last_used = 0.0
        self._executors: dict[str, Executor] = {}

    def executor_for(self, key: str, program: Program) -> Executor:
        """The session's executor over ``program`` with its state overlaid.

        Executors are created once per (session, compiled program) and
        reused for every subsequent step — the steady-state step path
        allocates no new engine objects. Each executor runs the variant's
        shared :class:`~repro.runtime.plan.ExecutionPlan` (the state
        overlay shares ``meta``, where the plan is cached) over its own
        registers and buffer arena, so recycled buffers never cross
        sessions.
        """
        executor = self._executors.get(key)
        if executor is None:
            executor = Executor(program.with_state(self.state))
            self._executors[key] = executor
        return executor

    def record(self, loss: float, batch_size: int) -> None:
        with self.lock:
            self.steps += 1
            self.step_seq += 1
            self.steps_since_checkpoint += 1
            self.examples += batch_size
            self.last_loss = loss
            self.loss_history.append(loss)

    # -- idempotent step replay ----------------------------------------------

    def recall(self, key: str):
        """The recorded result for ``key``, or None (window miss)."""
        with self.idem_lock:
            result = self._idem_results.get(key)
            if result is not None:
                self._idem_results.move_to_end(key)
            return result

    def pending_future(self, key: str) -> Future | None:
        """The in-flight future already carrying ``key``, if any — a
        concurrent retry attaches to it instead of enqueuing a duplicate
        step."""
        with self.idem_lock:
            return self._idem_pending.get(key)

    def note_pending(self, key: str, future: Future) -> None:
        with self.idem_lock:
            self._idem_pending[key] = future

    def remember(self, key: str, result) -> None:
        """Record ``key``'s result (called *before* the future resolves,
        so a client that acks and instantly retries always hits the
        window) and retire the pending claim."""
        with self.idem_lock:
            self._idem_pending.pop(key, None)
            self._idem_results[key] = result
            self._idem_results.move_to_end(key)
            while len(self._idem_results) > IDEMPOTENCY_WINDOW:
                self._idem_results.popitem(last=False)

    def release(self, key: str) -> None:
        """Drop a pending claim whose step failed — the retry re-executes."""
        with self.idem_lock:
            self._idem_pending.pop(key, None)

    def idempotency_window(self) -> dict[str, Any]:
        """Snapshot of the recorded (key -> result) window."""
        with self.idem_lock:
            return dict(self._idem_results)

    def restore_idempotency(self, window: dict[str, Any]) -> None:
        with self.idem_lock:
            self._idem_results = OrderedDict(window)
            while len(self._idem_results) > IDEMPOTENCY_WINDOW:
                self._idem_results.popitem(last=False)

    def restore_counters(self, *, step_seq: int, steps: int, examples: int,
                         last_loss: float) -> None:
        """Install counters from a checkpoint (restore path)."""
        with self.lock:
            self.step_seq = step_seq
            self.steps = steps
            self.examples = examples
            self.last_loss = last_loss
            self.steps_since_checkpoint = 0

    def snapshot(self) -> dict[str, np.ndarray]:
        """Copies of the session's mutable state (checkpointable)."""
        with self.lock:
            return {name: array.copy() for name, array in self.state.items()}

    def load(self, weights: dict[str, np.ndarray]) -> None:
        """Install values into the session's mutable state.

        Copies **into** the existing arrays (never rebinds) so every live
        executor view observes the new values. Only mutable entries can be
        loaded: frozen weights are shared across tenants by construction —
        a tenant needing different frozen weights is a different model,
        i.e. a different program family.
        """
        with self.lock:
            for name, value in weights.items():
                target = self.state.get(name)
                if target is None:
                    raise ServeError(
                        f"session {self.id}: {name!r} is not part of the "
                        f"mutable session state; loadable entries: "
                        f"{sorted(self.state)}"
                    )
                value = np.asarray(value)
                if value.shape != target.shape:
                    raise ServeError(
                        f"session {self.id}: {name!r} expects shape "
                        f"{target.shape}, got {value.shape}"
                    )
                target[...] = value.astype(target.dtype, copy=False)

    def state_bytes(self) -> int:
        return sum(array.nbytes for array in self.state.values())


class SessionManager:
    """Creates, resolves, evicts, and retires tenant sessions (thread-safe).

    Two eviction policies bound the fleet's session-state footprint:

    * **TTL** (``ttl`` seconds): :meth:`sweep` retires sessions idle longer
      than the TTL. The serving layer calls it opportunistically on the
      request path (throttled internally to at most ~1/s).
    * **idle-LRU at the cap** (``max_sessions``): :meth:`create` evicts the
      least-recently-used idle session to make room; if every session is
      busy (queued or in-flight work, per the ``busy`` predicate), creation
      fails instead of corrupting a live tenant.

    Evicted sessions simply vanish — their mutable state is dropped, and a
    later request for the id gets the usual unknown-session error. Tenants
    that care checkpoint via ``snapshot()``/``close_session``. ``on_evict``
    (e.g. a metrics hook) fires once per evicted session.
    """

    def __init__(self, max_sessions: int | None = None,
                 ttl: float | None = None,
                 busy: Callable[[str], bool] | None = None,
                 on_evict: Callable[[TenantSession], None] | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_sessions is not None and max_sessions < 1:
            raise ServeError(
                f"max_sessions must be >= 1, got {max_sessions}")
        if ttl is not None and ttl <= 0:
            raise ServeError(f"ttl must be > 0, got {ttl}")
        self.max_sessions = max_sessions
        self.ttl = ttl
        self._busy = busy or (lambda session_id: False)
        self._on_evict = on_evict
        self._clock = clock
        self._sessions: dict[str, TenantSession] = {}
        self._lock = threading.Lock()
        self._next_id = 0
        self._last_sweep = clock()
        #: lifetime count of TTL/LRU evictions
        self.evicted = 0

    def create(self, family: "ProgramFamily", tenant: str | None = None,
               weights: dict[str, np.ndarray] | None = None) -> TenantSession:
        with self._lock:
            session_id = f"sess-{self._next_id:04d}"
            self._next_id += 1
        tenant = tenant or session_id
        session = TenantSession(session_id, tenant, family,
                                family.template_state())
        if weights:
            session.load(weights)
        session.last_used = self._clock()
        evicted: list[TenantSession] = []
        with self._lock:
            if self.max_sessions is not None \
                    and len(self._sessions) >= self.max_sessions:
                evicted = self._evict_idle_locked(
                    len(self._sessions) - self.max_sessions + 1)
                if len(self._sessions) >= self.max_sessions:
                    self._notify(evicted)
                    raise ServeError(
                        f"session limit {self.max_sessions} reached and "
                        f"every session is busy; close or drain one first")
            self._sessions[session_id] = session
        self._notify(evicted)
        return session

    def adopt(self, session: TenantSession) -> TenantSession:
        """Install a pre-built session under its *existing* id (restore).

        Refuses when the id is already live — restoring over a running
        session would fork its state. Applies the same at-capacity
        idle-LRU eviction as :meth:`create`, and bumps the id counter
        past numeric ``sess-NNNN`` ids so later :meth:`create` calls can
        never collide with a restored id.
        """
        session.last_used = self._clock()
        evicted: list[TenantSession] = []
        with self._lock:
            if session.id in self._sessions:
                raise ServeError(
                    f"session {session.id!r} is already open; close it "
                    f"before restoring a checkpoint over it")
            if self.max_sessions is not None \
                    and len(self._sessions) >= self.max_sessions:
                evicted = self._evict_idle_locked(
                    len(self._sessions) - self.max_sessions + 1)
                if len(self._sessions) >= self.max_sessions:
                    self._notify(evicted)
                    raise ServeError(
                        f"session limit {self.max_sessions} reached and "
                        f"every session is busy; close or drain one first")
            match = _SESSION_ID_RE.match(session.id)
            if match is not None:
                self._next_id = max(self._next_id, int(match.group(1)) + 1)
            self._sessions[session.id] = session
        self._notify(evicted)
        return session

    def get(self, session_id: str) -> TenantSession:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise ServeError(f"unknown session {session_id!r}")
        session.last_used = self._clock()
        return session

    def sweep(self, force: bool = False) -> list[TenantSession]:
        """Retire sessions idle past the TTL; returns the evicted ones.

        Cheap enough for the request path: without a TTL it is a no-op,
        and with one it self-throttles to roughly one scan per second
        unless ``force`` is set (tests, explicit maintenance).
        """
        if self.ttl is None:
            return []
        now = self._clock()
        with self._lock:
            if not force and now - self._last_sweep < 1.0:
                return []
            self._last_sweep = now
            expired = [
                session for session in self._sessions.values()
                if now - session.last_used > self.ttl
                and not self._busy(session.id)
            ]
            for session in expired:
                del self._sessions[session.id]
            self.evicted += len(expired)
        self._notify(expired)
        return expired

    def _evict_idle_locked(self, need: int) -> list[TenantSession]:
        """Evict up to ``need`` idle sessions, least-recently-used first.

        Callers hold ``self._lock``. Busy sessions are never evicted.
        """
        idle = sorted(
            (s for s in self._sessions.values() if not self._busy(s.id)),
            key=lambda s: s.last_used)
        victims = idle[:need]
        for session in victims:
            del self._sessions[session.id]
        self.evicted += len(victims)
        return victims

    def _notify(self, evicted: list[TenantSession]) -> None:
        if self._on_evict is not None:
            for session in evicted:
                self._on_evict(session)

    def close(self, session_id: str) -> TenantSession:
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            raise ServeError(f"unknown session {session_id!r}")
        return session

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __iter__(self) -> Iterator[TenantSession]:
        with self._lock:
            return iter(list(self._sessions.values()))
