"""Durable session checkpoints: versioned, checksummed, atomic.

A checkpoint freezes everything needed to resurrect a tenant session in a
fresh process: the mutable state overlay (the paper's sparse-update story
keeps this to a few KB — updated parameters plus optimizer slots), the
session counters (``step_seq``/steps/examples/loss), the idempotency
dedupe window (so replay protection survives a crash), and the family
configuration (model registry key, scheme, optimizer, loss) needed to
rebind the session against a compiled program.

File format (single file, self-verifying)::

    magic   b"RPCKPT1\\n"                        8 bytes
    hlen    big-endian uint64                    8 bytes
    header  JSON (version, session, family,
            idempotency window, tensor table)    hlen bytes
    payload raw C-contiguous tensor bytes,
            concatenated per the tensor table
    digest  sha256(magic..payload)               32 bytes

The trailing digest covers every preceding byte, so truncation and
corruption anywhere in the file are both detected
(:class:`~repro.errors.CheckpointError`). Writes are atomic: bytes land
in a same-directory temp file which is fsynced and then ``os.rename``d
into place — a crash mid-write leaves the previous version intact and at
worst a stray temp file, never a torn checkpoint.

:class:`CheckpointStore` lays checkpoints out per session as
``<root>/<session_id>/ckpt-<step_seq>.ckpt``, keeps the newest ``keep``
versions, and on load walks versions newest-first, quarantining unreadable
files (renamed to ``*.corrupt``) and falling back to the previous intact
version.

Over HTTP a checkpoint can also travel as one :mod:`repro.serve.wire`
frame (:func:`checkpoint_to_wire` / :func:`checkpoint_from_wire`), the
same framing the binary step path uses: counters and family config in the
frame meta, state tensors as raw aligned segments. The wire form skips
the sha256 trailer — the HTTP body length already detects truncation —
so it is for transport only; everything written to disk stays in the
self-verifying format above.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from ..errors import CheckpointError
from .faults import FAULTS

MAGIC = b"RPCKPT1\n"
CHECKPOINT_VERSION = 1
_DIGEST = hashlib.sha256
_DIGEST_BYTES = 32


@dataclass
class SessionCheckpoint:
    """One session's durable snapshot (see the module docstring)."""

    #: session identity + counters: id, tenant, step_seq, steps,
    #: examples, last_loss
    session: dict[str, Any]
    #: family configuration: model, model_id, model_kwargs, scheme
    #: ({name, updates}), optimizer ({family, params}), loss, logits
    family: dict[str, Any]
    #: the mutable state overlay, name -> array
    state: dict[str, np.ndarray]
    #: idempotency dedupe window, key -> recorded StepResult fields
    idempotency: dict[str, dict[str, Any]] = field(default_factory=dict)

    @property
    def session_id(self) -> str:
        return str(self.session.get("id", ""))

    @property
    def step_seq(self) -> int:
        return int(self.session.get("step_seq", 0))

    def state_bytes(self) -> int:
        return sum(array.nbytes for array in self.state.values())


def dump_checkpoint(ckpt: SessionCheckpoint) -> bytes:
    """Serialize ``ckpt`` to the self-verifying byte format."""
    tensors = []
    chunks: list[bytes] = []
    offset = 0
    for name in sorted(ckpt.state):
        array = np.ascontiguousarray(ckpt.state[name])
        raw = array.tobytes()
        tensors.append({
            "name": name,
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": offset,
            "nbytes": len(raw),
        })
        chunks.append(raw)
        offset += len(raw)
    header = json.dumps({
        "version": CHECKPOINT_VERSION,
        "session": ckpt.session,
        "family": ckpt.family,
        "idempotency": ckpt.idempotency,
        "tensors": tensors,
    }, sort_keys=True).encode()
    body = b"".join([MAGIC, struct.pack(">Q", len(header)), header, *chunks])
    return body + _DIGEST(body).digest()


def load_checkpoint(data: bytes) -> SessionCheckpoint:
    """Parse checkpoint bytes; :class:`CheckpointError` on any damage."""
    FAULTS.fire("checkpoint.read", nbytes=len(data))
    if len(data) < len(MAGIC) + 8 + _DIGEST_BYTES:
        raise CheckpointError(
            f"checkpoint truncated: {len(data)} bytes is shorter than the "
            f"fixed framing")
    if not data.startswith(MAGIC):
        raise CheckpointError("not a session checkpoint (bad magic)")
    body, digest = data[:-_DIGEST_BYTES], data[-_DIGEST_BYTES:]
    if _DIGEST(body).digest() != digest:
        raise CheckpointError(
            "checkpoint checksum mismatch: the file is corrupt or was "
            "truncated mid-write")
    (hlen,) = struct.unpack_from(">Q", body, len(MAGIC))
    header_start = len(MAGIC) + 8
    payload_start = header_start + hlen
    if payload_start > len(body):
        raise CheckpointError("checkpoint header overruns the file")
    try:
        header = json.loads(body[header_start:payload_start])
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"garbled checkpoint header: {exc}") from None
    version = header.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {version!r} not supported by this "
            f"runtime (speaks {CHECKPOINT_VERSION})")
    payload = body[payload_start:]
    state: dict[str, np.ndarray] = {}
    for spec in header["tensors"]:
        start, nbytes = int(spec["offset"]), int(spec["nbytes"])
        raw = payload[start:start + nbytes]
        if len(raw) != nbytes:
            raise CheckpointError(
                f"checkpoint tensor {spec['name']!r} overruns the payload")
        state[spec["name"]] = np.frombuffer(
            raw, dtype=np.dtype(spec["dtype"])
        ).reshape(spec["shape"]).copy()
    return SessionCheckpoint(
        session=dict(header["session"]),
        family=dict(header["family"]),
        state=state,
        idempotency=dict(header.get("idempotency", {})),
    )


def checkpoint_to_wire(ckpt: SessionCheckpoint) -> bytes:
    """Encode ``ckpt`` as one :mod:`repro.serve.wire` frame (transport
    form: see the module docstring)."""
    from .wire import encode_frame

    meta = {
        "kind": "checkpoint",
        "checkpoint_version": CHECKPOINT_VERSION,
        "session": ckpt.session,
        "family": ckpt.family,
        "idempotency": ckpt.idempotency,
    }
    tensors = {name: np.ascontiguousarray(array)
               for name, array in ckpt.state.items()}
    return encode_frame(meta, tensors)


def checkpoint_from_wire(data: bytes) -> SessionCheckpoint:
    """Decode a :func:`checkpoint_to_wire` frame back into a
    :class:`SessionCheckpoint`; :class:`CheckpointError` on any damage.

    Tensors are decoded with ``copy=True`` — the checkpoint outlives the
    request body it arrived in.
    """
    from .wire import WireError, decode_frame

    try:
        meta, tensors = decode_frame(data, copy=True)
    except WireError as exc:
        raise CheckpointError(
            f"bad wire-framed checkpoint: {exc}") from None
    if meta.get("kind") != "checkpoint":
        raise CheckpointError(
            f"wire frame is not a checkpoint (kind={meta.get('kind')!r})")
    version = meta.get("checkpoint_version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {version!r} not supported by this "
            f"runtime (speaks {CHECKPOINT_VERSION})")
    session = meta.get("session")
    family = meta.get("family")
    if not isinstance(session, dict) or not isinstance(family, dict):
        raise CheckpointError(
            "wire-framed checkpoint lacks session/family metadata")
    idempotency = meta.get("idempotency")
    return SessionCheckpoint(
        session=dict(session),
        family=dict(family),
        state=dict(tensors),
        idempotency=dict(idempotency)
        if isinstance(idempotency, dict) else {},
    )


def write_checkpoint(path: str | Path, ckpt: SessionCheckpoint) -> Path:
    """Atomically write ``ckpt`` to ``path`` (temp file + fsync + rename).

    The ``checkpoint.write`` fault point fires *between* the header and
    the payload hitting the temp file, so an armed kill/exception leaves
    a partial temp file — and, by construction, never a partial final
    file. The ``disk.slow`` point injects write latency.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = dump_checkpoint(ckpt)
    FAULTS.fire("disk.slow", path=str(path))
    tmp = path.with_name(f".tmp-{os.getpid()}-{path.name}")
    try:
        with open(tmp, "wb") as fh:
            split = len(MAGIC) + 8 + 16  # a realistic partial prefix
            fh.write(data[:split])
            fh.flush()
            FAULTS.fire("checkpoint.write", path=str(tmp))
            fh.write(data[split:])
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(path.parent)
    return path


def read_checkpoint(path: str | Path) -> SessionCheckpoint:
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") \
            from None
    return load_checkpoint(data)


def _fsync_dir(path: Path) -> None:
    """Best-effort directory fsync so the rename itself is durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class CheckpointStore:
    """Versioned per-session checkpoint directory (thread-safe).

    One file per (session, step_seq); ``keep`` newest versions are
    retained, older ones pruned after each save. Loading walks versions
    newest-first and treats an unreadable file exactly like the program
    cache treats a corrupt artifact: quarantine (rename to ``*.corrupt``),
    count it, fall back to the next version.
    """

    def __init__(self, root: str | Path, keep: int = 3) -> None:
        if keep < 1:
            raise CheckpointError(f"keep must be >= 1, got {keep}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self._lock = threading.Lock()
        #: lifetime counts (surfaced as serve.checkpoint.* metrics)
        self.writes = 0
        self.corrupt = 0

    def _session_dir(self, session_id: str) -> Path:
        safe = session_id.replace("/", "_")
        return self.root / safe

    @staticmethod
    def _version_of(path: Path) -> int:
        try:
            return int(path.stem.split("-")[-1])
        except ValueError:
            return -1

    def versions(self, session_id: str) -> list[int]:
        """Step-seq versions on disk for ``session_id``, oldest first."""
        directory = self._session_dir(session_id)
        if not directory.is_dir():
            return []
        found = sorted(self._version_of(p)
                       for p in directory.glob("ckpt-*.ckpt"))
        return [v for v in found if v >= 0]

    def path_for(self, session_id: str, version: int) -> Path:
        return self._session_dir(session_id) / f"ckpt-{version:010d}.ckpt"

    def latest_path(self, session_id: str) -> Path | None:
        versions = self.versions(session_id)
        return self.path_for(session_id, versions[-1]) if versions else None

    def save(self, ckpt: SessionCheckpoint) -> Path:
        """Write one version and prune beyond ``keep``; returns the path.

        Saving the same ``step_seq`` twice overwrites idempotently (the
        content is identical by construction — the state is a function of
        the applied steps).
        """
        path = self.path_for(ckpt.session_id, ckpt.step_seq)
        with self._lock:
            write_checkpoint(path, ckpt)
            self.writes += 1
            versions = self.versions(ckpt.session_id)
            for stale in versions[:-self.keep]:
                try:
                    os.unlink(self.path_for(ckpt.session_id, stale))
                except OSError:
                    pass
        return path

    def load(self, session_id: str,
             version: int | None = None) -> SessionCheckpoint:
        """Newest intact checkpoint (or exactly ``version`` when given).

        Unreadable files are quarantined to ``*.corrupt`` and counted;
        with ``version=None`` the walk continues to the previous intact
        version, so one torn/corrupted file never loses the session.
        """
        if version is not None:
            return read_checkpoint(self.path_for(session_id, version))
        versions = self.versions(session_id)
        if not versions:
            raise CheckpointError(
                f"no checkpoint on disk for session {session_id!r}")
        for candidate in reversed(versions):
            path = self.path_for(session_id, candidate)
            try:
                return read_checkpoint(path)
            except CheckpointError:
                self._quarantine(path)
        raise CheckpointError(
            f"every checkpoint for session {session_id!r} is corrupt "
            f"({len(versions)} quarantined)")

    def _quarantine(self, path: Path) -> None:
        with self._lock:
            self.corrupt += 1
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            pass

    def drop(self, session_id: str) -> None:
        """Forget a session's checkpoints (explicit close, tests)."""
        directory = self._session_dir(session_id)
        if not directory.is_dir():
            return
        for path in directory.glob("ckpt-*.ckpt"):
            try:
                os.unlink(path)
            except OSError:
                pass
        try:
            directory.rmdir()
        except OSError:
            pass

    def session_ids(self) -> list[str]:
        """Sessions with at least one checkpoint on disk."""
        return sorted(p.name for p in self.root.iterdir()
                      if p.is_dir() and any(p.glob("ckpt-*.ckpt")))
