"""Per-tenant token-bucket rate limiting for the serve front door.

Admission control at the gateway has two layers: a *global* watermark on
the scheduler's live queue depth (protects the service as a whole) and
these *per-tenant* token buckets (protect tenants from each other — one
chatty client must not be able to fill the queue and starve the rest).
Both are enforced **before** enqueue, so a shed request costs the service
nothing but the JSON parse.

Classic token bucket: a tenant accrues ``rate`` tokens per second up to a
``burst`` cap, and each admitted request spends one. A denied request
reports how long until the next token matures — the gateway forwards that
as ``Retry-After`` so well-behaved clients back off by exactly the right
amount instead of hammering.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..errors import ServeError

#: buckets idle longer than this are pruned (a full bucket holds no state
#: worth keeping — recreating it is equivalent)
IDLE_PRUNE_SECONDS = 300.0


class TokenBucket:
    """One tenant's bucket: ``rate`` tokens/s, capacity ``burst``."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst  # a fresh tenant may spend its full burst
        self.updated = now

    def try_acquire(self, now: float) -> float:
        """Spend one token; returns 0.0 on success, else seconds until
        one matures (the ``Retry-After`` hint)."""
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class RateLimiter:
    """Thread-safe map of per-key token buckets.

    ``rate=None`` disables limiting entirely (every acquire succeeds) so
    callers never need to special-case an unconfigured gateway. ``burst``
    defaults to one second's worth of tokens, floored at 1 so a rate
    below 1/s still admits single requests.
    """

    def __init__(self, rate: float | None, burst: float | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate is not None and rate <= 0:
            raise ServeError(f"rate limit must be > 0 req/s, got {rate}")
        if burst is not None and burst < 1:
            raise ServeError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = float(burst) if burst is not None \
            else (max(1.0, rate) if rate is not None else 1.0)
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def try_acquire(self, key: str) -> float:
        """Admit one request for ``key``; 0.0 = admitted, otherwise the
        retry-after hint in seconds."""
        if self.rate is None:
            return 0.0
        with self._lock:
            now = self._clock()
            bucket = self._buckets.get(key)
            if bucket is None:
                self._prune(now)
                bucket = self._buckets[key] = TokenBucket(
                    self.rate, self.burst, now)
            return bucket.try_acquire(now)

    def _prune(self, now: float) -> None:
        """Drop long-idle buckets (callers hold ``self._lock``).

        Runs only when a new key arrives, so steady-state admission never
        pays a scan; the map stays bounded by the *active* tenant set
        rather than every tenant ever seen.
        """
        if len(self._buckets) < 1024:
            return
        idle = [key for key, bucket in self._buckets.items()
                if now - bucket.updated > IDLE_PRUNE_SECONDS]
        for key in idle:
            del self._buckets[key]

    def __len__(self) -> int:
        with self._lock:
            return len(self._buckets)
