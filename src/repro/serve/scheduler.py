"""Micro-batch scheduler: coalesce same-session step requests, fan out.

Requests arrive as single training examples. The scheduler keeps a FIFO
queue per session, and a dispatcher thread that cuts the head of a queue
into the largest power-of-two micro-batch that fits (``bucket sizes`` —
each bucket size maps to a separately cached program variant compiled for
that batch, which is why the program cache keys include input shapes).
Batches run on a thread worker pool.

Invariants:

* per-session FIFO order — a session's requests are executed in arrival
  order, never concurrently with each other (tenant state is mutable);
* round-robin fairness across sessions with pending work;
* work conservation — a dispatchable batch is dispatched immediately, the
  scheduler never waits for a bucket to fill.

Semantics of a coalesced batch: one optimizer update from the mean loss
over its examples (exactly gradient accumulation at the serving layer).
``max_batch=1`` degrades to strict per-request sequential SGD.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from ..errors import DeadlineExpired, ServeError
from ..obs import TraceContext
from .metrics import MetricsRegistry
from .sessions import TenantSession


@dataclass
class StepRequest:
    """A single-example training step submitted to the service."""

    session: TenantSession
    x: np.ndarray
    y: np.ndarray
    future: Future = field(default_factory=Future)
    submitted_at: float = field(default_factory=time.perf_counter)
    #: request trace context (spans publish through the service tracer)
    trace: TraceContext | None = None
    #: perf_counter when the request was cut out of the queue into an
    #: executing batch (end of queue_wait, start of batch_wait)
    cut_at: float = 0.0
    #: absolute end-to-end deadline on time.monotonic(), or None; expired
    #: requests are shed at batch-cut time instead of executed
    deadline: float | None = None
    #: client idempotency key; the executed result is recorded in the
    #: session's dedupe window under this key before the future resolves
    idem_key: str | None = None


@dataclass(frozen=True)
class StepResult:
    """What a fulfilled step future resolves to."""

    session_id: str
    loss: float
    step: int          #: session step counter after this update
    batch_size: int    #: examples coalesced into the update
    program_key: str
    #: per-stage span durations in ms for *this* request (None when the
    #: request carried no trace context)
    timings: dict[str, float] | None = None
    #: True when this result was served from the session's idempotency
    #: window instead of re-applying the step (a retry after a dropped
    #: connection); the optimizer ran exactly once either way
    replayed: bool = False


def bucket_sizes(max_batch: int) -> list[int]:
    """Allowed micro-batch sizes: powers of two up to, plus, ``max_batch``."""
    if max_batch < 1:
        raise ServeError(f"max_batch must be >= 1, got {max_batch}")
    sizes = {1, max_batch}
    size = 2
    while size <= max_batch:
        sizes.add(size)
        size *= 2
    return sorted(sizes)


#: Executes one coalesced batch for one session; returns the shared result
#: fields (loss, program key) the scheduler expands into per-request
#: StepResults.
BatchRunner = Callable[[TenantSession, list[StepRequest]], StepResult]


class BatchScheduler:
    """Groups step requests into micro-batches and runs them on a pool."""

    def __init__(self, run_batch: BatchRunner, *, max_batch: int = 8,
                 workers: int = 2,
                 metrics: MetricsRegistry | None = None,
                 batch_hold_ms: float = 0.0) -> None:
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers}")
        if batch_hold_ms < 0:
            raise ServeError(
                f"batch_hold_ms must be >= 0, got {batch_hold_ms}")
        self.max_batch = max_batch
        self._buckets = bucket_sizes(max_batch)
        self._run_batch = run_batch
        self._workers_n = workers
        #: batch-aware dispatch: with every worker busy, an executing
        #: session may linger this long before cutting its batch so the
        #: queue refills a larger micro-batch bucket (0 = off, the
        #: work-conserving default). The hold is additionally bounded by
        #: the tightest deadline slack among the queued requests.
        self._hold_s = batch_hold_ms / 1e3
        self._metrics = metrics or MetricsRegistry()
        self._batch_hist = self._metrics.histogram(
            "serve.batch_size", "examples coalesced per executed step")
        self._batch_fill = self._metrics.histogram(
            "serve.batch_fill",
            "executed batch size as a fraction of max_batch")
        self._request_latency = self._metrics.histogram(
            "serve.request_latency_ms", "submit-to-result latency")
        self._batches_total = self._metrics.counter(
            "serve.batches_total", "micro-batches executed")
        self._deadline_expired = self._metrics.counter(
            "serve.deadline_expired",
            "requests shed because their end-to-end deadline passed")
        # Live, not set-on-render: the gateway's admission control and
        # /v1/metrics read this between renders, so it samples the real
        # queues on every read instead of whatever the last render saw.
        self._metrics.callback_gauge(
            "serve.queue_depth", self.queue_depth,
            "requests queued behind executing batches (live)")

        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._queues: dict[str, deque[StepRequest]] = {}
        self._ready: deque[str] = deque()   # sessions awaiting dispatch
        self._sessions: dict[str, TenantSession] = {}
        self._inflight: set[str] = set()
        self._closing = False
        self._closed = False
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve")
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch",
            daemon=True)
        self._dispatcher.start()

    # -- producer side -------------------------------------------------------

    def submit(self, session: TenantSession, x: np.ndarray,
               y: np.ndarray,
               trace: TraceContext | None = None,
               submitted_at: float | None = None,
               deadline: float | None = None,
               idem_key: str | None = None) -> Future:
        """Enqueue one single-example step; returns a Future[StepResult].

        ``submitted_at`` backdates the queue_wait span to when the caller
        accepted the request (the service passes its own entry time so
        validation/copy overhead is attributed to queueing, not lost
        between spans); default is now. ``deadline`` (absolute, on
        ``time.monotonic()``) sheds the request at batch-cut time if it
        has already expired — the future fails with
        :class:`~repro.errors.DeadlineExpired` and no work runs.
        """
        request = StepRequest(session=session, x=x, y=y, trace=trace,
                              deadline=deadline, idem_key=idem_key)
        if submitted_at is not None:
            request.submitted_at = submitted_at
        with self._work:
            if self._closing:
                raise ServeError("scheduler is closed")
            queue = self._queues.get(session.id)
            if queue is None:
                queue = self._queues[session.id] = deque()
                self._sessions[session.id] = session
            queue.append(request)
            if session.id not in self._inflight \
                    and session.id not in self._ready:
                self._ready.append(session.id)
            # notify_all: the dispatcher and any batch-hold waiters share
            # this condition; a single notify could wake only a holder and
            # strand the dispatcher until the next submit
            self._work.notify_all()
        return request.future

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every queued request has been executed."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._queues or self._inflight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
        return True

    def pending(self, session_id: str) -> bool:
        """Whether ``session_id`` has queued or in-flight requests."""
        with self._work:
            return session_id in self._queues or session_id in self._inflight

    def queue_depth(self) -> int:
        """Requests queued but not yet cut into an executing batch.

        The backpressure signal for the serving layer: with the process
        backend this is what grows when the worker pool saturates.
        """
        with self._work:
            return sum(len(queue) for queue in self._queues.values())

    @property
    def closing(self) -> bool:
        """True once :meth:`close` has begun; submits are being refused."""
        return self._closing

    def close(self, wait: bool = True) -> None:
        """Stop accepting work; optionally wait for queued work to finish.

        Close-vs-submit ordering is deterministic: the *first* thing close
        does is flip the scheduler into closing state, so any ``submit``
        that races it either happened-before (its future is drained or
        cancelled like every other queued request, never silently lost) or
        happened-after (it raises ``ServeError``). Without this, a submit
        landing between ``drain()`` returning and the closed flag being
        set would be accepted and then cancelled despite ``wait=True``.

        With ``wait=False``, still-queued requests are cancelled (their
        futures report ``CancelledError``) instead of hanging forever;
        batches already on a worker run to completion in the background.
        """
        with self._work:
            self._closing = True
        if wait:
            self.drain()
        with self._work:
            if self._closed:
                return
            self._closed = True
            stranded = [request for queue in self._queues.values()
                        for request in queue]
            self._queues.clear()
            self._sessions.clear()
            self._ready.clear()
            self._work.notify_all()
        for request in stranded:
            if request.idem_key is not None:
                request.session.release(request.idem_key)
            request.future.cancel()
        self._dispatcher.join(timeout=5)
        self._pool.shutdown(wait=wait)

    # -- dispatcher / workers ------------------------------------------------

    def _cut_batch(self, queue: deque[StepRequest]) -> list[StepRequest]:
        pending = len(queue)
        size = 1
        for bucket in self._buckets:
            if bucket <= min(pending, self.max_batch):
                size = bucket
        return [queue.popleft() for _ in range(size)]

    def _hold_for_fill(self, queue: deque[StepRequest]) -> None:
        """Batch-aware dispatch: linger briefly while workers are saturated.

        Called with the scheduler lock held, on the worker thread about to
        cut ``queue`` into a batch. When every pool worker is busy (this
        one included), latency is queue-bound anyway — waiting up to the
        hold budget for the queue to refill a larger micro-batch bucket
        costs little and buys coalescing. The wait is bounded by the
        tightest deadline slack among the already-queued requests, so a
        hold can never push a request past its deadline. Work conservation
        is preserved in the only case it matters: with a free worker
        available, no hold happens at all.
        """
        if len(queue) >= self.max_batch \
                or len(self._inflight) < self._workers_n:
            return
        cap = self._hold_s
        now = time.monotonic()
        for request in queue:
            if request.deadline is not None:
                cap = min(cap, request.deadline - now - 0.002)
        if cap <= 0:
            return
        hold_until = time.monotonic() + cap
        while len(queue) < self.max_batch and not self._closed \
                and len(self._inflight) >= self._workers_n:
            remaining = hold_until - time.monotonic()
            if remaining <= 0:
                break
            self._work.wait(remaining)

    def _dispatch_loop(self) -> None:
        # The dispatcher only marks a session in-flight and hands it to the
        # pool; the worker cuts the actual micro-batch when it *starts*
        # executing. Requests that arrive while the session waits for a
        # free worker still coalesce into the batch — dispatch-time cutting
        # would freeze the batch too early and waste coalescing under load.
        while True:
            with self._work:
                while not self._ready and not self._closed:
                    self._work.wait()
                if self._closed and not self._ready:
                    return
                session_id = self._ready.popleft()
                self._inflight.add(session_id)
            self._pool.submit(self._execute, session_id)

    def _execute(self, session_id: str) -> None:
        with self._work:
            session = self._sessions.get(session_id)
            if session is None:
                # close(wait=False) cancelled this session's queue between
                # dispatch and execution; nothing left to run.
                self._inflight.discard(session_id)
                self._idle.notify_all()
                return
            queue = self._queues.get(session_id)
            if queue is None:
                self._inflight.discard(session_id)
                self._idle.notify_all()
                return
            if self._hold_s > 0.0:
                self._hold_for_fill(queue)
            batch = self._cut_batch(queue)
            if not queue:
                self._queues.pop(session_id, None)
                self._sessions.pop(session_id, None)
        # Client-cancelled requests drop out of the batch here; marking the
        # rest as running also makes their futures uncancellable, so the
        # optimizer step and the resolved results can't disagree. A
        # cancelled request's idempotency claim is released so a later
        # retry with the same key re-executes instead of attaching to a
        # dead future.
        live = []
        for request in batch:
            if request.future.set_running_or_notify_cancel():
                live.append(request)
            elif request.idem_key is not None:
                request.session.release(request.idem_key)
        batch = live
        # Shed already-expired work *before* it costs an optimizer step:
        # nobody is waiting for these results (the gateway answered 504,
        # or will the moment the future fails), so executing them would
        # only burn a worker a saturated queue needs elsewhere.
        now = time.monotonic()
        expired = [request for request in batch
                   if request.deadline is not None
                   and now > request.deadline]
        if expired:
            batch = [request for request in batch
                     if request not in expired]
            self._deadline_expired.inc(len(expired))
            for request in expired:
                if request.idem_key is not None:
                    request.session.release(request.idem_key)
                request.future.set_exception(DeadlineExpired(
                    f"deadline passed {now - request.deadline:.3f}s before "
                    f"the step was cut from the queue"))
        cut = time.perf_counter()
        for request in batch:
            request.cut_at = cut
            if request.trace is not None:
                request.trace.add("queue_wait", request.submitted_at, cut)
        try:
            if batch:
                result = self._run_batch(session, batch)
                done = time.perf_counter()
                self._batches_total.inc()
                self._batch_hist.observe(len(batch))
                self._batch_fill.observe(len(batch) / self.max_batch)
                for request in batch:
                    self._request_latency.observe(
                        (done - request.submitted_at) * 1e3)
                    final = result if request.trace is None else replace(
                        result, timings=request.trace.timings_ms())
                    if request.idem_key is not None:
                        # Recorded before the future resolves: a client
                        # that receives the ack and instantly retries the
                        # same key must hit the window, never re-execute.
                        session.remember(request.idem_key, final)
                    request.future.set_result(final)
        except BaseException as exc:  # noqa: BLE001 - futures carry it
            for request in batch:
                if request.idem_key is not None:
                    request.session.release(request.idem_key)
                if not request.future.done():
                    request.future.set_exception(exc)
        finally:
            with self._work:
                self._inflight.discard(session_id)
                if session_id in self._queues \
                        and session_id not in self._ready:
                    self._ready.append(session_id)
                    self._work.notify_all()
                self._idle.notify_all()
