"""Evaluation metrics."""

from __future__ import annotations

import numpy as np


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy; accepts [N, C] or [N, T, V] logits."""
    pred = logits.argmax(axis=-1)
    return float((pred == labels).mean())


def perplexity(mean_nll: float) -> float:
    """Perplexity from mean negative log-likelihood."""
    return float(np.exp(min(mean_nll, 30.0)))


class RunningMean:
    """Streaming mean for loss curves."""

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def update(self, value: float, weight: int = 1) -> None:
        self.total += float(value) * weight
        self.count += weight

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")
