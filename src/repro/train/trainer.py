"""Training loop over compiled programs.

The trainer owns a compiled training Program and a weight-sharing inference
Program for evaluation: parameters are numpy arrays mutated in place by the
``apply_*`` kernels, so the evaluation program sees updates immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..errors import ExecutionError
from ..ir import Graph
from ..runtime import Executor, Program
from .metrics import RunningMean, accuracy


def snapshot_weights(program: Program, forward: Graph) -> dict[str, np.ndarray]:
    """Copy the model parameters out of a (trained) program's state."""
    return {
        name: program.state[name].copy()
        for name in forward.initializers
        if name in program.state
    }


def load_checkpoint(forward: Graph, checkpoint: dict[str, np.ndarray]) -> None:
    """Install parameter values into a forward graph **before** compiling.

    Compilation may constant-fold subgraphs that depend only on *frozen*
    weights (paper §3.2: the compiler knows which tensors the scheme
    updates). Folding bakes the weight values in, so checkpoints must be
    loaded into the forward graph prior to ``compile_training`` — loading
    into a compiled program's state would leave stale folded constants.
    """
    for name, value in checkpoint.items():
        if name in forward.initializers:
            forward.initializers[name] = np.array(value, copy=True)


@dataclass
class TrainHistory:
    losses: list[float] = field(default_factory=list)
    eval_accuracy: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


class Trainer:
    """Step/evaluate driver for a compiled training program."""

    def __init__(self, train_program: Program, forward: Graph,
                 input_name: str | None = None) -> None:
        self.program = train_program
        self.executor = Executor(train_program)
        self.loss_name = train_program.meta["loss"]
        self.labels_name = train_program.meta["labels"]
        data_inputs = [
            name for name in train_program.graph.inputs
            if name != self.labels_name
        ]
        if input_name is None:
            if len(data_inputs) != 1:
                raise ExecutionError(
                    f"cannot infer the data input among {data_inputs}; "
                    "pass input_name"
                )
            input_name = data_inputs[0]
        self.input_name = input_name
        self.history = TrainHistory()

        # Evaluation program sharing the training parameters. (Imported
        # lazily: the compiler module depends on this package for losses.)
        from ..runtime.compiler import CompileOptions, compile_inference

        eval_program = compile_inference(
            forward, CompileOptions(winograd=False))
        for name in eval_program.state:
            if name in train_program.state:
                eval_program.state[name] = train_program.state[name]
        self._eval_program = eval_program
        self._eval_executor = Executor(eval_program)
        self._eval_output = eval_program.outputs[0]

    # -- training ------------------------------------------------------------

    def step(self, x: np.ndarray, y: np.ndarray) -> float:
        """One optimizer step; returns the loss."""
        out = self.executor.run({self.input_name: x, self.labels_name: y})
        loss = float(out[self.loss_name])
        self.history.losses.append(loss)
        return loss

    def fit(self, batches: Iterator[tuple[np.ndarray, np.ndarray]],
            max_steps: int | None = None) -> float:
        """Run through ``batches``; returns the mean loss."""
        mean = RunningMean()
        for step, (x, y) in enumerate(batches):
            if max_steps is not None and step >= max_steps:
                break
            mean.update(self.step(x, y))
        return mean.mean

    # -- evaluation ----------------------------------------------------------

    def predict(self, x: np.ndarray) -> np.ndarray:
        out = self._eval_executor.run({self.input_name: x})
        return out[self._eval_output]

    def evaluate(self, x: np.ndarray, y: np.ndarray,
                 batch_size: int | None = None) -> float:
        """Top-1 accuracy over a dataset."""
        expected = self._eval_program.graph.spec(self.input_name).shape
        batch_size = batch_size or expected[0]
        correct = 0
        total = 0
        for begin in range(0, len(x), batch_size):
            xb = x[begin:begin + batch_size]
            yb = y[begin:begin + batch_size]
            if len(xb) < batch_size:  # pad the tail batch
                pad = batch_size - len(xb)
                xb = np.concatenate([xb, np.repeat(xb[-1:], pad, axis=0)])
            logits = self.predict(xb)[:len(yb)]
            correct += (logits.argmax(axis=-1) == yb).sum()
            total += len(yb)
        acc = float(correct / total) if total else float("nan")
        self.history.eval_accuracy.append(acc)
        return acc

    def mean_loss(self, x: np.ndarray, y: np.ndarray) -> float:
        """Evaluate the training loss without updating (for loss curves)."""
        # Run the train program on a state copy so apply ops don't move
        # the weights.
        snapshot = {k: v.copy() for k, v in self.program.state.items()}
        out = self.executor.run({self.input_name: x, self.labels_name: y})
        loss = float(out[self.loss_name])
        for key, value in snapshot.items():
            np.copyto(self.program.state[key], value)
        return loss
