"""Loss functions, built from inference primitives inside the graph.

Losses are composites (log_softmax + onehot + reductions), so autodiff
needs no loss-specific gradient rules — the paper's shared-op-set property
extends all the way to the objective.
"""

from __future__ import annotations

from ..errors import CompileError
from ..ir import DType, GraphBuilder


def softmax_cross_entropy(b: GraphBuilder, logits: str, labels: str) -> str:
    """Mean cross-entropy between ``logits [..., C]`` and int ``labels [...]``.

    Works for classification (``[N, C]`` vs ``[N]``) and language modelling
    (``[N, T, V]`` vs ``[N, T]``) alike.
    """
    logits_shape = b.shape(logits)
    labels_shape = b.shape(labels)
    if logits_shape[:-1] != labels_shape:
        raise CompileError(
            f"labels shape {labels_shape} must equal logits batch dims "
            f"{logits_shape[:-1]}"
        )
    depth = logits_shape[-1]
    rank = len(logits_shape)
    logp = b.emit("log_softmax", [logits], {"axis": rank - 1})
    onehot = b.emit("onehot", [labels], {"depth": depth})
    picked = b.reduce_sum(b.mul(onehot, logp), axes=(rank - 1,))
    return b.reduce_mean(b.neg(picked))


def mean_squared_error(b: GraphBuilder, pred: str, target: str) -> str:
    """Mean squared error over all elements."""
    diff = b.sub(pred, target)
    return b.reduce_mean(b.mul(diff, diff))


def add_loss(b: GraphBuilder, kind: str, output: str,
             label_name: str = "labels") -> tuple[str, str]:
    """Append a loss to a forward graph; returns (labels input, loss value).

    Args:
        b: builder wrapping the graph being extended.
        kind: ``"softmax_ce"`` or ``"mse"``.
        output: name of the model output (logits or regression value).
        label_name: name for the created labels/targets input.
    """
    out_shape = b.shape(output)
    if kind == "softmax_ce":
        labels = b.input(label_name, out_shape[:-1], DType.INT64)
        loss = softmax_cross_entropy(b, output, labels)
    elif kind == "mse":
        labels = b.input(label_name, out_shape, DType.FLOAT32)
        loss = mean_squared_error(b, output, labels)
    else:
        raise CompileError(f"unknown loss kind {kind!r}")
    b.mark_output(loss)
    return labels, loss
