"""Optimizers as graph operators.

``attach_optimizer`` appends one in-place ``apply_*`` node per updated
parameter, allocating optimizer state as initializers. Because the step is
*in the graph*, the reorder pass can schedule each apply immediately after
its gradient — the memory optimization paper §3.2 highlights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CompileError
from ..ir import Graph, GraphBuilder


@dataclass(frozen=True)
class SGD:
    lr: float = 0.01
    momentum: float = 0.0
    weight_decay: float = 0.0
    #: micro-batches averaged before each weight update (paper Table 5
    #: fine-tunes Llama at batch 1 with 16-step accumulation)
    accum_steps: int = 1

    @property
    def state_slots(self) -> int:
        return 1 if self.momentum else 0

    family = "sgd"


@dataclass(frozen=True)
class Adam:
    lr: float = 1e-3
    beta1: float = 0.9
    beta2: float = 0.999
    eps: float = 1e-8
    weight_decay: float = 0.0
    accum_steps: int = 1

    state_slots = 2
    family = "adam"


@dataclass(frozen=True)
class Lion:
    """Lion (Chen et al. 2023): one state buffer; used for Llama fine-tuning."""

    lr: float = 1e-4
    beta1: float = 0.9
    beta2: float = 0.99
    weight_decay: float = 0.0
    accum_steps: int = 1

    state_slots = 1
    family = "lion"


OptimizerSpec = SGD | Adam | Lion


def attach_optimizer(
    b: GraphBuilder,
    grads: dict[str, str],
    spec: OptimizerSpec,
    slice_k: dict[str, int] | None = None,
    slice_axis: dict[str, int] | None = None,
) -> list[str]:
    """Append apply nodes for every (param, grad) pair; returns their outputs.

    Channel-sparse parameters receive state buffers shaped like the *sliced*
    gradient — frozen channels carry no optimizer state, another measured
    memory saving of sub-layer sparse updates.
    """
    slice_k = slice_k or {}
    slice_axis = slice_axis or {}
    if spec.accum_steps < 1:
        raise CompileError(
            f"accum_steps must be >= 1, got {spec.accum_steps}")
    graph = b.graph
    updated_outputs: list[str] = []
    for param, grad in sorted(grads.items()):
        if param not in graph.initializers:
            raise CompileError(f"optimizer target {param!r} is not a parameter")
        grad_spec = graph.spec(grad)
        attrs: dict = {"lr": spec.lr, "weight_decay": spec.weight_decay}
        if spec.accum_steps > 1:
            attrs["accum_steps"] = spec.accum_steps
        if param in slice_k:
            attrs["slice_k"] = slice_k[param]
            attrs["slice_axis"] = slice_axis.get(param, 0)

        def state(suffix: str, shape=None) -> str:
            # Zero-stride views cost nothing to declare; Program.from_graph
            # copies state, which materialises real writable buffers only
            # for programs that will actually execute. State matches the
            # gradient dtype (fp16 training keeps fp16 optimizer state).
            shape = grad_spec.shape if shape is None else shape
            view = np.broadcast_to(grad_spec.dtype.np.type(0), shape)
            return b.initializer(f"{param}.{suffix}", view)

        if isinstance(spec, SGD):
            attrs["momentum"] = spec.momentum
            inputs = [param, grad]
            if spec.momentum:
                inputs.append(state("momentum"))
            op = "apply_sgd"
        elif isinstance(spec, Adam):
            attrs.update(beta1=spec.beta1, beta2=spec.beta2, eps=spec.eps)
            inputs = [param, grad, state("m"), state("v"), state("t", (1,))]
            op = "apply_adam"
        elif isinstance(spec, Lion):
            attrs.update(beta1=spec.beta1, beta2=spec.beta2)
            inputs = [param, grad, state("m")]
            op = "apply_lion"
        else:
            raise CompileError(f"unknown optimizer spec {spec!r}")
        if spec.accum_steps > 1:
            # Gradient accumulator + micro-step counter live with the
            # other optimizer state (this is the buffer conventional
            # frameworks also pay for when accumulating).
            inputs.extend([state("accum"), state("tick", (1,))])
        out = b.emit(op, inputs, attrs, name_hint=f"upd.{param}")
        b.mark_output(out)
        updated_outputs.append(out)
    return updated_outputs


def optimizer_state_bytes(graph: Graph) -> int:
    """Bytes of optimizer state currently present in ``graph``."""
    return sum(
        graph.initializers[name].nbytes
        for name in graph.initializers
        if name.endswith((".momentum", ".m", ".v", ".t", ".accum", ".tick"))
    )
