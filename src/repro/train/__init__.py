"""Training: losses, in-graph optimizers, the trainer loop, metrics."""

from .loss import add_loss, mean_squared_error, softmax_cross_entropy
from .metrics import RunningMean, accuracy, perplexity
from .optim import SGD, Adam, Lion, OptimizerSpec, attach_optimizer
from .session import FineTuneResult, FineTuningSession
from .trainer import TrainHistory, Trainer, load_checkpoint, snapshot_weights

__all__ = [
    "Adam",
    "FineTuneResult",
    "FineTuningSession",
    "Lion",
    "OptimizerSpec",
    "RunningMean",
    "SGD",
    "TrainHistory",
    "Trainer",
    "accuracy",
    "add_loss",
    "attach_optimizer",
    "load_checkpoint",
    "snapshot_weights",
    "mean_squared_error",
    "perplexity",
    "softmax_cross_entropy",
]
