"""High-level fine-tuning session API.

Wraps the pretrain -> snapshot -> (re)compile-with-scheme -> fine-tune ->
evaluate workflow that every transfer-learning experiment repeats, with the
checkpoint-before-compile ordering handled correctly (constant folding
bakes frozen weights; see :func:`repro.train.trainer.load_checkpoint`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ir import Graph
from ..sparse import UpdateScheme, full_update
from .optim import Adam, OptimizerSpec
from .trainer import Trainer, load_checkpoint, snapshot_weights


@dataclass
class FineTuneResult:
    scheme: str
    final_loss: float
    accuracy: float | None
    num_nodes: int
    peak_transient_bytes: int
    losses: list[float] = field(default_factory=list, repr=False)


class FineTuningSession:
    """Owns a forward graph and a (pre-trained) weight checkpoint."""

    def __init__(self, forward: Graph, optimizer: OptimizerSpec | None = None,
                 input_name: str | None = None) -> None:
        self.forward = forward
        self.optimizer = optimizer or Adam(2e-3)
        self.input_name = input_name
        self.checkpoint: dict[str, np.ndarray] | None = None

    # -- pretraining ---------------------------------------------------------

    def pretrain(self, batches, optimizer: OptimizerSpec | None = None,
                 max_steps: int | None = None) -> float:
        """Full-BP training from the current weights; snapshots the result."""
        from ..runtime.compiler import compile_training

        if self.checkpoint is not None:
            load_checkpoint(self.forward, self.checkpoint)
        program = compile_training(
            self.forward, optimizer=optimizer or self.optimizer,
            scheme=full_update(self.forward))
        trainer = Trainer(program, self.forward, input_name=self.input_name)
        mean_loss = trainer.fit(batches, max_steps=max_steps)
        self.checkpoint = snapshot_weights(program, self.forward)
        return mean_loss

    def load(self, checkpoint: dict[str, np.ndarray]) -> None:
        self.checkpoint = {k: np.array(v, copy=True)
                           for k, v in checkpoint.items()}

    # -- fine-tuning -----------------------------------------------------------

    def finetune(self, scheme: UpdateScheme, batches,
                 eval_data: tuple[np.ndarray, np.ndarray] | None = None,
                 optimizer: OptimizerSpec | None = None,
                 max_steps: int | None = None) -> FineTuneResult:
        """Fine-tune from the checkpoint under ``scheme``.

        The checkpoint (if any) is installed into the forward graph before
        compilation so frozen-weight folding sees the right values; the
        session's stored checkpoint itself is never mutated.
        """
        from ..runtime.compiler import compile_training

        if self.checkpoint is not None:
            load_checkpoint(self.forward, self.checkpoint)
        program = compile_training(
            self.forward, optimizer=optimizer or self.optimizer,
            scheme=scheme)
        trainer = Trainer(program, self.forward, input_name=self.input_name)
        trainer.fit(batches, max_steps=max_steps)
        accuracy = None
        if eval_data is not None:
            accuracy = trainer.evaluate(*eval_data)
        report = program.meta["report"]
        return FineTuneResult(
            scheme=scheme.name,
            final_loss=trainer.history.final_loss,
            accuracy=accuracy,
            num_nodes=report.num_nodes,
            peak_transient_bytes=report.peak_transient_bytes,
            losses=list(trainer.history.losses),
        )

    def compare(self, schemes: dict[str, UpdateScheme], batch_factory,
                eval_data: tuple[np.ndarray, np.ndarray] | None = None,
                ) -> dict[str, FineTuneResult]:
        """Fine-tune once per scheme from the same checkpoint.

        ``batch_factory()`` must return a fresh batch iterator per call so
        every scheme sees identical data.
        """
        return {
            name: self.finetune(scheme, batch_factory(), eval_data=eval_data)
            for name, scheme in schemes.items()
        }
