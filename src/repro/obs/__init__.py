"""`repro.obs`: the serving stack's observability spine.

Request tracing, per-stage latency spans, sampled kernel-level timing,
Chrome-trace export, Prometheus text exposition, and structured JSON
logging. Deliberately a leaf package: it imports nothing from the
compiler, runtime, or serve layers, so every one of them can depend on it
(the runtime profiler shares its Chrome-trace writer, the serve layer owns
a :class:`Tracer`, and step workers ship :class:`TraceCarrier` payloads
across the process boundary).

The contract threaded through :mod:`repro.serve`:

* a request ID is minted at the gateway (or accepted via ``X-Request-Id``)
  and echoed back on every response;
* each admitted step decomposes into named spans — ``admission``,
  ``queue_wait``, ``batch_wait``, ``execute``, ``serialize`` — recorded
  into labeled bucketed histograms (``serve.stage_ms[stage=...]``) and a
  bounded span ring exported as Chrome-trace JSON at ``GET /v1/trace``;
* opt-in sampled per-instruction kernel timing (``--trace-sample N``)
  aggregates per kernel/variant into ``serve.kernel_ms[...]`` and, for the
  process backend, into worker-local stats surfaced by the stepworker
  probe;
* slow requests (``--slow-ms``) log their full span breakdown as
  request-ID-correlated JSON records.
"""

from .chrome import duration_event, trace_document
from .jsonlog import JsonFormatter, configure_json_logging
from .prometheus import render_prometheus, split_labels
from .trace import (STAGES, Span, SpanRing, TraceCarrier, TraceContext,
                    Tracer, mint_request_id, parse_server_timing,
                    server_timing_header)

__all__ = [
    "STAGES",
    "JsonFormatter",
    "Span",
    "SpanRing",
    "TraceCarrier",
    "TraceContext",
    "Tracer",
    "configure_json_logging",
    "duration_event",
    "mint_request_id",
    "parse_server_timing",
    "render_prometheus",
    "server_timing_header",
    "split_labels",
    "trace_document",
]
