"""Request trace contexts, per-stage spans, and the bounded span ring.

The serving stack's tracing model, in three pieces:

* :class:`TraceContext` — one admitted request's identity (request ID,
  session, tenant) plus its recorded spans. Created by
  :meth:`Tracer.trace`; every :meth:`TraceContext.add` call both appends
  the span and publishes it (stage histogram + span ring) through the
  owning tracer, so a span is observed exactly once, by the component
  that measured it: the gateway records ``admission``/``serialize``, the
  scheduler ``queue_wait``, the service ``batch_wait``/``execute``.
* :class:`TraceCarrier` — the slim, picklable projection of a batch's
  trace that crosses the process-pool boundary (request IDs + the kernel
  sampling decision). Workers echo the IDs back with their own timings so
  gateway and worker events correlate in one trace.
* :class:`Tracer` — service-wide: owns the :class:`SpanRing`, the
  ``serve.stage_ms[stage=...]`` / ``serve.kernel_ms[...]`` histograms,
  the sampling counter, and slow-request JSON logging.

Timestamps are ``time.perf_counter()`` values. On Linux that clock is
``CLOCK_MONOTONIC``, which is system-wide, so parent- and worker-process
timestamps share a timeline; the tracer's construction time is the trace
epoch (``ts`` 0 in the exported Chrome trace).
"""

from __future__ import annotations

import logging
import os
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass

from .chrome import duration_event, trace_document

#: the per-request stage spans, in pipeline order. ``resume`` is the
#: scheduler-thread -> event-loop handoff after the step future resolves
#: (the asyncio gateway's only cross-thread hop on the response path).
STAGES = ("admission", "queue_wait", "batch_wait", "execute", "resume",
          "serialize")

_slow_log = logging.getLogger("repro.serve.slow")


def mint_request_id() -> str:
    """A fresh request ID (gateway-minted when the client sends none)."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class Span:
    """One named interval of a request's life (perf_counter seconds)."""

    name: str
    began: float
    ended: float

    @property
    def duration_ms(self) -> float:
        return (self.ended - self.began) * 1e3


@dataclass(frozen=True)
class TraceCarrier:
    """What crosses the worker pickle boundary: IDs + sampling decision."""

    request_ids: tuple[str, ...]
    sample: bool = False


class TraceContext:
    """One request's identity and recorded spans (parent-process only)."""

    __slots__ = ("request_id", "session_id", "tenant", "spans", "tid",
                 "_tracer")

    def __init__(self, request_id: str | None = None,
                 session_id: str = "", tenant: str = "",
                 tracer: "Tracer | None" = None) -> None:
        self.request_id = request_id or mint_request_id()
        self.session_id = session_id
        self.tenant = tenant
        self.spans: list[Span] = []
        self.tid = threading.get_native_id()
        self._tracer = tracer

    def add(self, name: str, began: float, ended: float) -> Span:
        """Record one span; publishes through the owning tracer if any."""
        span = Span(name, began, ended)
        self.spans.append(span)
        if self._tracer is not None:
            self._tracer.on_span(self, span)
        return span

    def timings_ms(self) -> dict[str, float]:
        """Stage name -> milliseconds (summed when a name repeats)."""
        out: dict[str, float] = {}
        for span in self.spans:
            out[span.name] = out.get(span.name, 0.0) + span.duration_ms
        return out

    def total_ms(self) -> float:
        """Wall time from the earliest span start to the latest end."""
        if not self.spans:
            return 0.0
        return (max(s.ended for s in self.spans)
                - min(s.began for s in self.spans)) * 1e3

    def __reduce__(self):
        # Picklable across the spawn boundary (tests assert survival);
        # the tracer stays behind — workers publish via TraceCarrier.
        return (_rebuild_trace,
                (self.request_id, self.session_id, self.tenant, self.spans))


def _rebuild_trace(request_id, session_id, tenant, spans):
    trace = TraceContext(request_id, session_id, tenant)
    trace.spans = list(spans)
    return trace


class SpanRing:
    """Bounded, thread-safe ring of Chrome-trace events.

    Only the parent process writes it (workers ship their events home in
    the step result), so a SIGKILL'd worker can never leave a torn entry:
    either its payload arrived whole or not at all.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.pushed = 0

    def push(self, event: dict) -> None:
        with self._lock:
            self._events.append(event)
            self.pushed += 1

    def snapshot(self) -> list[dict]:
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class Tracer:
    """Service-wide trace sink: ring, stage/kernel histograms, slow log.

    ``sample_every=N`` enables per-instruction kernel timing on one in
    every N executed batches (0 disables it); ``slow_ms`` enables the
    slow-request log: any step whose span total crosses the threshold
    logs its full breakdown as a JSON-correlatable record.
    """

    def __init__(self, metrics=None, *, ring_capacity: int = 4096,
                 sample_every: int = 0, slow_ms: float | None = None,
                 logger: logging.Logger | None = None) -> None:
        if sample_every < 0:
            raise ValueError(
                f"sample_every must be >= 0, got {sample_every}")
        self.metrics = metrics
        self.ring = SpanRing(ring_capacity)
        self.sample_every = sample_every
        self.slow_ms = slow_ms
        self.log = logger or _slow_log
        #: perf_counter origin: ts=0 in the exported trace
        self.epoch = time.perf_counter()
        self.pid = os.getpid()
        self._sample_lock = threading.Lock()
        self._batch_counter = 0
        #: lifetime counts (exported as gauges by the serve layer)
        self.spans_recorded = 0
        self.kernel_samples = 0
        self.slow_requests = 0

    # -- recording -----------------------------------------------------------

    def trace(self, request_id: str | None = None, *, session_id: str = "",
              tenant: str = "") -> TraceContext:
        """A new trace context whose spans publish through this tracer."""
        return TraceContext(request_id, session_id, tenant, tracer=self)

    def should_sample(self) -> bool:
        """Kernel-timing decision for the next batch (1 in sample_every)."""
        if self.sample_every <= 0:
            return False
        with self._sample_lock:
            self._batch_counter += 1
            return self._batch_counter % self.sample_every == 0

    def on_span(self, trace: TraceContext, span: Span) -> None:
        """Publish one completed span: stage histogram + ring event."""
        self.spans_recorded += 1
        if self.metrics is not None:
            self.metrics.histogram(
                f"serve.stage_ms[stage={span.name}]",
                "per-stage request latency").observe(span.duration_ms)
        self.ring.push(duration_event(
            span.name, cat="stage",
            ts_us=(span.began - self.epoch) * 1e6,
            dur_us=(span.ended - span.began) * 1e6,
            pid=self.pid, tid=trace.tid,
            args={"request_id": trace.request_id,
                  "session_id": trace.session_id,
                  "tenant": trace.tenant}))

    def record_kernels(self, events, *, pid: int, request_ids=(),
                       session_id: str = "") -> None:
        """Publish sampled per-instruction timings from either backend.

        ``events`` is a sequence of ``(op, variant, began, ended)`` tuples
        in perf_counter seconds (worker events arrive in the same clock —
        see the module docstring). Each feeds the per-kernel/variant
        histogram and lands in the ring as a ``cat="kernel"`` event.
        """
        args = {"request_id": list(request_ids),
                "session_id": session_id}
        for op, variant, began, ended in events:
            self.kernel_samples += 1
            duration_ms = (ended - began) * 1e3
            if self.metrics is not None:
                self.metrics.histogram(
                    f"serve.kernel_ms[op={op},variant={variant}]",
                    "sampled per-instruction kernel time").observe(
                        duration_ms)
            self.ring.push(duration_event(
                op, cat="kernel",
                ts_us=(began - self.epoch) * 1e6,
                dur_us=(ended - began) * 1e6,
                pid=pid, tid=0,
                args=dict(args, variant=variant)))

    def record_worker_step(self, payload: dict,
                           session_id: str = "") -> None:
        """Ingest one worker's step-observability payload.

        ``payload`` comes back with the step result (never via shared
        state): ``{"pid", "request_ids", "execute": (began, ended),
        "kernels": [(op, variant, began, ended), ...]}``. The echoed
        request IDs are what correlates worker rows with gateway rows in
        the exported trace.
        """
        pid = int(payload["pid"])
        request_ids = list(payload.get("request_ids", ()))
        began, ended = payload["execute"]
        self.ring.push(duration_event(
            "worker_execute", cat="stage",
            ts_us=(began - self.epoch) * 1e6,
            dur_us=(ended - began) * 1e6,
            pid=pid, tid=0,
            args={"request_id": request_ids, "session_id": session_id}))
        kernels = payload.get("kernels") or ()
        if kernels:
            self.record_kernels(kernels, pid=pid, request_ids=request_ids,
                                session_id=session_id)

    def maybe_log_slow(self, trace: TraceContext, **payload) -> bool:
        """Log the full span breakdown when the trace crossed slow_ms."""
        if self.slow_ms is None:
            return False
        total = trace.total_ms()
        if total < self.slow_ms:
            return False
        self.slow_requests += 1
        self.log.warning(
            "slow request %s: %.1fms > %.1fms", trace.request_id, total,
            self.slow_ms,
            extra={"request_id": trace.request_id,
                   "session_id": trace.session_id,
                   "tenant": trace.tenant,
                   "total_ms": round(total, 3),
                   "slow_ms": self.slow_ms,
                   "spans": {k: round(v, 3)
                             for k, v in trace.timings_ms().items()},
                   **payload})
        return True

    # -- export --------------------------------------------------------------

    def export(self) -> dict:
        """The ring as a Chrome-trace document (``GET /v1/trace``)."""
        return trace_document(self.ring.snapshot())


def server_timing_header(timings_ms: dict[str, float],
                         total_ms: float | None = None) -> str:
    """RFC-style ``Server-Timing`` value from a stage->ms mapping."""
    parts = [f"{name};dur={ms:.3f}" for name, ms in timings_ms.items()]
    if total_ms is not None:
        parts.append(f"total;dur={total_ms:.3f}")
    return ", ".join(parts)


def parse_server_timing(header: str) -> dict[str, float]:
    """Inverse of :func:`server_timing_header` (ignores unknown params)."""
    timings: dict[str, float] = {}
    for part in header.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, params = part.partition(";")
        for param in params.split(";"):
            key, _, value = param.strip().partition("=")
            if key == "dur":
                try:
                    timings[name.strip()] = float(value)
                except ValueError:
                    pass
    return timings
