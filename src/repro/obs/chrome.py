"""Chrome-trace (``chrome://tracing`` / Perfetto) JSON helpers.

One writer for every trace producer in the repo: the runtime profiler's
per-node timings (:meth:`repro.runtime.profiler.RuntimeProfile.
to_chrome_trace`) and the serving layer's request-span ring both emit
complete-duration (``"ph": "X"``) events through :func:`duration_event`
and wrap them with :func:`trace_document`, so a trace mixing gateway
spans, worker spans, and kernel timings loads as one coherent timeline.
"""

from __future__ import annotations


def duration_event(name: str, *, cat: str, ts_us: float, dur_us: float,
                   pid: int = 0, tid: int = 0,
                   args: dict | None = None) -> dict:
    """One complete ("X" phase) trace event, JSON-ready."""
    event = {
        "name": name,
        "cat": cat,
        "ph": "X",
        "ts": float(ts_us),
        "dur": float(dur_us),
        "pid": int(pid),
        "tid": int(tid),
    }
    if args:
        event["args"] = args
    return event


def trace_document(events: list[dict]) -> dict:
    """The top-level document ``chrome://tracing`` loads."""
    return {"displayTimeUnit": "ms", "traceEvents": list(events)}
