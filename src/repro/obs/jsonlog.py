"""Structured JSON logging over stdlib ``logging``.

One record per line, machine-parseable, request-ID-correlated: whatever a
``log(...)`` call passes via ``extra=`` lands as top-level JSON fields
next to the timestamp/level/message, so the slow-request log's span
breakdown and the gateway's error records can be grepped and joined by
``request_id`` without a log-parsing layer.
"""

from __future__ import annotations

import json
import logging
import math
import sys
import time

#: LogRecord attributes that are plumbing, not payload
_RESERVED = frozenset(vars(logging.makeLogRecord({})).keys()) \
    | {"message", "asctime", "taskName"}


def _json_safe(value):
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class JsonFormatter(logging.Formatter):
    """Formats each record as one JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        doc = {
            "ts": round(record.created, 6),
            "time": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.gmtime(record.created))
            + f".{int(record.msecs):03d}Z",
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                doc[key] = _json_safe(value)
        if record.exc_info and record.exc_info[0] is not None:
            doc["exc"] = self.formatException(record.exc_info)
        return json.dumps(doc)


def configure_json_logging(level: int = logging.INFO, stream=None,
                           logger_name: str = "repro"
                           ) -> logging.Handler:
    """Attach a JSON handler to the ``repro`` logger tree (idempotent).

    Returns the handler so tests and callers can detach or retarget it.
    Existing JSON handlers installed by a previous call are replaced, so
    re-configuring (e.g. in tests) never double-logs.
    """
    logger = logging.getLogger(logger_name)
    for handler in list(logger.handlers):
        if isinstance(handler.formatter, JsonFormatter):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter())
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return handler
