"""Prometheus text exposition for the serve metrics registry.

Renders a :class:`repro.serve.metrics.MetricsRegistry` in the text format
scrapers speak (version 0.0.4): ``# TYPE`` comments, sanitized metric
names, labels, and — for histograms — *real cumulative buckets* from the
all-time bucket counters, not the windowed quantile ring the table
renderer shows.

Label convention: a registry name may carry a bracketed suffix,
``serve.stage_ms[stage=admission]`` or
``serve.peak_transient_bytes[program=ab12cd]``, which becomes
``{stage="admission"}`` / ``{program="ab12cd"}``. A bare bracketed value
with no ``=`` gets the label key ``id``. Dots become underscores.

Duck-typed against the registry (``items()``) and its metric classes
(``value`` / ``bucket_counts()``) so this module stays a leaf: the serve
layer imports it, never the other way around.
"""

from __future__ import annotations

import math
import re

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")


def split_labels(name: str) -> tuple[str, dict[str, str]]:
    """``"a.b[k=v,p=q]"`` -> ``("a.b", {"k": "v", "p": "q"})``."""
    if not name.endswith("]") or "[" not in name:
        return name, {}
    base, _, suffix = name.partition("[")
    labels: dict[str, str] = {}
    for pair in suffix[:-1].split(","):
        pair = pair.strip()
        if not pair:
            continue
        key, eq, value = pair.partition("=")
        if not eq:
            key, value = "id", key
        labels[key.strip()] = value.strip()
    return base, labels


def _sanitize_name(name: str) -> str:
    name = _NAME_BAD.sub("_", name.replace(".", "_"))
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _format_labels(labels: dict[str, str], extra: dict[str, str]
                   | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{_LABEL_BAD.sub("_", key)}="{_escape(value)}"'
        for key, value in sorted(merged.items()))
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


def _format_value(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def render_prometheus(registry) -> str:
    """The whole registry in Prometheus text exposition format."""
    # Group label variants of one metric under a single # TYPE comment.
    groups: dict[str, list] = {}
    types: dict[str, str] = {}
    helps: dict[str, str] = {}
    for name, metric in sorted(registry.items()):
        base, labels = split_labels(name)
        sanitized = _sanitize_name(base)
        kind = type(metric).__name__
        if kind == "Counter":
            mtype = "counter"
        elif kind == "Histogram":
            mtype = "histogram"
        else:
            mtype = "gauge"
        types.setdefault(sanitized, mtype)
        if getattr(metric, "help", ""):
            helps.setdefault(sanitized, metric.help)
        groups.setdefault(sanitized, []).append((labels, metric))

    lines: list[str] = []
    for sanitized, members in groups.items():
        if sanitized in helps:
            lines.append(f"# HELP {sanitized} {helps[sanitized]}")
        lines.append(f"# TYPE {sanitized} {types[sanitized]}")
        for labels, metric in members:
            if types[sanitized] == "histogram":
                _render_histogram(lines, sanitized, labels, metric)
            else:
                lines.append(
                    f"{sanitized}{_format_labels(labels)} "
                    f"{_format_value(metric.value)}")
    return "\n".join(lines) + "\n"


def _render_histogram(lines: list[str], name: str,
                      labels: dict[str, str], metric) -> None:
    bounds, cumulative, total, count = metric.bucket_counts()
    for le, cum in zip(list(bounds) + ["+Inf"], cumulative):
        le_str = _format_value(le) if not isinstance(le, str) else le
        lines.append(
            f"{name}_bucket{_format_labels(labels, {'le': le_str})} {cum}")
    lines.append(f"{name}_sum{_format_labels(labels)} "
                 f"{_format_value(total)}")
    lines.append(f"{name}_count{_format_labels(labels)} {count}")
