"""The compilation pipeline: trace -> autodiff -> prune -> optimize -> plan.

This is the module that realises the paper's Figure 4 workflow:

1. take a forward graph (from any frontend),
2. append the loss,
3. derive the backward graph at **compile time** for exactly the tensors
   the sparse-update scheme selects (pruned by construction),
4. attach the optimizer as in-place graph nodes,
5. run graph optimizations (folding, CSE, fusion, Winograd, layout),
6. schedule memory-aware (operator reordering + immediate updates),
7. emit an executable :class:`~repro.runtime.program.Program`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..autodiff import build_backward
from ..errors import CompileError
from ..ir import Graph, GraphBuilder
from ..memory import profile_memory
from ..passes import (AlgebraicRewritePass, BiasActivationFusionPass,
                      CommonSubexpressionEliminationPass, ConstantFoldingPass,
                      DeadCodeEliminationPass, ElementwiseGroupPass,
                      LayoutSelectionPass, ParallelLinearFusionPass,
                      PassContext, PassManager, WinogradSelectionPass,
                      default_schedule, memory_aware_schedule)
from ..sparse import ResolvedScheme, UpdateScheme, full_update
from ..train.loss import add_loss
from ..train.optim import OptimizerSpec, SGD, attach_optimizer
from .program import Program


@dataclass
class CompileOptions:
    """Feature switches; defaults are "everything on" (PockEngine mode).

    Baseline framework simulations flip these off to model conventional
    runtime-autodiff engines.
    """

    constant_folding: bool = True
    cse: bool = True
    rewrite: bool = True
    fusion: bool = True
    #: merge frozen same-input linear branches (Q/K/V) into one wide matmul
    parallel_fusion: bool = True
    winograd: bool = True
    layout: bool = True
    reorder: bool = True
    #: conventional frameworks keep every gradient until the optimizer step
    applies_last: bool = False
    #: "masked" sparse support: compute the full backward, mask updates
    masked_sparse: bool = False
    #: False for simulation-only compiles of full-size models: program state
    #: keeps zero-stride placeholder views instead of copying real buffers
    materialize_state: bool = True
    #: plan-lowering pass pipeline (:mod:`repro.runtime.passes`):
    #: ``"default"`` fuses adjacent elementwise instructions and hoists
    #: frozen-weight Winograd transforms; ``"none"`` is the unoptimized
    #: oracle stream (byte-exact interpreter accounting); an explicit
    #: tuple of pass names runs exactly those. Part of the program cache
    #: key — differently-lowered plans never share a cached artifact.
    plan_passes: Any = "default"
    #: run the static plan verifier (:mod:`repro.analysis.planlint`) after
    #: every pass stage of plan lowering. ``None`` defers to the
    #: ``REPRO_VERIFY_PLANS`` environment switch (on in CI); True/False
    #: force it for this compile. Not part of the cache key — verification
    #: never changes the plan, only whether a bad one is allowed to exist.
    verify_plans: bool | None = None
    #: per-instruction kernel-variant selection (:mod:`repro.runtime.
    #: passes.autotune`): ``None`` disables, ``"cost"`` ranks proposed
    #: variants with the device latency model, ``"measure"`` confirms the
    #: ranking with cached on-host microbenchmarks. Decisions land in the
    #: PlanSpec's ``tuned_variants`` table; part of the cache key.
    autotune: Any = None
    #: device key (:mod:`repro.devices.catalog`) the autotune pass ranks
    #: against; ``None`` uses the pass's default edge CPU.
    autotune_device: str | None = None
    device: Any = None
    debug_validate: bool = False


@dataclass
class CompileReport:
    """What compilation did — surfaced in program.meta["report"]."""

    scheme: str
    num_nodes: int
    pass_stats: dict[str, dict] = field(default_factory=dict)
    peak_transient_bytes: int = 0
    resident_bytes: int = 0


def compile_training(
    forward: Graph,
    *,
    loss: str = "softmax_ce",
    logits: str | None = None,
    optimizer: OptimizerSpec | None = None,
    scheme: UpdateScheme | None = None,
    options: CompileOptions | None = None,
) -> Program:
    """Compile a complete training step for ``forward``.

    Args:
        forward: traced forward graph (left untouched; it is cloned).
        loss: loss kind (``softmax_ce`` or ``mse``).
        logits: model output to attach the loss to (default: first output).
        optimizer: optimizer spec (default ``SGD(lr=0.01)``).
        scheme: sparse-update scheme (default: full update).
        options: compilation switches.

    Returns:
        An executable Program whose meta carries ``loss``, ``logits``,
        ``labels`` value names and the compile report.
    """
    options = options or CompileOptions()
    optimizer = optimizer or SGD(lr=0.01)
    graph = forward.clone()
    graph.name = f"{forward.name}.train"
    builder = GraphBuilder(graph=graph)

    logits = logits or (graph.outputs[0] if graph.outputs else None)
    if logits is None:
        raise CompileError("forward graph has no outputs to attach a loss to")
    labels, loss_value = add_loss(builder, loss, logits)

    if scheme is None:  # explicit emptiness must error, not become full
        scheme = full_update(graph)
    resolved = scheme.resolve(graph)
    if not resolved.updates:
        raise CompileError(f"scheme {scheme.name!r} updates nothing")

    if options.masked_sparse:
        # Conventional-framework behaviour: differentiate every trainable
        # tensor, then only apply the scheme's updates (gradients for the
        # rest are computed and thrown away).
        wrt = sorted(graph.trainable)
        backward = build_backward(graph, loss_value, wrt, slice_k={})
        grads = {p: backward.grads[p] for p in resolved.updates}
    else:
        backward = build_backward(
            graph, loss_value, resolved.params, slice_k=resolved.slice_k
        )
        grads = {p: backward.grads[p] for p in resolved.updates}

    attach_optimizer(builder, grads, optimizer,
                     slice_k=resolved.slice_k,
                     slice_axis=resolved.slice_axis)

    # Gradients were marked as graph outputs by autodiff so DCE keeps them;
    # once the optimizer consumes them they need not stay outputs (keeping
    # them alive would defeat the reordering memory win). Masked-sparse mode
    # keeps every gradient as an output, matching frameworks that park all
    # gradients in `.grad` slots until the separate optimizer step.
    if not options.masked_sparse:
        consumed = set(backward.grads.values())
        graph.outputs = [
            o for o in graph.outputs
            if o not in consumed or o == loss_value
        ]

    ctx = PassContext(updated_params=set(resolved.updates),
                      device=options.device)
    pipeline = []
    if options.constant_folding:
        pipeline.append(ConstantFoldingPass())
    if options.cse:
        pipeline.append(CommonSubexpressionEliminationPass())
    if options.rewrite:
        pipeline.append(AlgebraicRewritePass())
    pipeline.append(DeadCodeEliminationPass())
    if options.parallel_fusion:
        pipeline.append(ParallelLinearFusionPass())
    if options.fusion:
        pipeline.append(BiasActivationFusionPass())
    if options.winograd:
        pipeline.append(WinogradSelectionPass())
    if options.layout:
        pipeline.append(LayoutSelectionPass())
    if options.fusion:
        pipeline.append(ElementwiseGroupPass())
    manager = PassManager(pipeline, debug=options.debug_validate)
    pass_report = manager.run(graph, ctx)

    if options.reorder:
        schedule = memory_aware_schedule(graph)
    else:
        schedule = default_schedule(graph, applies_last=options.applies_last)

    program = Program.from_graph(graph, schedule,
                                 copy_state=options.materialize_state)
    program.meta["plan_passes"] = options.plan_passes
    if options.verify_plans is not None:
        program.meta["verify_plans"] = options.verify_plans
    if options.autotune:
        program.meta["autotune"] = options.autotune
        if options.autotune_device:
            program.meta["autotune_device"] = options.autotune_device
    if options.materialize_state:
        # Pay the lowering cost here, with compilation, so the first step a
        # tenant runs is already the zero-interpretation fast path.
        # Simulation-only compiles (placeholder state) skip it.
        program.plan()
    profile = profile_memory(graph, schedule)
    program.meta.update(
        loss=loss_value,
        logits=logits,
        labels=labels,
        scheme=resolved,
        optimizer=optimizer,
        report=CompileReport(
            scheme=scheme.name,
            num_nodes=len(graph.nodes),
            pass_stats={k: v.stats for k, v in pass_report.items()},
            peak_transient_bytes=profile.peak_transient_bytes,
            resident_bytes=profile.resident_bytes,
        ),
    )
    return program


def compile_inference(forward: Graph,
                      options: CompileOptions | None = None) -> Program:
    """Compile a forward-only program with inference optimizations."""
    options = options or CompileOptions()
    graph = forward.clone()
    graph.name = f"{forward.name}.infer"
    ctx = PassContext(updated_params=set(), device=options.device)
    pipeline = []
    if options.constant_folding:
        pipeline.append(ConstantFoldingPass())
    if options.cse:
        pipeline.append(CommonSubexpressionEliminationPass())
    if options.rewrite:
        pipeline.append(AlgebraicRewritePass())
    pipeline.append(DeadCodeEliminationPass())
    if options.parallel_fusion:
        pipeline.append(ParallelLinearFusionPass())
    if options.fusion:
        pipeline.append(BiasActivationFusionPass())
    if options.winograd:
        pipeline.append(WinogradSelectionPass())
    if options.layout:
        pipeline.append(LayoutSelectionPass())
    if options.fusion:
        pipeline.append(ElementwiseGroupPass())
    PassManager(pipeline, debug=options.debug_validate).run(graph, ctx)
    schedule = memory_aware_schedule(graph) if options.reorder \
        else default_schedule(graph)
    program = Program.from_graph(graph, schedule)
    program.meta["plan_passes"] = options.plan_passes
    if options.verify_plans is not None:
        program.meta["verify_plans"] = options.verify_plans
    if options.autotune:
        program.meta["autotune"] = options.autotune
        if options.autotune_device:
            program.meta["autotune_device"] = options.autotune_device
    program.plan()
    return program
