"""Per-instruction kernel-variant selection (the autotune pass).

Earlier passes *propose* variants: ``precompute_frozen`` attaches a
:class:`~repro.runtime.passes.lower.PrecomputeRequest` wherever a frozen
weight makes a hoisted variant legal. This pass *decides*: for every
instruction with a proposal it ranks ``{base, proposed variant}`` with
the plan-level cost model (:class:`repro.devices.PlanCostModel`,
memoized per compile) and keeps the winner — a losing proposal is
removed, so the instruction runs its base kernel and pays no precompute
slot. Every decision (including "keep base") is recorded as a
:class:`~repro.runtime.plan.TunedVariantSpec`; ``allocate`` embeds the
table into the PlanSpec, where it flows through artifacts, the program
cache key, worker probes, and ``planlint``.

Two modes, selected by ``CompileOptions(autotune=...)``:

* ``"cost"`` (default) — rank by the analytical model alone. Fully
  deterministic: the same program and device always produce the same
  PlanSpec.
* ``"measure"`` — confirm the ranking with on-host microbenchmarks of
  the actual kernels over fixed-seed synthetic activations (real frozen
  weights). Timings are cached process-wide, keyed by (kernel, variant,
  shapes, dtype, attrs), so repeat compiles never re-measure; within a
  process, repeat compiles are therefore deterministic too.

Correctness is never at stake — every registered variant is bitwise
identical to its base kernel (the registry contract), so autotune only
moves latency, and ``passes="none"`` remains the byte-exactness oracle.
"""

from __future__ import annotations

import time

import numpy as np

from ...devices import PlanCostModel, get_device
from ...kernels import KERNELS, PRECOMPUTE_TRANSFORMS, VARIANT_KERNELS
from ..plan import TunedVariantSpec
from .lower import LoweredOp, LoweringContext

#: device key used to rank candidates when the compile names none
DEFAULT_TUNING_DEVICE = "raspberry_pi_4"

#: fixed seed for microbenchmark activations — measure-mode inputs must
#: not vary run to run
_BENCH_SEED = 0xA117

#: single-call repetitions per candidate; best-of defeats scheduler noise
_MEASURE_REPEATS = 5

#: process-wide microbenchmark cache: key -> measured microseconds.
#: Keyed by everything that changes the kernel's work so repeat compiles
#: (and shape-identical sibling programs) never re-measure.
_MEASURE_CACHE: dict[tuple, float] = {}


def measure_cache_stats() -> dict[str, int]:
    """Size of the process-wide microbenchmark cache (for probes/tests)."""
    return {"entries": len(_MEASURE_CACHE)}


def clear_measure_cache() -> None:
    """Drop all cached microbenchmark timings (test isolation)."""
    _MEASURE_CACHE.clear()


def _attrs_sig(attrs: dict) -> tuple:
    return tuple(sorted((k, repr(v)) for k, v in attrs.items()))


def _measure_key(op: LoweredOp, ctx: LoweringContext, variant: str,
                 extra: np.ndarray | None) -> tuple:
    shapes = [ctx.shape_dtype(name) for name in op.inputs]
    if extra is not None:
        shapes.append((tuple(extra.shape), extra.dtype))
    return (op.kernel, variant,
            tuple((shape, dtype.name) for shape, dtype in shapes),
            _attrs_sig(ctx.attrs(op.node)))


def _bench_inputs(op: LoweredOp, ctx: LoweringContext) -> list[np.ndarray]:
    """Kernel inputs for a microbenchmark: real values for state (the
    actual frozen weights), fixed-seed synthetics for activations."""
    rng = np.random.default_rng(_BENCH_SEED)
    inputs: list[np.ndarray] = []
    for name in op.inputs:
        value = ctx.program.state.get(name)
        if value is None:
            spec = ctx.spec(name)
            dtype = np.dtype(spec.dtype.np)
            value = rng.standard_normal(tuple(spec.shape))
            value = value.astype(dtype, copy=False)
            if not value.flags.writeable:
                value = np.array(value)
        inputs.append(value)
    return inputs


def _measure(op: LoweredOp, ctx: LoweringContext, variant: str,
             extra: np.ndarray | None) -> tuple[float, bool]:
    """Best-of-N wall time (us) for one candidate; (us, was_cached)."""
    key = _measure_key(op, ctx, variant, extra)
    cached = _MEASURE_CACHE.get(key)
    if cached is not None:
        return cached, True
    fn = KERNELS[op.kernel] if variant == "base" \
        else VARIANT_KERNELS[(op.kernel, variant)]
    inputs = _bench_inputs(op, ctx)
    if extra is not None:
        inputs = inputs + [extra]
    attrs = ctx.attrs(op.node)
    fn(inputs, attrs)  # warm caches / lazy BLAS init outside the timing
    best = float("inf")
    for _ in range(_MEASURE_REPEATS):
        start = time.perf_counter()
        fn(inputs, attrs)
        best = min(best, (time.perf_counter() - start) * 1e6)
    _MEASURE_CACHE[key] = best
    return best, False


def autotune(stream: list[LoweredOp], ctx: LoweringContext
             ) -> tuple[list[LoweredOp], dict]:
    """Decide proposed kernel variants; returns (stream, stats)."""
    meta = ctx.program.meta
    mode = meta.get("autotune") or "cost"
    device = get_device(meta.get("autotune_device")
                        or DEFAULT_TUNING_DEVICE)
    model = PlanCostModel(device)
    kept = reverted = measured = cache_hits = 0
    for op in stream:
        if op.fused is not None or op.precompute is None:
            continue
        node = ctx.nodes[op.node]
        in_specs = [ctx.spec(name) for name in op.inputs]
        out_specs = [ctx.spec(name) for name in op.outputs]
        variant = op.precompute.variant
        predicted = {
            cand: model.estimate_us(op.node, node.op_type, in_specs,
                                    out_specs, node.attrs, cand)
            for cand in ("base", variant)
        }
        measured_us: dict[str, float] = {}
        if mode == "measure":
            transform = PRECOMPUTE_TRANSFORMS[op.precompute.transform]
            extra = transform(ctx.program.state[op.precompute.state])
            for cand, arg in (("base", None), (variant, extra)):
                us, hit = _measure(op, ctx, cand, arg)
                measured_us[cand] = us
                measured += 0 if hit else 1
                cache_hits += 1 if hit else 0
            ranking = measured_us
        else:
            ranking = predicted
        # Strict '<' for base: on a tie the proposed variant wins (it
        # also saves the per-step work the model cannot see, and ties are
        # common for tiny ops dominated by launch cost).
        winner = "base" if ranking["base"] < ranking[variant] else variant
        if winner == "base":
            op.precompute = None
            reverted += 1
        else:
            kept += 1
        ctx.tuned.append(TunedVariantSpec(
            node=op.node, kernel=op.kernel, variant=winner,
            predicted_us=round(predicted[winner], 4),
            measured_us=(round(measured_us[winner], 4)
                         if measured_us else None),
            source=mode))
    return stream, {"tuned": kept + reverted, "kept_variant": kept,
                    "reverted_to_base": reverted,
                    "kernels_measured": measured,
                    "measure_cache_hits": cache_hits}
