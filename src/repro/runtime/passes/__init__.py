"""The plan-lowering pass pipeline: ``lower -> [passes] -> allocate``.

This package is the optimizing half of plan construction
(:func:`repro.runtime.plan.build_plan_spec` delegates here):

* :mod:`lower` — scheduled graph -> linear instruction stream (names, no
  slots yet);
* optimization passes, each ``fn(stream, ctx) -> (stream, stats)``:

  - :mod:`fuse_elementwise` — collapse producer->sole-consumer
    elementwise runs (adjacent chains, then effect-analysis-proven
    non-adjacent merges) into single fused instructions (the
    intermediate slots vanish);
  - :mod:`fold_scalars` — bake frozen shape-() state out of the
    register/slot machinery into per-instruction const splices;
  - :mod:`precompute_frozen` — hoist frozen-weight computation
    (Winograd transforms, 1x1 im2col operands, pre-transposed matmul
    operands) into plan-owned constant slots bound once per session;
  - :mod:`autotune` — per-instruction kernel-variant selection against
    the device cost model (optionally confirmed by cached on-host
    microbenchmarks); runs when ``CompileOptions.autotune`` is set, not
    in :data:`DEFAULT_PASSES`;

* :mod:`allocate` — slots, free-lists, arena caps, and the static
  transient-byte accounting, computed *after* the passes so the numbers
  describe the optimized stream.

Adding a pass: write ``fn(stream, ctx) -> (stream, stats)`` in a new
module, register it in :data:`PASSES`, and (if it should run by default)
append its name to :data:`DEFAULT_PASSES`. The equivalence contract every
pass must honour: byte-identical outputs and mutable state versus the
unoptimized stream, for any program.

Pass selection (``CompileOptions.plan_passes`` / the ``passes=`` argument
throughout the runtime): ``"default"`` runs :data:`DEFAULT_PASSES`,
``"none"`` runs only lower+allocate (the interpreter-oracle
configuration), and an explicit sequence of names runs exactly those, in
the given order.
"""

from __future__ import annotations

from typing import Any, Sequence

from ...errors import ExecutionError
from ..plan import PlanSpec
from .allocate import allocate
from .autotune import autotune
from .fold_scalars import fold_scalars
from .fuse_elementwise import fuse_elementwise
from .lower import LoweredOp, LoweringContext, lower
from .precompute_frozen import precompute_frozen

#: name -> pass fn(stream, ctx) -> (stream, stats)
PASSES = {
    "fuse_elementwise": fuse_elementwise,
    "fold_scalars": fold_scalars,
    "precompute_frozen": precompute_frozen,
    "autotune": autotune,
}

#: the pipeline ``passes="default"`` runs, in order. ``fold_scalars``
#: runs after fusion so folded positions splice into assembled (fused)
#: input lists; ``autotune`` is opt-in via ``CompileOptions.autotune``
#: (run_pipeline appends it), never part of the default set.
DEFAULT_PASSES: tuple[str, ...] = (
    "fuse_elementwise", "fold_scalars", "precompute_frozen")


def resolve_passes(passes: Any) -> tuple[str, ...]:
    """Normalize a pass selection to a tuple of registered pass names.

    Raises:
        ExecutionError: on an unknown pass name or selection value.
    """
    if passes is None or passes == "default":
        return DEFAULT_PASSES
    if passes == "none":
        return ()
    if isinstance(passes, str):
        raise ExecutionError(
            f"unknown pass selection {passes!r}; use 'default', 'none', "
            f"or a sequence of names from {sorted(PASSES)}")
    if not isinstance(passes, Sequence):
        raise ExecutionError(
            f"pass selection must be a string or sequence, got "
            f"{type(passes).__name__}")
    names = tuple(passes)
    for name in names:
        if name not in PASSES:
            raise ExecutionError(
                f"unknown lowering pass {name!r}; registered: "
                f"{sorted(PASSES)}")
    return names


def run_pipeline(program, passes: Any = None,
                 report: dict | None = None,
                 verify: bool | None = None) -> PlanSpec:
    """Lower ``program`` through the configured pipeline into a PlanSpec.

    ``passes=None`` defers to ``program.meta["plan_passes"]`` (set by the
    compiler from ``CompileOptions.plan_passes``), falling back to the
    default pipeline. Pass a dict as ``report`` to receive per-stage
    instruction counts and pass statistics (the perf-smoke benchmark
    publishes these).

    ``verify=None`` defers to ``program.meta["verify_plans"]`` (set from
    ``CompileOptions.verify_plans``) and then the ``REPRO_VERIFY_PLANS``
    environment switch. When on, every pass stage's intermediate stream
    is allocated and checked by the static plan verifier
    (:mod:`repro.analysis.planlint`), so a miscompiling pass is blamed by
    name at compile time instead of corrupting state at run time.

    Raises:
        PlanVerifyError: when verification is on and any stage's plan
            fails a static proof.
    """
    if passes is None:
        passes = program.meta.get("plan_passes")
    names = resolve_passes(passes)
    # CompileOptions.autotune opts the compile into variant selection:
    # append the pass unless already requested explicitly. passes="none"
    # stays untouched — that configuration is the byte-exactness oracle.
    if program.meta.get("autotune") and names and "autotune" not in names:
        names = names + ("autotune",)
    if verify is None:
        verify = program.meta.get("verify_plans")
    if verify is None:
        from ...analysis.planlint import verify_enabled
        verify = verify_enabled()
    ctx = LoweringContext(program)
    stream = lower(ctx)
    if report is not None:
        report["stages"] = [
            {"stage": "lower", "instructions": len(stream)}]
    if verify:
        from ...analysis.planlint import check_plan
        # allocate() is pure w.r.t. the stream, so checking an
        # intermediate stage is just: allocate it, verify the spec.
        check_plan(allocate(stream, ctx, passes=()), program,
                   stage="lower")
    applied: list[str] = []
    for name in names:
        stream, stats = PASSES[name](stream, ctx)
        applied.append(name)
        if report is not None:
            report["stages"].append(
                {"stage": name, "instructions": len(stream), **stats})
        if verify and name != names[-1]:
            from ...analysis.planlint import check_plan
            check_plan(allocate(stream, ctx, passes=tuple(applied)),
                       program, stage=name)
    spec = allocate(stream, ctx, passes=names)
    if verify:
        from ...analysis.planlint import check_plan
        check_plan(spec, program, stage="allocate")
    if report is not None:
        report["stages"].append(
            {"stage": "allocate", "instructions": len(spec.instructions),
             "num_slots": spec.num_slots,
             "peak_transient_bytes": spec.peak_transient_bytes,
             "precomputed_bytes": spec.precomputed_bytes})
    return spec


__all__ = [
    "DEFAULT_PASSES",
    "LoweredOp",
    "LoweringContext",
    "PASSES",
    "allocate",
    "autotune",
    "fold_scalars",
    "fuse_elementwise",
    "lower",
    "precompute_frozen",
    "resolve_passes",
    "run_pipeline",
]
