"""Fold frozen scalar state out of the register/slot machinery.

Training graphs carry a surprising number of shape-``()`` constants as
state — STE clip thresholds, loss scales, LoRA alpha/rank scalars (a
LoRA-BERT step re-binds ~90 of them every step). Each one costs a
register slot, a per-step rebind, and a slot lookup at every consuming
instruction, for a value that never changes.

This pass removes those inputs from the stream: a consuming instruction
records ``(position, state name)`` pairs instead, and the executor
splices the **live** state value back into the kernel's input list at
exactly its original position. Because the positions index the assembled
list, fused link args stay valid untouched, the kernel sees a
byte-identical input list, and a ``with_state`` overlay swapping the
scalar in still takes effect on the very next step — the fold bakes the
*binding*, never the value. State with no remaining slot reference loses
its register slot and its per-step rebind entirely.

Eligibility is strict: only frozen (never in-place-written) state of
shape ``()``, consumed by non-view, non-inplace instructions whose
kernel has no donating variant (donated-input indices are positional
over the raw input list).
"""

from __future__ import annotations

from ...kernels import DONATING_KERNELS
from .lower import LoweredOp, LoweringContext


def fold_scalars(stream: list[LoweredOp], ctx: LoweringContext
                 ) -> tuple[list[LoweredOp], dict]:
    """Fold frozen scalar-state inputs; returns (stream, stats)."""
    foldable_cache: dict[str, bool] = {}

    def foldable(name: str) -> bool:
        flag = foldable_cache.get(name)
        if flag is None:
            flag = (ctx.frozen_state(name)
                    and tuple(ctx.spec(name).shape) == ())
            foldable_cache[name] = flag
        return flag

    folded = 0
    for op in stream:
        if op.is_view or op.is_inplace or op.const_inputs:
            continue
        if op.fused is None and op.kernel in DONATING_KERNELS:
            continue
        if not any(foldable(name) for name in op.inputs):
            continue
        kept: list[str] = []
        consts: list[tuple[int, str]] = []
        for pos, name in enumerate(op.inputs):
            if foldable(name):
                consts.append((pos, name))
            else:
                kept.append(name)
        op.inputs = tuple(kept)
        op.const_inputs = tuple(consts)
        folded += len(consts)
    states = {name for op in stream for _, name in op.const_inputs}
    return stream, {"folded_args": folded, "folded_states": len(states)}
