"""Hoist frozen-weight computation to bind time as plan-owned constants.

The graph-level WinogradSelectionPass already restricts ``algo ==
"winograd"`` to convolutions whose weights the sparse scheme never
updates — exactly the paper's argument: under sparse backpropagation most
weights are frozen, so per-step work that depends only on the weight can
be paid once instead of once per step. Until now "once" still meant once
per *kernel call*; this pass moves it to once per *session*: the
instruction switches to a registered variant kernel and receives a
plan-owned constant slot the executor fills by applying the registered
transform to the frozen weight the first time it runs (cached by
source-array identity, so every subsequent step republishes the same
array for free).

Three hoists, each gated on the runtime actually registering the variant
and transform:

* ``winograd_precomputed`` — the ``U = G g Gᵀ`` weight transform for
  3x3 winograd convs (since PR 5);
* ``im2col_precomputed`` — 1x1/pad-0/groups-1 convs: the weight
  pre-flattened to its (cout, cin) GEMM operand, and the variant kernel
  feeds the activation into the GEMM as a reshape view instead of paying
  the base kernel's whole-activation im2col copy;
* ``pretransposed_b`` — ``trans_b`` matmuls over a frozen B: the
  contiguous transpose is materialised once. BLAS may take a different
  (1-ulp-different) code path for the two layouts at some shapes, so
  this hoist additionally runs a compile-time **bitwise probe** on the
  real frozen operand: both layouts are multiplied against a fixed-seed
  synthetic activation and the hoist is taken only when the results are
  byte-identical. GEMM path dispatch depends on shapes and strides, not
  values, so one probe at the op's static shapes decides the path for
  every step.

Bitwise safety for the first two: the transform registry entry is the
exact computation the base kernel performs inline, and frozen state is
written by no in-place node, so recomputing it would yield identical
bytes every step.
"""

from __future__ import annotations

import numpy as np

from ...kernels import PRECOMPUTE_TRANSFORMS, VARIANT_KERNELS
from .lower import LoweredOp, LoweringContext, PrecomputeRequest

_WINOGRAD_VARIANT = "winograd_precomputed"
_WINOGRAD_TRANSFORM = "winograd_weight"
_IM2COL_VARIANT = "im2col_precomputed"
_IM2COL_TRANSFORM = "im2col_weight"
_PRETRANS_VARIANT = "pretransposed_b"
_PRETRANS_TRANSFORM = "transpose_last2"

#: fixed seed for the pretransposed-matmul bitwise probe — decisions must
#: be deterministic across compiles of the same program
_PROBE_SEED = 0x5EED


def _registered(op: str, variant: str, transform: str) -> bool:
    return ((op, variant) in VARIANT_KERNELS
            and transform in PRECOMPUTE_TRANSFORMS)


def _hoist_winograd(op: LoweredOp, ctx: LoweringContext) -> int:
    if ctx.attrs(op.node).get("algo") != "winograd":
        return 0
    weight = op.inputs[1]
    if not ctx.frozen_state(weight):
        return 0  # updated per step (or not state at all): no hoist
    w_spec = ctx.spec(weight)
    if tuple(w_spec.shape[2:]) != (3, 3):
        return 0  # defensive: winograd selection should guarantee this
    cout, cin = int(w_spec.shape[0]), int(w_spec.shape[1])
    op.precompute = PrecomputeRequest(
        state=weight, transform=_WINOGRAD_TRANSFORM,
        variant=_WINOGRAD_VARIANT,
        shape=(cout, cin, 4, 4), dtype="float32")
    return cout * cin * 16 * 4


def _hoist_im2col(op: LoweredOp, ctx: LoweringContext) -> int:
    attrs = ctx.attrs(op.node)
    if attrs.get("algo", "direct") not in (None, "direct"):
        return 0
    stride = attrs.get("stride", 1)
    pad = attrs.get("padding", 0)
    pads = (pad[0], pad[1]) if isinstance(pad, (tuple, list)) else (pad, pad)
    if int(attrs.get("groups", 1)) != 1 or tuple(map(int, pads)) != (0, 0):
        return 0
    weight = op.inputs[1]
    if not ctx.frozen_state(weight):
        return 0
    w_spec = ctx.spec(weight)
    if tuple(w_spec.shape[2:]) != (1, 1):
        return 0
    del stride  # any stride is fine: the variant subsamples the view
    cout, cin = int(w_spec.shape[0]), int(w_spec.shape[1])
    dtype = np.dtype(w_spec.dtype.np)
    op.precompute = PrecomputeRequest(
        state=weight, transform=_IM2COL_TRANSFORM, variant=_IM2COL_VARIANT,
        shape=(cout, cin), dtype=dtype.name)
    return cout * cin * dtype.itemsize


def _pretransposed_probe(ctx: LoweringContext, op: LoweredOp,
                         b_name: str) -> bool:
    """Bitwise probe: does a contiguous-transposed B reproduce the
    strided-view GEMM exactly at this op's shapes?

    Runs on the *real* frozen operand and a fixed-seed synthetic
    activation, so the decision is deterministic per program.
    """
    b = ctx.program.state.get(b_name)
    if b is None or b.ndim < 2:
        return False
    a_spec = ctx.spec(op.inputs[0])
    a_shape = tuple(a_spec.shape)
    if ctx.attrs(op.node).get("trans_a"):
        a_shape = a_shape[:-2] + (a_shape[-1], a_shape[-2])
    rng = np.random.default_rng(_PROBE_SEED)
    a = rng.standard_normal(a_shape).astype(a_spec.dtype.np, copy=False)
    bt_view = np.swapaxes(b, -1, -2)
    bt_flat = np.ascontiguousarray(bt_view)
    ref = a @ bt_view
    got = a @ bt_flat
    return ref.tobytes() == got.tobytes()


def _hoist_pretransposed(op: LoweredOp, ctx: LoweringContext) -> int:
    attrs = ctx.attrs(op.node)
    if not attrs.get("trans_b"):
        return 0
    if len(op.inputs) < 2:
        return 0
    b_name = op.inputs[1]
    if not ctx.frozen_state(b_name):
        return 0
    if not _pretransposed_probe(ctx, op, b_name):
        return 0
    b_spec = ctx.spec(b_name)
    shape = tuple(int(d) for d in b_spec.shape)
    t_shape = shape[:-2] + (shape[-1], shape[-2])
    dtype = np.dtype(b_spec.dtype.np)
    op.precompute = PrecomputeRequest(
        state=b_name, transform=_PRETRANS_TRANSFORM,
        variant=_PRETRANS_VARIANT, shape=t_shape, dtype=dtype.name)
    count = 1
    for dim in t_shape:
        count *= dim
    return count * dtype.itemsize


def precompute_frozen(stream: list[LoweredOp], ctx: LoweringContext
                      ) -> tuple[list[LoweredOp], dict]:
    """Annotate eligible frozen-weight ops; returns (stream, stats)."""
    winograd_ok = _registered("conv2d", _WINOGRAD_VARIANT,
                              _WINOGRAD_TRANSFORM)
    im2col_ok = _registered("conv2d", _IM2COL_VARIANT, _IM2COL_TRANSFORM)
    pretrans_ok = _registered("matmul", _PRETRANS_VARIANT,
                              _PRETRANS_TRANSFORM)
    hoisted: dict[str, int] = {}
    hoisted_bytes = 0
    for op in stream:
        if op.fused is not None or op.precompute is not None \
                or op.const_inputs:
            continue
        added = 0
        if op.kernel == "conv2d" and len(op.inputs) >= 2:
            if winograd_ok:
                added = _hoist_winograd(op, ctx)
            if not added and im2col_ok:
                added = _hoist_im2col(op, ctx)
        elif op.kernel == "matmul" and pretrans_ok:
            added = _hoist_pretransposed(op, ctx)
        if added and op.precompute is not None:
            hoisted[op.precompute.variant] = \
                hoisted.get(op.precompute.variant, 0) + 1
            hoisted_bytes += added
    return stream, {"precomputed": sum(hoisted.values()),
                    "precomputed_bytes": hoisted_bytes,
                    **{f"precomputed_{k}": v for k, v in hoisted.items()}}
