"""Hoist Winograd weight transforms for frozen parameters to bind time.

The graph-level WinogradSelectionPass already restricts ``algo ==
"winograd"`` to convolutions whose weights the sparse scheme never
updates — exactly the paper's argument: under sparse backpropagation most
weights are frozen, so the ``U = G g Gᵀ`` transform can be paid once
instead of once per step. Until now "once" still meant once per *kernel
call*; this pass moves it to once per *session*: the instruction switches
to the ``winograd_precomputed`` variant and receives a plan-owned constant
slot the executor fills by applying the registered transform to the frozen
weight the first time it runs (cached by source-array identity, so every
subsequent step republishes the same array for free).

Bitwise safety: the transform registry entry is the exact computation the
base kernel performs inline, and frozen state is written by no in-place
node, so recomputing it would yield identical bytes every step.
"""

from __future__ import annotations

from ...kernels import PRECOMPUTE_TRANSFORMS, VARIANT_KERNELS
from .lower import LoweredOp, LoweringContext, PrecomputeRequest

_VARIANT = "winograd_precomputed"
_TRANSFORM = "winograd_weight"


def precompute_frozen(stream: list[LoweredOp], ctx: LoweringContext
                      ) -> tuple[list[LoweredOp], dict]:
    """Annotate eligible winograd convs; returns (stream, stats)."""
    if (("conv2d", _VARIANT) not in VARIANT_KERNELS
            or _TRANSFORM not in PRECOMPUTE_TRANSFORMS):
        return stream, {"precomputed": 0}  # runtime lacks the variant
    hoisted = 0
    hoisted_bytes = 0
    for op in stream:
        if op.kernel != "conv2d" or op.fused is not None:
            continue
        if ctx.attrs(op.node).get("algo") != "winograd":
            continue
        weight = op.inputs[1]
        if not ctx.frozen_state(weight):
            continue  # updated per step (or not state at all): no hoist
        w_spec = ctx.spec(weight)
        if tuple(w_spec.shape[2:]) != (3, 3):
            continue  # defensive: winograd selection should guarantee this
        cout, cin = int(w_spec.shape[0]), int(w_spec.shape[1])
        op.precompute = PrecomputeRequest(
            state=weight, transform=_TRANSFORM, variant=_VARIANT,
            shape=(cout, cin, 4, 4), dtype="float32")
        hoisted += 1
        hoisted_bytes += cout * cin * 16 * 4
    return stream, {"precomputed": hoisted,
                    "precomputed_bytes": hoisted_bytes}
