"""Final lowering stage: slots, free-lists, arena caps, byte accounting.

Runs *after* the optimization passes, so everything it derives describes
the optimized stream: fused-away intermediates get no slot and no bytes,
free-lists reference the instructions that actually execute, and arena
caps count the buffers the fused stream can really re-request. For a
``passes="none"`` pipeline this reproduces the legacy monolithic lowering
(and hence the interpreter's measured byte timeline) exactly — that
equality is pinned by the plan equivalence tests.
"""

from __future__ import annotations

import numpy as np

from ...kernels import (DONATED_INPUTS, DONATING_KERNELS, OUT_ALIAS_SAFE,
                        OUT_KERNELS)
from ..plan import (ArenaKey, InstructionSpec, PlanSpec, PrecomputedSpec,
                    VARIANT_BASE, VARIANT_DONATING, arena_key_for)
from .fuse_elementwise import donatable_inputs
from .lower import LoweredOp, LoweringContext


def allocate(stream: list[LoweredOp], ctx: LoweringContext,
             passes: tuple[str, ...]) -> PlanSpec:
    """Assign slots and static bookkeeping; emit the final PlanSpec."""
    graph = ctx.graph
    state_names = ctx.state_names
    keep = ctx.keep

    slots: dict[str, int] = {}

    def slot_of(name: str) -> int:
        slot = slots.get(name)
        if slot is None:
            slot = slots[name] = len(slots)
        return slot

    # State whose every use was scalar-constant folded needs no register
    # slot (and no per-step rebind): the executor splices the live state
    # value straight into the kernel's inputs. Anything still referenced
    # by an instruction or returned to the caller keeps its slot.
    folded_states = {name for op in stream for _, name in op.const_inputs}
    if folded_states:
        referenced = set(keep)
        for op in stream:
            referenced.update(op.inputs)
            referenced.update(op.outputs)
        folded_states -= referenced

    for name in graph.inputs:
        slot_of(name)
    for name in sorted(state_names):
        if name not in folded_states:
            slot_of(name)

    # Producer/consumer facts over the *optimized* stream (fused chains
    # consume their deduplicated external inputs once each).
    producer: dict[str, LoweredOp] = {}
    consumers: dict[str, list[LoweredOp]] = {}
    counts: dict[str, int] = {}
    for op in stream:
        for out in op.outputs:
            producer[out] = op
        for name in op.inputs:
            consumers.setdefault(name, []).append(op)
            counts[name] = counts.get(name, 0) + 1

    def recyclable(name: str) -> bool:
        """True when the buffer behind ``name`` is provably unaliased at
        the moment its last consumer retires."""
        p = producer.get(name)
        if p is None:
            return False  # feeds and state are caller-owned
        if p.is_view or p.is_inplace:
            return False  # may alias another value / mutable state
        if name in keep:
            return False  # returned to the caller, who may hold it
        return all(not c.is_view for c in consumers.get(name, ()))

    # --- walk the stream, simulating the byte timeline -------------------
    live = set(graph.inputs)
    transient = sum(ctx.nbytes(name) for name in graph.inputs)
    peak = transient
    instructions: list[InstructionSpec] = []
    precomputed: dict[tuple[str, str], PrecomputedSpec] = {}

    for op in stream:
        inplace = op.is_inplace
        input_slots = tuple(slots[name] for name in op.inputs)
        output_slots = tuple(slot_of(name) for name in op.outputs)

        # The interpreter materialises results aliasing mutable state; only
        # view-capable kernels with state inputs can produce such results.
        check_state_slots = ()
        if not inplace and op.is_view:
            check_state_slots = tuple(
                slot_of(name) for name in op.inputs if name in state_names)

        # Accounting, mirroring the interpreter loop over this stream.
        for out in op.outputs:
            live.add(out)
            if not inplace:
                transient += ctx.nbytes(out)
        if transient > peak:
            peak = transient

        frees: list[tuple[int, ArenaKey | None]] = []
        if not inplace:  # dead outputs are released immediately
            for out in op.outputs:
                if counts.get(out, 0) == 0 and out not in keep \
                        and out in live:
                    transient -= ctx.nbytes(out)
                    live.discard(out)
                    frees.append((slots[out],
                                  ctx.arena_key(out) if recyclable(out)
                                  else None))
        dying_inputs: list[str] = []
        for name in op.inputs:
            counts[name] -= 1
            if counts[name] == 0 and name in live \
                    and name not in state_names and name not in keep:
                transient -= ctx.nbytes(name)
                live.discard(name)
                dying_inputs.append(name)

        # out= + donation: single-output ops with a registered out-variant
        # (every fused chain has one by construction) get a recycled arena
        # buffer; alias-safe ones may instead write straight into a
        # same-shape input dying at this instruction. For fused chains
        # only inputs read exclusively by the first link are donation-
        # eligible — a later link would read the clobbered buffer.
        use_out = False
        out_shape = out_dtype = None
        donate_slot = -1
        if not inplace and len(op.outputs) == 1 \
                and (op.fused is not None or op.kernel in OUT_KERNELS):
            use_out = True
            out_name = op.outputs[0]
            out_spec = ctx.spec(out_name)
            out_shape = tuple(out_spec.shape)
            out_dtype = np.dtype(out_spec.dtype.np).name
            # Donation demands an *exact* shape/dtype match (the out=
            # kernel writes element-for-element into the donated buffer);
            # the arena's byte-bucketing never applies here.
            out_form = (out_shape, np.dtype(out_dtype))
            if op.fused is not None:
                # Fused link args index the assembled input list (folded
                # scalar constants spliced back in), not ``op.inputs``.
                assembled = list(op.inputs)
                for pos, const_name in op.const_inputs:
                    assembled.insert(pos, const_name)
                safe_idx = donatable_inputs(op)
                donate_ok = {assembled[i] for i in safe_idx}
            elif op.kernel in OUT_ALIAS_SAFE:
                donate_ok = set(op.inputs)
            else:
                donate_ok = set()
            for name in dying_inputs:
                if name in donate_ok and recyclable(name) \
                        and ctx.shape_dtype(name) == out_form:
                    donate_slot = slots[name]
                    break

        variant = VARIANT_BASE
        if op.precompute is not None:
            variant = op.precompute.variant
            key = (op.precompute.state, op.precompute.transform)
            entry = precomputed.get(key)
            if entry is None:
                entry = precomputed[key] = PrecomputedSpec(
                    slot=slot_of(f"__precomputed__{key[0]}.{key[1]}"),
                    state=op.precompute.state,
                    transform=op.precompute.transform,
                    shape=op.precompute.shape,
                    dtype=op.precompute.dtype)
            input_slots = input_slots + (entry.slot,)
        elif op.fused is None and op.kernel in DONATING_KERNELS:
            clobbered = DONATED_INPUTS[op.kernel]
            if all(i < len(op.inputs)
                   and op.inputs[i] in dying_inputs
                   and recyclable(op.inputs[i]) for i in clobbered):
                variant = VARIANT_DONATING

        for name in dying_inputs:
            slot = slots[name]
            if slot == donate_slot:
                # The donated buffer lives on as this node's output.
                frees.append((slot, None))
            else:
                frees.append((slot, ctx.arena_key(name)
                              if recyclable(name) else None))

        if inplace:
            fresh = 0
        elif op.fused is not None:
            # The base-kernel fallback (non-contiguous inputs) really does
            # materialise every link; the out= path allocates at most one.
            fresh = len(op.fused)
        else:
            fresh = len(op.outputs)
        instructions.append(InstructionSpec(
            node=op.node, kernel=op.kernel, variant=variant,
            input_slots=input_slots, output_slots=output_slots,
            use_out=use_out, out_shape=out_shape, out_dtype=out_dtype,
            donate_slot=donate_slot, check_state_slots=check_state_slots,
            frees=tuple(frees), fresh_outputs=fresh, fused=op.fused,
            const_args=tuple(sorted(op.const_inputs))))

    state_slots = {slots[name] for name in state_names if name in slots}
    pre_slots = {entry.slot for entry in precomputed.values()}
    clear_slots = tuple(slot for name, slot in slots.items()
                        if slot not in state_slots and slot not in pre_slots)
    arena_caps: dict[ArenaKey, int] = {}
    for instr in instructions:
        if instr.use_out and instr.donate_slot < 0:
            key = arena_key_for(instr.out_shape, instr.out_dtype)
            arena_caps[key] = arena_caps.get(key, 0) + 1
    entries = tuple(sorted(precomputed.values(), key=lambda e: e.slot))
    return PlanSpec(
        num_slots=len(slots),
        feed_specs=tuple((name, slots[name]) for name in graph.inputs),
        state_bindings=tuple(
            (slots[name], name) for name in sorted(state_names)
            if name in slots),
        output_slots=tuple((name, slots[name])
                           for name in ctx.program.outputs),
        clear_slots=clear_slots,
        arena_caps=tuple(sorted(arena_caps.items(),
                                key=lambda item: repr(item[0]))),
        peak_transient_bytes=peak,
        final_transient_bytes=transient,
        instructions=tuple(instructions),
        passes=passes,
        precomputed=entries,
        precomputed_bytes=sum(entry.nbytes for entry in entries),
        tuned_variants=tuple(ctx.tuned),
    )
