"""Stage 1 of plan lowering: scheduled graph -> linear instruction stream.

The stream (:class:`LoweredOp` list) is the IR the optimization passes
rewrite. It is deliberately *pre-slot*: instructions reference values by
name, carry no free-lists and no byte accounting — all of that is derived
by :mod:`repro.runtime.passes.allocate` *after* the passes ran, so the
numbers always describe the stream that actually executes.

:class:`LoweringContext` carries everything a pass may need about the
program being lowered (specs, state-name sets, node attribute access)
behind one memoized facade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ...errors import ExecutionError
from ...ir.ops import get_schema
from ...kernels import KERNELS, VIEW_OPS
from ..plan import ArenaKey, FusedLinkSpec, TunedVariantSpec, arena_key_for


@dataclass(frozen=True)
class PrecomputeRequest:
    """A pass's request for a plan-owned constant slot (pre-allocation).

    ``allocate`` turns this into a :class:`~repro.runtime.plan.
    PrecomputedSpec` (assigning the slot, deduplicating identical
    requests) and switches the instruction to ``variant``, which receives
    the precomputed value as an extra trailing input.
    """

    state: str          #: source state name (must be frozen)
    transform: str      #: repro.kernels.PRECOMPUTE_TRANSFORMS entry
    variant: str        #: kernel variant that consumes the extra input
    shape: tuple[int, ...]
    dtype: str


@dataclass
class LoweredOp:
    """One pre-allocation instruction: names in, names out.

    ``fused`` (set by fuse_elementwise) lists the constituent elementwise
    links; ``precompute`` (set by precompute_frozen, possibly vetoed by
    autotune) requests a hoisted constant input. At most one of the two is
    ever set — fusable ops are elementwise, precomputable ones are
    convolutions/matmuls. ``const_inputs`` (set by fold_scalars) lists
    (position, state name) pairs folded out of ``inputs``: the positions
    index the *assembled* input list the kernel sees, so splicing the
    state values back in reconstructs the pre-fold list exactly (fused
    link args therefore stay valid unchanged).
    """

    node: str
    kernel: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    fused: tuple[FusedLinkSpec, ...] | None = None
    precompute: PrecomputeRequest | None = None
    const_inputs: tuple[tuple[int, str], ...] = ()

    @property
    def is_view(self) -> bool:
        return self.fused is None and self.kernel in VIEW_OPS

    @property
    def is_inplace(self) -> bool:
        return self.fused is None and get_schema(self.kernel).inplace


@dataclass
class LoweringContext:
    """Shared, memoized program facts for the pass pipeline."""

    program: Any
    _specs: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        program = self.program
        self.graph = program.graph
        self.state_names = set(program.state)
        self.keep = set(program.outputs)
        self.mutable_state = program.mutable_state_names()
        self.nodes = {node.name: node for node in program.schedule}
        #: autotune decisions accumulated by the autotune pass; allocate
        #: embeds them into the PlanSpec's ``tuned_variants`` table
        self.tuned: list[TunedVariantSpec] = []

    def spec(self, name: str):
        value = self._specs.get(name)
        if value is None:
            value = self._specs[name] = self.graph.spec(name)
        return value

    def attrs(self, node_name: str) -> dict[str, Any]:
        return self.nodes[node_name].attrs

    def arena_key(self, name: str) -> ArenaKey:
        s = self.spec(name)
        return arena_key_for(tuple(s.shape), np.dtype(s.dtype.np))

    def shape_dtype(self, name: str) -> tuple[tuple[int, ...], Any]:
        s = self.spec(name)
        return tuple(s.shape), np.dtype(s.dtype.np)

    def nbytes(self, name: str) -> int:
        return self.spec(name).nbytes

    def frozen_state(self, name: str) -> bool:
        """True for state no in-place node ever writes (safe to hoist)."""
        return name in self.state_names and name not in self.mutable_state


def lower(ctx: LoweringContext) -> list[LoweredOp]:
    """Turn the program's schedule into the linear instruction stream.

    Raises:
        ExecutionError: on an op without a registered kernel or an input
            produced by nothing (feeds and state included).
    """
    available = set(ctx.graph.inputs) | ctx.state_names
    stream: list[LoweredOp] = []
    for node in ctx.program.schedule:
        op = node.op_type
        if op not in KERNELS:
            raise ExecutionError(f"no kernel registered for op {op!r}")
        for name in node.inputs:
            if name not in available:
                raise ExecutionError(
                    f"node {node.name!r} input {name!r} unavailable")
        available.update(node.outputs)
        stream.append(LoweredOp(
            node=node.name, kernel=op,
            inputs=tuple(node.inputs), outputs=tuple(node.outputs)))
    for name in ctx.program.outputs:
        if name not in available:
            raise ExecutionError(f"output {name!r} is never produced")
    return stream
