"""Fuse adjacent elementwise instructions into single chain instructions.

A run of elementwise instructions where each link's sole consumer is the
*next* instruction in the stream collapses into one fused instruction
(:class:`~repro.runtime.plan.FusedLinkSpec` chain). The intermediate
values disappear entirely — no slot, no allocation, no free — because the
bound chain threads one shared output buffer through every link's ``out=``
kernel. Byte-identity with the unfused stream follows from two existing
contracts: ``out=`` kernels are bitwise equal to their base kernels, and
``alias_safe`` kernels read element *i* before writing it, so link *k*
may overwrite link *k-1*'s result in place.

Eligibility is deliberately strict (anything else falls back to the
unfused form, never to wrong answers):

* every link is a single-output, non-view, non-inplace op with an
  alias-safe ``out=`` registry entry;
* chain members are **adjacent** in the stream — fusing never reorders
  execution, so an in-place optimizer update scheduled between two
  elementwise ops keeps its observable position;
* every occurrence of a link's output is consumed by the immediately
  following instruction (a value also read later, or returned to the
  caller, must materialise);
* every link produces the same (shape, dtype) as the chain's final
  output — broadcasting may happen *into* a link (a ``bias_add`` bias, a
  scalar operand) but the carried value never changes shape, which is
  what makes the single shared buffer sound.

Donation interplay: an external input may be donated as the chain's
output buffer only when the *first* link is its sole reader — a dying
input consumed by a later link would be clobbered by the first link's
write. ``allocate`` enforces this via the per-instruction
``donatable_inputs`` computed here.
"""

from __future__ import annotations

from ...ir.ops import get_schema
from ...kernels import OUT_ALIAS_SAFE, OUT_KERNELS, VIEW_OPS
from ..plan import FusedLinkSpec
from .lower import LoweredOp, LoweringContext


def _fusable(op: LoweredOp) -> bool:
    if op.fused is not None or op.precompute is not None:
        return False
    k = op.kernel
    return (len(op.outputs) == 1
            and k in OUT_KERNELS and k in OUT_ALIAS_SAFE
            and k not in VIEW_OPS and not get_schema(k).inplace)


def fuse_elementwise(stream: list[LoweredOp], ctx: LoweringContext
                     ) -> tuple[list[LoweredOp], dict]:
    """Collapse maximal adjacent chains; returns (new stream, stats)."""
    # Occurrence map over the incoming stream: value -> consuming indices
    # (repeated per occurrence, so mul(v, v) records index twice).
    consumers: dict[str, list[int]] = {}
    for idx, op in enumerate(stream):
        for name in op.inputs:
            consumers.setdefault(name, []).append(idx)

    fused_stream: list[LoweredOp] = []
    chains = 0
    removed = 0
    i = 0
    while i < len(stream):
        members = [stream[i]]
        j = i
        while j + 1 < len(stream):
            link = stream[j]
            nxt = stream[j + 1]
            if not (_fusable(link) and _fusable(nxt)):
                break
            value = link.outputs[0]
            uses = consumers.get(value, [])
            if not uses or any(use != j + 1 for use in uses):
                break  # dead, multi-consumer, or non-adjacent consumer
            if value in ctx.keep:
                break  # returned to the caller; must materialise
            v_spec = ctx.spec(value)
            n_spec = ctx.spec(nxt.outputs[0])
            if (tuple(v_spec.shape) != tuple(n_spec.shape)
                    or v_spec.dtype != n_spec.dtype):
                break  # carried value would change form mid-chain
            members.append(nxt)
            j += 1
        if len(members) < 2:
            fused_stream.append(stream[i])
            i += 1
            continue
        fused_stream.append(_build_chain(members))
        chains += 1
        removed += len(members) - 1
        i = j + 1
    return fused_stream, {"chains": chains, "instructions_removed": removed}


def _build_chain(members: list[LoweredOp]) -> LoweredOp:
    """One fused LoweredOp from adjacent chain ``members``."""
    external: dict[str, int] = {}
    links: list[FusedLinkSpec] = []
    prev_value: str | None = None
    for member in members:
        args: list[int | None] = []
        for name in member.inputs:
            if name == prev_value:
                args.append(None)
            else:
                idx = external.get(name)
                if idx is None:
                    idx = external[name] = len(external)
                args.append(idx)
        links.append(FusedLinkSpec(node=member.node, kernel=member.kernel,
                                   args=tuple(args)))
        prev_value = member.outputs[0]
    last = members[-1]
    return LoweredOp(
        node=last.node, kernel=last.kernel,
        inputs=tuple(external), outputs=last.outputs,
        fused=tuple(links))


def donatable_inputs(op: LoweredOp) -> set[int]:
    """Input indices safe to donate as a fused chain's output buffer."""
    assert op.fused is not None
    first = {a for a in op.fused[0].args if a is not None}
    later = {a for link in op.fused[1:] for a in link.args if a is not None}
    return first - later
