"""Fuse adjacent elementwise instructions into single chain instructions.

A run of elementwise instructions where each link's sole consumer is the
*next* instruction in the stream collapses into one fused instruction
(:class:`~repro.runtime.plan.FusedLinkSpec` chain). The intermediate
values disappear entirely — no slot, no allocation, no free — because the
bound chain threads one shared output buffer through every link's ``out=``
kernel. Byte-identity with the unfused stream follows from two existing
contracts: ``out=`` kernels are bitwise equal to their base kernels, and
``alias_safe`` kernels read element *i* before writing it, so link *k*
may overwrite link *k-1*'s result in place.

Eligibility is deliberately strict (anything else falls back to the
unfused form, never to wrong answers):

* every link is a single-output, non-view, non-inplace op with an
  alias-safe ``out=`` registry entry;
* chain members are **adjacent** in the stream — fusing never reorders
  execution, so an in-place optimizer update scheduled between two
  elementwise ops keeps its observable position;
* every occurrence of a link's output is consumed by the immediately
  following instruction (a value also read later, or returned to the
  caller, must materialise);
* every link produces the same (shape, dtype) as the chain's final
  output — broadcasting may happen *into* a link (a ``bias_add`` bias, a
  scalar operand) but the carried value never changes shape, which is
  what makes the single shared buffer sound.

A second, **non-adjacent** phase then relaxes the adjacency rule for
sole-consumer values: a pure elementwise producer (or already-formed
chain) may be *deferred* down the stream to run immediately before its
single consumer and merge into it, provided the effect analysis
(:mod:`repro.analysis.effects`) proves no instruction in between may
mutate anything the moved computation reads. This catches the
forward-computed STE masks a sparse backward re-reads much later — the
mask chain moves next to its backward consumer and the intermediate
stops occupying memory across the whole forward. The producer's result
must feed the consumer's *first* link only (later links cannot see the
carried value), and the carried-form rule above still applies.

Donation interplay: an external input may be donated as the chain's
output buffer only when the *first* link is its sole reader — a dying
input consumed by a later link would be clobbered by the first link's
write. ``allocate`` enforces this via the per-instruction
``donatable_inputs`` computed here.
"""

from __future__ import annotations

from ...analysis.effects import safe_to_defer, stream_effects
from ...ir.ops import get_schema
from ...kernels import OUT_ALIAS_SAFE, OUT_KERNELS, VIEW_OPS
from ..plan import FusedLinkSpec
from .lower import LoweredOp, LoweringContext


def _fusable(op: LoweredOp) -> bool:
    if op.fused is not None or op.precompute is not None:
        return False
    k = op.kernel
    return (len(op.outputs) == 1
            and k in OUT_KERNELS and k in OUT_ALIAS_SAFE
            and k not in VIEW_OPS and not get_schema(k).inplace)


def fuse_elementwise(stream: list[LoweredOp], ctx: LoweringContext
                     ) -> tuple[list[LoweredOp], dict]:
    """Collapse maximal adjacent chains; returns (new stream, stats)."""
    # Occurrence map over the incoming stream: value -> consuming indices
    # (repeated per occurrence, so mul(v, v) records index twice).
    consumers: dict[str, list[int]] = {}
    for idx, op in enumerate(stream):
        for name in op.inputs:
            consumers.setdefault(name, []).append(idx)

    fused_stream: list[LoweredOp] = []
    chains = 0
    removed = 0
    i = 0
    while i < len(stream):
        members = [stream[i]]
        j = i
        while j + 1 < len(stream):
            link = stream[j]
            nxt = stream[j + 1]
            if not (_fusable(link) and _fusable(nxt)):
                break
            value = link.outputs[0]
            uses = consumers.get(value, [])
            if not uses or any(use != j + 1 for use in uses):
                break  # dead, multi-consumer, or non-adjacent consumer
            if value in ctx.keep:
                break  # returned to the caller; must materialise
            v_spec = ctx.spec(value)
            n_spec = ctx.spec(nxt.outputs[0])
            if (tuple(v_spec.shape) != tuple(n_spec.shape)
                    or v_spec.dtype != n_spec.dtype):
                break  # carried value would change form mid-chain
            members.append(nxt)
            j += 1
        if len(members) < 2:
            fused_stream.append(stream[i])
            i += 1
            continue
        fused_stream.append(_build_chain(members))
        chains += 1
        removed += len(members) - 1
        i = j + 1
    fused_stream, deferred = _merge_sole_consumers(fused_stream, ctx)
    return fused_stream, {"chains": chains,
                          "instructions_removed": removed + deferred,
                          "deferred_merges": deferred}


def _build_chain(members: list[LoweredOp]) -> LoweredOp:
    """One fused LoweredOp from adjacent chain ``members``."""
    external: dict[str, int] = {}
    links: list[FusedLinkSpec] = []
    prev_value: str | None = None
    for member in members:
        args: list[int | None] = []
        for name in member.inputs:
            if name == prev_value:
                args.append(None)
            else:
                idx = external.get(name)
                if idx is None:
                    idx = external[name] = len(external)
                args.append(idx)
        links.append(FusedLinkSpec(node=member.node, kernel=member.kernel,
                                   args=tuple(args)))
        prev_value = member.outputs[0]
    last = members[-1]
    return LoweredOp(
        node=last.node, kernel=last.kernel,
        inputs=tuple(external), outputs=last.outputs,
        fused=tuple(links))


def _chain_candidate(op: LoweredOp) -> bool:
    """Ops the non-adjacent phase may move/merge: pure elementwise chains
    (already fused) or single ops the adjacent phase would accept."""
    return not op.const_inputs and (op.fused is not None or _fusable(op))


def _first_link_only(cons: LoweredOp, value: str) -> bool:
    """True when ``value`` feeds only the consumer's first link — the one
    position a merged producer's carried result can reach."""
    if cons.fused is None:
        return True
    idx = cons.inputs.index(value)
    return all(idx not in link.args for link in cons.fused[1:])


def _named_links(op: LoweredOp) -> list[tuple[str, str, list]]:
    """The op as (node, kernel, args) links with externals named (args are
    value names; None means the previous link's carried result)."""
    if op.fused is None:
        return [(op.node, op.kernel, list(op.inputs))]
    return [(link.node, link.kernel,
             [None if a is None else op.inputs[a] for a in link.args])
            for link in op.fused]


def _merge_ops(producer: LoweredOp, consumer: LoweredOp) -> LoweredOp:
    """One chain from ``producer`` feeding ``consumer``'s first link."""
    value = producer.outputs[0]
    links = _named_links(producer)
    for node, kern, args in _named_links(consumer):
        links.append((node, kern,
                      [None if a == value else a for a in args]))
    external: dict[str, int] = {}
    specs = []
    for node, kern, args in links:
        specs.append(FusedLinkSpec(node=node, kernel=kern, args=tuple(
            None if a is None else external.setdefault(a, len(external))
            for a in args)))
    return LoweredOp(
        node=consumer.node, kernel=consumer.kernel,
        inputs=tuple(external), outputs=consumer.outputs,
        fused=tuple(specs))


def _companion_ok(prod: LoweredOp) -> bool:
    """Ops that may *move* (not merge) alongside a deferred producer:
    pure, single-output, no pass-state attached."""
    return (prod.fused is None and prod.precompute is None
            and not prod.const_inputs and len(prod.outputs) == 1
            and not prod.is_view and not prod.is_inplace)


def _merge_sole_consumers(stream: list[LoweredOp], ctx: LoweringContext
                          ) -> tuple[list[LoweredOp], int]:
    """Defer pure producers down to their sole consumer and merge.

    Repeats to a fixpoint so a merged chain can itself be deferred into a
    yet-later consumer. Each move is proven by the effect analysis: no
    instruction jumped over may mutate anything the moved group reads.

    **Byte neutrality.** Deferring pins the producer's transient inputs
    until the consumer, so an unconditional merge could peak above the
    oracle stream. A merge is taken only when the eliminated intermediate
    frees at least as many bytes as the move pins. To make the common STE
    shape (``step(x)`` feeding a *later* link of the mask chain, so it
    cannot itself join the chain) pass the gate, a pinned input whose
    producer is pure and sole-consumed by the deferred op travels as a
    **companion**: it moves (unmerged) to just before the merge point,
    stops pinning, and only its own inputs enter the ledger.
    """
    merged = 0
    changed = True
    while changed:
        changed = False
        effects = stream_effects(stream)
        consumers: dict[str, list[int]] = {}
        producer_of: dict[str, int] = {}
        for idx, op in enumerate(stream):
            for name in op.inputs:
                consumers.setdefault(name, []).append(idx)
            for name in op.outputs:
                producer_of[name] = idx
        for i, op in enumerate(stream):
            if not _chain_candidate(op):
                continue
            value = op.outputs[0]
            if value in ctx.keep:
                continue
            uses = consumers.get(value)
            if not uses or any(u != uses[0] for u in uses):
                continue
            j = uses[0]
            if j <= i:
                continue
            cons = stream[j]
            if not _chain_candidate(cons):
                continue
            if not _first_link_only(cons, value):
                continue
            if ctx.shape_dtype(value) != ctx.shape_dtype(cons.outputs[0]):
                continue  # carried value would change form mid-chain
            if not safe_to_defer(effects, i, j):
                continue
            # Recruit companions for inputs the move would otherwise pin.
            companions: list[int] = []
            for name in dict.fromkeys(op.inputs):
                if name in ctx.state_names or name in ctx.keep:
                    continue
                if max(consumers.get(name, (i,))) >= j:
                    continue  # alive past j regardless
                p = producer_of.get(name)
                if (p is not None and p < i and _companion_ok(stream[p])
                        and set(consumers.get(name, ())) == {i}
                        and safe_to_defer(effects, p, j)):
                    companions.append(p)
            group = set(companions) | {i}
            group_outs = {out for k in group for out in stream[k].outputs}
            externals = {name for k in group for name in stream[k].inputs
                         if name not in group_outs}
            pinned = 0
            for name in externals:
                if name in ctx.state_names or name in ctx.keep:
                    continue
                if max(consumers.get(name, (i,))) < j:
                    pinned += ctx.nbytes(name)
            if pinned > ctx.nbytes(value):
                continue
            moved = [stream[p] for p in sorted(companions)]
            new_stream: list[LoweredOp] = []
            for k, cur in enumerate(stream):
                if k in group:
                    continue
                if k == j:
                    new_stream.extend(moved)
                    new_stream.append(_merge_ops(op, cons))
                else:
                    new_stream.append(cur)
            stream = new_stream
            merged += 1
            changed = True
            break
    return stream, merged


def donatable_inputs(op: LoweredOp) -> set[int]:
    """Input indices safe to donate as a fused chain's output buffer."""
    assert op.fused is not None
    first = {a for a in op.fused[0].args if a is not None}
    later = {a for link in op.fused[1:] for a in link.args if a is not None}
    return first - later
