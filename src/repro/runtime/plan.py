"""Compiled execution plans: pay per-step interpretation cost at compile time.

The legacy interpreter re-derives per-node facts on every step: name-keyed
dict lookups, schema fetches, string kernel dispatch, ``np.shares_memory``
aliasing scans, refcount bookkeeping, and a fresh allocation per
intermediate. :func:`build_plan` lowers a :class:`~repro.runtime.program.
Program` **once** into a flat instruction stream where all of that is
precomputed:

* every value name is resolved to an integer slot in one registers list
  (feeds, mutable state, and intermediates share the space);
* kernel functions are pre-bound — no string dispatch, no schema lookups;
* the state-aliasing materialisation check runs only for instructions that
  both touch mutable state and use a view-capable kernel
  (:data:`repro.kernels.VIEW_OPS`);
* per-instruction free-lists replace runtime refcounting, and the
  transient-byte timeline is simulated at build time (byte-exact against
  the interpreter, hence against ``memory.profile_memory``) so the step
  does zero accounting;
* a :class:`BufferArena` recycles freed intermediate buffers across steps,
  feeding ``out=``-capable kernels so a fixed-shape training step reaches a
  (near-)zero-alloc steady state. Safety is static: only buffers produced
  by fresh-output kernels with no view-op consumers are ever recycled, so a
  recycled buffer can never alias a live value, a returned output, a feed,
  or mutable state.

The plan depends only on the graph, schedule, outputs, and state *names* —
never on state values — so one plan is shared by every
:meth:`Program.with_state` tenant overlay (they share the ``meta`` dict the
plan is cached in). Registers and arena live on the executor: concurrent
sessions never share buffers.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..errors import ExecutionError
from ..ir.node import Node
from ..ir.ops import get_schema
from ..kernels import (DONATED_INPUTS, DONATING_KERNELS, KERNELS,
                       OUT_ALIAS_SAFE, OUT_KERNELS, VIEW_OPS)

#: arena bucket key: exact (shape, dtype) — fixed-shape steps re-request
#: identical buffers every step, so exact matching recycles everything.
ArenaKey = tuple[tuple[int, ...], Any]


class BufferArena:
    """Size/dtype-bucketed free-lists of recycled intermediate buffers.

    One arena per executor. ``give`` receives buffers the plan proved
    unaliased at their death; ``take`` hands them back to ``out=``-capable
    instructions. Counters feed the steady-state-allocation metrics.

    ``caps`` bounds each pool at the number of instructions that can
    actually re-request that key (the plan computes this); buffers past the
    cap are dropped to the allocator instead of accumulating — shapes only
    ever produced but never consumed would otherwise grow the pool by a
    fixed amount every step.
    """

    __slots__ = ("_pools", "caps", "takes", "misses", "recycled", "dropped")

    def __init__(self, caps: dict[ArenaKey, int] | None = None) -> None:
        self._pools: dict[ArenaKey, list[np.ndarray]] = {}
        #: per-key pool bound; None = unbounded
        self.caps = caps
        self.takes = 0
        self.misses = 0
        self.recycled = 0
        self.dropped = 0

    def take(self, key: ArenaKey) -> np.ndarray | None:
        pool = self._pools.get(key)
        if pool:
            self.takes += 1
            return pool.pop()
        self.misses += 1
        return None

    def give(self, key: ArenaKey, array: np.ndarray) -> None:
        pool = self._pools.get(key)
        if pool is None:
            pool = self._pools[key] = []
        if self.caps is not None and len(pool) >= self.caps.get(key, 0):
            self.dropped += 1
            return
        self.recycled += 1
        pool.append(array)

    def buffers(self) -> list[np.ndarray]:
        """Snapshot of every pooled buffer (for safety checks/tests)."""
        return [a for pool in self._pools.values() for a in pool]

    def retained_bytes(self) -> int:
        return sum(a.nbytes for a in self.buffers())

    def clear(self) -> None:
        self._pools.clear()


class Instruction:
    """One lowered node: slots in, slots out, everything else pre-resolved."""

    __slots__ = ("node", "kernel", "attrs", "input_slots", "output_slots",
                 "out_kernel", "out_key", "out_shape", "out_dtype",
                 "donate_slot", "check_state_slots", "frees",
                 "fresh_outputs")

    def __init__(self, node: Node, kernel, attrs, input_slots, output_slots,
                 out_kernel, out_key, out_shape, out_dtype, donate_slot,
                 check_state_slots, frees, fresh_outputs) -> None:
        self.node = node
        self.kernel = kernel
        self.attrs = attrs
        self.input_slots = input_slots
        self.output_slots = output_slots
        #: out=-writing variant (single-output, non-inplace ops only)
        self.out_kernel = out_kernel
        self.out_key = out_key
        self.out_shape = out_shape
        self.out_dtype = out_dtype
        #: slot whose dying buffer the out= kernel writes into (-1: none)
        self.donate_slot = donate_slot
        #: mutable-state slots to scan with shares_memory (view ops only)
        self.check_state_slots = check_state_slots
        #: (slot, arena_key_or_None) freed after this instruction; a key
        #: means the buffer is provably unaliased and returns to the arena
        self.frees = frees
        #: non-inplace outputs allocated fresh when the out= path is not
        #: taken (feeds the steady-state allocation metric)
        self.fresh_outputs = fresh_outputs


class ExecutionPlan:
    """A Program lowered to a slot-indexed instruction stream."""

    __slots__ = ("num_slots", "feed_specs", "state_bindings", "instructions",
                 "output_slots", "clear_slots", "arena_caps",
                 "peak_transient_bytes", "final_transient_bytes")

    def __init__(self, num_slots, feed_specs, state_bindings, instructions,
                 output_slots, clear_slots, arena_caps,
                 peak_transient_bytes, final_transient_bytes) -> None:
        self.num_slots = num_slots
        #: (name, slot) per graph input, in declaration order
        self.feed_specs = feed_specs
        #: (slot, name) pairs re-bound from program.state at every step
        self.state_bindings = state_bindings
        self.instructions = instructions
        #: (name, slot) per program output
        self.output_slots = output_slots
        #: non-state slots reset after each run (don't pin caller arrays)
        self.clear_slots = clear_slots
        #: per-key pool bounds for this plan's BufferArena instances
        self.arena_caps = arena_caps
        #: static replica of the interpreter's measured transient peak
        self.peak_transient_bytes = peak_transient_bytes
        self.final_transient_bytes = final_transient_bytes

    @property
    def num_instructions(self) -> int:
        return len(self.instructions)


def build_plan(program) -> ExecutionPlan:
    """Lower ``program`` into an :class:`ExecutionPlan`.

    Raises:
        ExecutionError: on an op without a registered kernel, or an output
            name nothing produces.
    """
    graph = program.graph
    schedule = program.schedule
    state_names = set(program.state)
    keep = set(program.outputs)

    slots: dict[str, int] = {}

    def slot_of(name: str) -> int:
        slot = slots.get(name)
        if slot is None:
            slot = slots[name] = len(slots)
        return slot

    for name in graph.inputs:
        slot_of(name)
    for name in sorted(state_names):
        slot_of(name)

    producer_op: dict[str, str] = {}
    consumer_ops: dict[str, list[str]] = {}
    for node in schedule:
        for out in node.outputs:
            producer_op[out] = node.op_type
        for inp in node.inputs:
            consumer_ops.setdefault(inp, []).append(node.op_type)

    spec_cache: dict[str, Any] = {}

    def spec(name: str):
        value = spec_cache.get(name)
        if value is None:
            value = spec_cache[name] = graph.spec(name)
        return value

    def recyclable(name: str) -> bool:
        """True when the buffer behind ``name`` is provably unaliased at
        the moment its last consumer retires."""
        op = producer_op.get(name)
        if op is None:
            return False  # feeds and state are caller-owned
        if op in VIEW_OPS or get_schema(op).inplace:
            return False  # may alias another value / mutable state
        if name in keep:
            return False  # returned to the caller, who may hold it
        return all(c not in VIEW_OPS for c in consumer_ops.get(name, ()))

    def arena_key(name: str) -> ArenaKey:
        s = spec(name)
        return (tuple(s.shape), s.dtype.np)

    # --- lower nodes and simulate the interpreter's byte accounting ------
    counts = dict(program.consumer_counts)
    live = set(graph.inputs)
    transient = sum(spec(name).nbytes for name in graph.inputs)
    peak = transient
    instructions: list[Instruction] = []

    for node in schedule:
        op = node.op_type
        base_kernel = KERNELS.get(op)
        if base_kernel is None:
            raise ExecutionError(f"no kernel registered for op {op!r}")
        schema = get_schema(op)
        inplace = schema.inplace
        try:
            input_slots = tuple(slots[name] for name in node.inputs)
        except KeyError as exc:
            raise ExecutionError(
                f"node {node.name!r} input {exc.args[0]!r} unavailable"
            ) from None
        output_slots = tuple(slot_of(name) for name in node.outputs)

        # The interpreter materialises results aliasing mutable state; only
        # view-capable kernels with state inputs can produce such results.
        check_state_slots = ()
        if not inplace and op in VIEW_OPS:
            check_state_slots = tuple(
                slot_of(name) for name in node.inputs if name in state_names)

        # Accounting, mirroring Executor's interpreter loop exactly.
        for out in node.outputs:
            live.add(out)
            if not inplace:
                transient += spec(out).nbytes
        if transient > peak:
            peak = transient

        frees: list[tuple[int, ArenaKey | None]] = []
        if not inplace:  # dead outputs are released immediately
            for out in node.outputs:
                if counts.get(out, 0) == 0 and out not in keep \
                        and out in live:
                    transient -= spec(out).nbytes
                    live.discard(out)
                    frees.append((slots[out],
                                  arena_key(out) if recyclable(out)
                                  else None))
        dying_inputs: list[str] = []
        for name in node.inputs:
            counts[name] -= 1
            if counts[name] == 0 and name in live \
                    and name not in state_names and name not in keep:
                transient -= spec(name).nbytes
                live.discard(name)
                dying_inputs.append(name)

        # out= + donation: single-output ops with a registered out-variant
        # get a recycled arena buffer; alias-safe ones may instead write
        # straight into a same-shape input dying at this instruction.
        out_kernel = out_key = out_shape = out_dtype = None
        donate_slot = -1
        if not inplace and len(node.outputs) == 1:
            out_kernel = OUT_KERNELS.get(op)
            if out_kernel is not None:
                out_name = node.outputs[0]
                out_spec = spec(out_name)
                out_shape = tuple(out_spec.shape)
                out_dtype = out_spec.dtype.np
                out_key = (out_shape, out_dtype)
                if op in OUT_ALIAS_SAFE:
                    for name in dying_inputs:
                        if recyclable(name) and arena_key(name) == out_key:
                            donate_slot = slots[name]
                            break

        kernel = base_kernel
        if op in DONATING_KERNELS:
            clobbered = DONATED_INPUTS[op]
            if all(i < len(node.inputs)
                   and node.inputs[i] in dying_inputs
                   and recyclable(node.inputs[i]) for i in clobbered):
                kernel = DONATING_KERNELS[op]

        for name in dying_inputs:
            slot = slots[name]
            if slot == donate_slot:
                # The donated buffer lives on as this node's output.
                frees.append((slot, None))
            else:
                frees.append((slot,
                              arena_key(name) if recyclable(name) else None))

        instructions.append(Instruction(
            node=node, kernel=kernel, attrs=node.attrs,
            input_slots=input_slots, output_slots=output_slots,
            out_kernel=out_kernel, out_key=out_key, out_shape=out_shape,
            out_dtype=out_dtype, donate_slot=donate_slot,
            check_state_slots=check_state_slots, frees=tuple(frees),
            fresh_outputs=0 if inplace else len(node.outputs)))

    for name in program.outputs:
        if name not in slots:
            raise ExecutionError(f"output {name!r} is never produced")

    state_slots = {slots[name] for name in state_names if name in slots}
    clear_slots = tuple(slot for name, slot in slots.items()
                        if slot not in state_slots)
    arena_caps: dict[ArenaKey, int] = {}
    for instr in instructions:
        if instr.out_kernel is not None and instr.donate_slot < 0:
            arena_caps[instr.out_key] = arena_caps.get(instr.out_key, 0) + 1
    return ExecutionPlan(
        num_slots=len(slots),
        feed_specs=tuple((name, slots[name]) for name in graph.inputs),
        state_bindings=tuple(
            (slots[name], name) for name in sorted(state_names)
            if name in slots),
        instructions=tuple(instructions),
        output_slots=tuple((name, slots[name]) for name in program.outputs),
        clear_slots=clear_slots,
        arena_caps=arena_caps,
        peak_transient_bytes=peak,
        final_transient_bytes=transient,
    )
