"""Compiled execution plans: pay per-step interpretation cost at compile time.

The legacy interpreter re-derives per-node facts on every step: name-keyed
dict lookups, schema fetches, string kernel dispatch, ``np.shares_memory``
aliasing scans, refcount bookkeeping, and a fresh allocation per
intermediate. :func:`build_plan_spec` lowers a :class:`~repro.runtime.
program.Program` **once** into a flat instruction stream where all of that
is precomputed:

* every value name is resolved to an integer slot in one registers list
  (feeds, mutable state, and intermediates share the space);
* kernels are referenced by **registry name + variant** — no string
  dispatch or schema lookups at run time, and no live function objects in
  the plan data;
* the state-aliasing materialisation check runs only for instructions that
  both touch mutable state and use a view-capable kernel
  (:data:`repro.kernels.VIEW_OPS`);
* per-instruction free-lists replace runtime refcounting, and the
  transient-byte timeline is simulated at build time (byte-exact against
  the interpreter for an unoptimized stream, and recomputed honestly for
  an optimized one) so the step does zero accounting;
* a :class:`BufferArena` recycles freed intermediate buffers across steps,
  feeding ``out=``-capable kernels so a fixed-shape training step reaches a
  (near-)zero-alloc steady state. Safety is static: only buffers produced
  by fresh-output kernels with no view-op consumers are ever recycled, so a
  recycled buffer can never alias a live value, a returned output, a feed,
  or mutable state.

Lowering itself is a staged **pass pipeline** (:mod:`repro.runtime.passes`):
``lower`` turns the scheduled graph into a linear stream, optimization
passes rewrite that stream (fusing adjacent elementwise instructions,
hoisting Winograd weight transforms for frozen parameters into plan-owned
precomputed slots), and ``allocate`` assigns slots, free-lists, arena caps
and the static byte accounting *after* optimization so the numbers reflect
the stream that actually runs. ``passes="none"`` skips every optimization
pass and reproduces the interpreter's accounting byte-exactly — the oracle
configuration the equivalence tests pin everything else against.

The lowering is split in two so plans are **portable**:

* :class:`PlanSpec` is a pure, JSON-serializable data object — it names
  kernels (and the passes that shaped it), it never holds them.
  ``to_dict``/``from_dict`` round-trip it through deployment artifacts
  (:mod:`repro.deploy.artifact`), so a plan compiled in one process
  executes in another that never imports the compiler. Version-1 specs
  (pre-pipeline) still load through a compat shim; versions this runtime
  does not speak raise :class:`~repro.errors.PlanVersionError` so callers
  like the program cache can fall back to recompilation.
* :func:`bind_plan` is the thin load-time step that resolves those names
  against the live registries in :mod:`repro.kernels` and produces the
  executable :class:`ExecutionPlan`.

The plan depends only on the graph, schedule, outputs, and state *names* —
never on state values — so one plan is shared by every
:meth:`Program.with_state` tenant overlay (they share the ``meta`` dict the
plan is cached in). Registers, arena, and the precomputed-transform cache
live on the executor: concurrent sessions never share buffers, and a
session overlaying different frozen weights recomputes its transforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..errors import ExecutionError, PlanVersionError
from ..ir.node import Node
from ..kernels import (DONATING_KERNELS, KERNELS, OUT_KERNELS,
                       PRECOMPUTE_TRANSFORMS, VARIANT_KERNELS,
                       make_fused_kernel)

#: arena bucket key: (nbytes, dtype). Byte-bucketing (spec v3) lets a
#: freed buffer of one shape satisfy a later request of another shape with
#: the same byte count — the executor reshapes the (always C-contiguous)
#: pooled buffer, a free view. Exact-shape matching (spec v2) recycled
#: nothing across shape boundaries even when the bytes lined up.
ArenaKey = tuple[int, Any]

#: bump when the serialized PlanSpec layout changes incompatibly.
#: v1: flat instruction stream, no pass pipeline. v2: records applied
#: passes, fused instruction forms, and precomputed constant slots.
#: v3: byte-bucketed arena keys, scalar-constant folded inputs
#: (``const_args``), and the autotune decision table (``tuned_variants``).
PLAN_SPEC_VERSION = 3

#: versions :meth:`PlanSpec.from_dict` can still decode (v1/v2 via shims)
SUPPORTED_PLAN_SPEC_VERSIONS = (1, 2, 3)

#: kernel variants an instruction may reference (resolved at bind time);
#: anything else is looked up in :data:`repro.kernels.VARIANT_KERNELS`
#: (e.g. ``winograd_precomputed``).
VARIANT_BASE = "base"
VARIANT_DONATING = "donating"


class BufferArena:
    """Size/dtype-bucketed free-lists of recycled intermediate buffers.

    One arena per executor. ``give`` receives buffers the plan proved
    unaliased at their death; ``take`` hands them back to ``out=``-capable
    instructions. Counters feed the steady-state-allocation metrics.

    ``caps`` bounds each pool at the number of instructions that can
    actually re-request that key (the plan computes this); buffers past the
    cap are dropped to the allocator instead of accumulating — shapes only
    ever produced but never consumed would otherwise grow the pool by a
    fixed amount every step.
    """

    __slots__ = ("_pools", "caps", "takes", "misses", "recycled", "dropped")

    def __init__(self, caps: dict[ArenaKey, int] | None = None) -> None:
        self._pools: dict[ArenaKey, list[np.ndarray]] = {}
        #: per-key pool bound; None = unbounded
        self.caps = caps
        self.takes = 0
        self.misses = 0
        self.recycled = 0
        self.dropped = 0

    def take(self, key: ArenaKey) -> np.ndarray | None:
        pool = self._pools.get(key)
        if pool:
            self.takes += 1
            return pool.pop()
        self.misses += 1
        return None

    def give(self, key: ArenaKey, array: np.ndarray) -> None:
        pool = self._pools.get(key)
        if pool is None:
            pool = self._pools[key] = []
        if self.caps is not None and len(pool) >= self.caps.get(key, 0):
            self.dropped += 1
            return
        self.recycled += 1
        pool.append(array)

    def buffers(self) -> list[np.ndarray]:
        """Snapshot of every pooled buffer (for safety checks/tests)."""
        return [a for pool in self._pools.values() for a in pool]

    def retained_bytes(self) -> int:
        return sum(a.nbytes for a in self.buffers())

    def clear(self) -> None:
        self._pools.clear()


@dataclass(frozen=True)
class FusedLinkSpec:
    """One constituent op of a fused elementwise instruction.

    ``args`` maps the link's kernel inputs onto the fused instruction:
    ``None`` means "the previous link's result" (held in the shared output
    buffer on the ``out=`` path), an int indexes the instruction's
    ``input_slots``.
    """

    node: str                       #: schedule node this link came from
    kernel: str                     #: kernel registry name (== op type)
    args: tuple[int | None, ...]

    def to_dict(self) -> list:
        return [self.node, self.kernel, list(self.args)]

    @classmethod
    def from_dict(cls, doc: list) -> "FusedLinkSpec":
        node, op, args = doc
        return cls(node=node, kernel=op,
                   args=tuple(None if a is None else int(a) for a in args))


@dataclass(frozen=True)
class TunedVariantSpec:
    """One autotune decision: which kernel variant an instruction runs.

    Emitted by the ``autotune`` pass for every instruction that had more
    than one applicable variant. ``variant`` is what the plan actually
    binds (it may be ``base`` — keeping the default *is* a decision).
    ``predicted_us`` comes from the :mod:`repro.devices.cost` model;
    ``measured_us`` is filled in only under
    ``CompileOptions(autotune="measure")``.
    """

    node: str                       #: instruction this decision applies to
    kernel: str                     #: kernel registry name (== op type)
    variant: str                    #: the chosen variant
    predicted_us: float
    measured_us: float | None = None
    #: how the winner was picked: ``cost`` (model only) or ``measure``
    source: str = "cost"

    def to_dict(self) -> dict[str, Any]:
        return {"node": self.node, "kernel": self.kernel,
                "variant": self.variant,
                "predicted_us": self.predicted_us,
                "measured_us": self.measured_us,
                "source": self.source}

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "TunedVariantSpec":
        measured = doc.get("measured_us")
        return cls(node=doc["node"], kernel=doc["kernel"],
                   variant=doc["variant"],
                   predicted_us=float(doc["predicted_us"]),
                   measured_us=float(measured)
                   if measured is not None else None,
                   source=doc.get("source", "cost"))


@dataclass(frozen=True)
class PrecomputedSpec:
    """A plan-owned constant slot derived from frozen state at bind time.

    ``transform`` names an entry in
    :data:`repro.kernels.PRECOMPUTE_TRANSFORMS`; the executor applies it to
    ``state[state_name]`` once (cached per executor, keyed by the source
    array's identity — frozen inputs never change, which is what makes the
    hoist bitwise-safe) and publishes the result in ``slot``.
    """

    slot: int
    state: str
    transform: str
    shape: tuple[int, ...]
    dtype: str

    def to_dict(self) -> dict[str, Any]:
        return {"slot": self.slot, "state": self.state,
                "transform": self.transform, "shape": list(self.shape),
                "dtype": self.dtype}

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "PrecomputedSpec":
        return cls(slot=int(doc["slot"]), state=doc["state"],
                   transform=doc["transform"],
                   shape=tuple(int(d) for d in doc["shape"]),
                   dtype=doc["dtype"])

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class InstructionSpec:
    """One lowered node as pure data: slots, names, static decisions.

    The kernel is referenced by registry name (``kernel`` — the op type)
    plus ``variant`` (:data:`VARIANT_BASE`, :data:`VARIANT_DONATING`, or a
    :data:`repro.kernels.VARIANT_KERNELS` name) and ``use_out`` (whether
    the ``out=`` variant from :data:`repro.kernels.OUT_KERNELS` drives this
    instruction when inputs are contiguous). ``fused`` (when set) lists the
    elementwise links this instruction collapsed; the bound kernel then
    runs the whole chain through one shared buffer and no intermediate
    slot exists at all. Attributes and input/output names live on the
    graph nodes the specs refer to — the artifact ships the graph anyway,
    so the spec never duplicates them.
    """

    node: str                       #: schedule node name
    kernel: str                     #: kernel registry name (== op type)
    variant: str                    #: base | donating | registered variant
    input_slots: tuple[int, ...]
    output_slots: tuple[int, ...]
    use_out: bool                   #: bind the out=-writing variant
    out_shape: tuple[int, ...] | None
    out_dtype: str | None
    donate_slot: int                #: dying buffer the out= kernel reuses
    check_state_slots: tuple[int, ...]
    frees: tuple[tuple[int, ArenaKey | None], ...]
    fresh_outputs: int
    fused: tuple[FusedLinkSpec, ...] | None = None
    #: scalar-constant folded inputs: (position, state name) pairs. The
    #: executor assembles the kernel's input list by inserting
    #: ``program.state[name]`` (a live lookup — overlay-safe by
    #: construction) at ``position``; ``input_slots`` covers the remaining
    #: positions in order. Folded states need no register slot at all.
    const_args: tuple[tuple[int, str], ...] = ()

    def to_dict(self) -> dict[str, Any]:
        doc = {
            "node": self.node,
            "kernel": self.kernel,
            "variant": self.variant,
            "input_slots": list(self.input_slots),
            "output_slots": list(self.output_slots),
            "use_out": self.use_out,
            "out_shape": list(self.out_shape)
            if self.out_shape is not None else None,
            "out_dtype": self.out_dtype,
            "donate_slot": self.donate_slot,
            "check_state_slots": list(self.check_state_slots),
            "frees": [[slot, _key_to_json(key)] for slot, key in self.frees],
            "fresh_outputs": self.fresh_outputs,
        }
        if self.fused is not None:
            doc["fused"] = [link.to_dict() for link in self.fused]
        if self.const_args:
            doc["const_args"] = [[pos, name]
                                 for pos, name in self.const_args]
        return doc

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "InstructionSpec":
        try:
            fused_doc = doc.get("fused")
            return cls(
                node=doc["node"],
                kernel=doc["kernel"],
                variant=doc["variant"],
                input_slots=tuple(doc["input_slots"]),
                output_slots=tuple(doc["output_slots"]),
                use_out=bool(doc["use_out"]),
                out_shape=tuple(doc["out_shape"])
                if doc["out_shape"] is not None else None,
                out_dtype=doc["out_dtype"],
                donate_slot=int(doc["donate_slot"]),
                check_state_slots=tuple(doc["check_state_slots"]),
                frees=tuple((int(slot), _key_from_json(key))
                            for slot, key in doc["frees"]),
                fresh_outputs=int(doc["fresh_outputs"]),
                fused=tuple(FusedLinkSpec.from_dict(entry)
                            for entry in fused_doc)
                if fused_doc is not None else None,
                const_args=tuple((int(pos), name) for pos, name
                                 in doc.get("const_args", ())),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ExecutionError(
                f"garbled plan instruction spec: {exc!r}") from None


@dataclass(frozen=True)
class PlanSpec:
    """A fully-lowered plan as a pure, serializable data object.

    Everything the executor needs except the kernel functions themselves:
    :func:`bind_plan` resolves those from the registry at load time. The
    spec depends only on graph structure, schedule, outputs, state names,
    and the pass configuration (recorded in ``passes``), so it is
    identical whether built in the compiling process or reloaded from an
    artifact.
    """

    num_slots: int
    feed_specs: tuple[tuple[str, int], ...]
    state_bindings: tuple[tuple[int, str], ...]
    output_slots: tuple[tuple[str, int], ...]
    clear_slots: tuple[int, ...]
    arena_caps: tuple[tuple[ArenaKey, int], ...]
    peak_transient_bytes: int
    final_transient_bytes: int
    instructions: tuple[InstructionSpec, ...]
    #: names of the optimization passes that shaped this stream, in order
    passes: tuple[str, ...] = ()
    #: plan-owned constant slots bound from frozen state (see
    #: :class:`PrecomputedSpec`)
    precomputed: tuple[PrecomputedSpec, ...] = ()
    #: resident bytes the precomputed slots add (not transient — they live
    #: for the plan's lifetime, like state)
    precomputed_bytes: int = 0
    #: autotune decision table (empty unless the ``autotune`` pass ran):
    #: one entry per instruction that had more than one applicable variant
    tuned_variants: tuple[TunedVariantSpec, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe encoding (embedded in artifact manifests)."""
        return {
            "plan_version": PLAN_SPEC_VERSION,
            "num_slots": self.num_slots,
            "feed_specs": [[name, slot] for name, slot in self.feed_specs],
            "state_bindings": [[slot, name]
                               for slot, name in self.state_bindings],
            "output_slots": [[name, slot]
                             for name, slot in self.output_slots],
            "clear_slots": list(self.clear_slots),
            "arena_caps": [[_key_to_json(key), count]
                           for key, count in self.arena_caps],
            "peak_transient_bytes": self.peak_transient_bytes,
            "final_transient_bytes": self.final_transient_bytes,
            "instructions": [instr.to_dict() for instr in self.instructions],
            "passes": list(self.passes),
            "precomputed": [entry.to_dict() for entry in self.precomputed],
            "precomputed_bytes": self.precomputed_bytes,
            "tuned_variants": [entry.to_dict()
                               for entry in self.tuned_variants],
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "PlanSpec":
        """Inverse of :meth:`to_dict`, with a v1 compat shim.

        Version-1 documents (written before the pass pipeline existed)
        decode to a spec with no passes, no fused instructions, and no
        precomputed slots — exactly the stream they always described.
        Version-2 documents keyed their arena on exact shapes; the shim
        converts every key to its byte bucket and merges pool caps that
        collapse onto the same bucket, which only ever widens reuse.

        Raises:
            PlanVersionError: when the document speaks a plan version this
                runtime does not (callers may fall back to re-lowering).
            ExecutionError: on a structurally garbled document.
        """
        version = doc.get("plan_version")
        if version not in SUPPORTED_PLAN_SPEC_VERSIONS:
            raise PlanVersionError(
                f"unsupported plan spec version {version!r} "
                f"(runtime speaks {SUPPORTED_PLAN_SPEC_VERSIONS})")
        try:
            # Legacy shape-keyed caps can collide once byte-bucketed; sum
            # the counts (first-seen order) so no pool shrinks.
            caps: dict[ArenaKey, int] = {}
            for key_doc, count in doc["arena_caps"]:
                key = _key_from_json(key_doc)
                caps[key] = caps.get(key, 0) + int(count)
            return cls(
                num_slots=int(doc["num_slots"]),
                feed_specs=tuple((name, int(slot))
                                 for name, slot in doc["feed_specs"]),
                state_bindings=tuple((int(slot), name)
                                     for slot, name in doc["state_bindings"]),
                output_slots=tuple((name, int(slot))
                                   for name, slot in doc["output_slots"]),
                clear_slots=tuple(doc["clear_slots"]),
                arena_caps=tuple(caps.items()),
                peak_transient_bytes=int(doc["peak_transient_bytes"]),
                final_transient_bytes=int(doc["final_transient_bytes"]),
                instructions=tuple(InstructionSpec.from_dict(entry)
                                   for entry in doc["instructions"]),
                passes=tuple(doc.get("passes", ())),
                precomputed=tuple(PrecomputedSpec.from_dict(entry)
                                  for entry in doc.get("precomputed", ())),
                precomputed_bytes=int(doc.get("precomputed_bytes", 0)),
                tuned_variants=tuple(
                    TunedVariantSpec.from_dict(entry)
                    for entry in doc.get("tuned_variants", ())),
            )
        except ExecutionError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ExecutionError(f"garbled plan spec: {exc!r}") from None

    def required_kernels(self) -> dict[str, set[str]]:
        """Kernel registry names -> the variants this plan binds.

        Variants: ``base``, ``donating``, ``out``, plus any registered
        special variant (``winograd_precomputed``). Fused instructions
        contribute their constituent links (each needing ``base`` and
        ``out``). What a runtime must provide to execute the plan (the
        deployment manifest records it).
        """
        needed: dict[str, set[str]] = {}
        for instr in self.instructions:
            if instr.fused is not None:
                for link in instr.fused:
                    variants = needed.setdefault(link.kernel, set())
                    variants.update(("base", "out"))
                continue
            variants = needed.setdefault(instr.kernel, set())
            variants.add(instr.variant)
            if instr.use_out:
                variants.add("out")
        return needed

    def required_transforms(self) -> set[str]:
        """Precompute transforms the runtime must provide at bind time."""
        return {entry.transform for entry in self.precomputed}


def arena_key_for(shape: tuple[int, ...], dtype: Any) -> ArenaKey:
    """The byte bucket a buffer of ``(shape, dtype)`` pools under."""
    dtype = np.dtype(dtype)
    count = 1
    for dim in shape:
        count *= int(dim)
    return (count * dtype.itemsize, dtype)


def _key_to_json(key: ArenaKey | None) -> list | None:
    if key is None:
        return None
    nbytes, dtype = key
    return [int(nbytes), np.dtype(dtype).name]


def _key_from_json(doc: list | None) -> ArenaKey | None:
    if doc is None:
        return None
    head, dtype = doc
    if isinstance(head, (list, tuple)):  # v1/v2: exact-shape key
        return arena_key_for(tuple(int(d) for d in head), dtype)
    return (int(head), np.dtype(dtype))


class Instruction:
    """One bound node: slots in, slots out, everything else pre-resolved."""

    __slots__ = ("node", "kernel", "attrs", "input_slots", "output_slots",
                 "out_kernel", "out_key", "out_shape", "out_dtype",
                 "donate_slot", "check_state_slots", "frees",
                 "fresh_outputs", "variant", "const_args")

    def __init__(self, node: Node, kernel, attrs, input_slots, output_slots,
                 out_kernel, out_key, out_shape, out_dtype, donate_slot,
                 check_state_slots, frees, fresh_outputs,
                 variant: str = VARIANT_BASE, const_args=()) -> None:
        self.node = node
        self.kernel = kernel
        self.attrs = attrs
        self.input_slots = input_slots
        self.output_slots = output_slots
        #: out=-writing variant (single-output, non-inplace ops only; for
        #: fused instructions this runs the whole chain through one buffer)
        self.out_kernel = out_kernel
        self.out_key = out_key
        self.out_shape = out_shape
        self.out_dtype = out_dtype
        #: slot whose dying buffer the out= kernel writes into (-1: none)
        self.donate_slot = donate_slot
        #: mutable-state slots to scan with shares_memory (view ops only)
        self.check_state_slots = check_state_slots
        #: (slot, arena_key_or_None) freed after this instruction; a key
        #: means the buffer is provably unaliased and returns to the arena
        self.frees = frees
        #: non-inplace outputs allocated fresh when the out= path is not
        #: taken (feeds the steady-state allocation metric)
        self.fresh_outputs = fresh_outputs
        #: kernel-variant label for profiling ("base", "donating",
        #: "fused", or a registry variant like "winograd_precomputed")
        self.variant = variant
        #: (position, state name) scalar constants folded out of the slot
        #: space — the executor splices live state values in at these
        #: positions when assembling the kernel's inputs
        self.const_args = const_args


class ExecutionPlan:
    """A :class:`PlanSpec` bound to live kernel functions and graph nodes."""

    __slots__ = ("spec", "num_slots", "feed_specs", "state_bindings",
                 "instructions", "output_slots", "clear_slots", "arena_caps",
                 "peak_transient_bytes", "final_transient_bytes",
                 "precomputed", "passes")

    def __init__(self, spec, num_slots, feed_specs, state_bindings,
                 instructions, output_slots, clear_slots, arena_caps,
                 peak_transient_bytes, final_transient_bytes,
                 precomputed=(), passes=()) -> None:
        #: the serializable half this plan was bound from
        self.spec = spec
        self.num_slots = num_slots
        #: (name, slot) per graph input, in declaration order
        self.feed_specs = feed_specs
        #: (slot, name) pairs re-bound from program.state at every step
        self.state_bindings = state_bindings
        self.instructions = instructions
        #: (name, slot) per program output
        self.output_slots = output_slots
        #: non-state slots reset after each run (don't pin caller arrays)
        self.clear_slots = clear_slots
        #: per-key pool bounds for this plan's BufferArena instances
        self.arena_caps = arena_caps
        #: static replica of the optimized stream's transient peak (equals
        #: the interpreter's measurement for an unoptimized stream)
        self.peak_transient_bytes = peak_transient_bytes
        self.final_transient_bytes = final_transient_bytes
        #: (slot, state name, transform fn) constant slots the executor
        #: computes once from frozen state and re-publishes every step
        self.precomputed = precomputed
        #: optimization passes applied at lowering, in order
        self.passes = passes

    @property
    def num_instructions(self) -> int:
        return len(self.instructions)


def build_plan_spec(program, passes: Any = None) -> PlanSpec:
    """Lower ``program`` through the pass pipeline into a :class:`PlanSpec`.

    ``passes`` selects the optimization pipeline: ``"default"`` (or None
    with no override in ``program.meta["plan_passes"]``) runs every
    registered pass, ``"none"`` runs only lower+allocate (the interpreter
    oracle configuration), and an explicit sequence of pass names runs
    exactly those.

    Raises:
        ExecutionError: on an op without a registered kernel, an output
            name nothing produces, or an unknown pass name.
    """
    from .passes import run_pipeline

    return run_pipeline(program, passes=passes)


def bind_plan(spec: PlanSpec, nodes: Mapping[str, Node]) -> ExecutionPlan:
    """Resolve a :class:`PlanSpec` against the live kernel registry.

    ``nodes`` maps schedule node names to their :class:`~repro.ir.node.
    Node` objects (attributes and the observer identity come from there).
    This is the *entire* load-time step — no graph analysis, no compiler.
    Fused instructions bind each constituent link's base and ``out=``
    kernels into one chain executor; precomputed slots bind their
    transform functions (the executor applies them lazily, once per
    session).

    Raises:
        ExecutionError: when the spec references a node the schedule lacks,
            a kernel/variant/transform the registry lacks, or a kernel
            whose op type disagrees with the node's.
    """
    instructions: list[Instruction] = []
    for ispec in spec.instructions:
        node = nodes.get(ispec.node)
        if node is None:
            raise ExecutionError(
                f"plan references unknown node {ispec.node!r}")
        if node.op_type != ispec.kernel:
            raise ExecutionError(
                f"plan instruction {ispec.node!r} binds kernel "
                f"{ispec.kernel!r} but the node is {node.op_type!r}")
        out_kernel = out_key = out_shape = out_dtype = None
        attrs = node.attrs
        if ispec.fused is not None:
            kernel, out_kernel = _bind_fused(ispec, nodes)
            attrs = {}
        elif ispec.variant == VARIANT_DONATING:
            kernel = DONATING_KERNELS.get(ispec.kernel)
        elif ispec.variant == VARIANT_BASE:
            kernel = KERNELS.get(ispec.kernel)
        else:
            kernel = VARIANT_KERNELS.get((ispec.kernel, ispec.variant))
            if kernel is None:
                raise ExecutionError(
                    f"unknown kernel variant {ispec.variant!r} for "
                    f"{ispec.kernel!r}")
        if kernel is None:
            raise ExecutionError(
                f"runtime lacks {ispec.variant!r} kernel for "
                f"{ispec.kernel!r}")
        if ispec.use_out:
            if out_kernel is None:  # fused chains bound theirs above
                out_kernel = OUT_KERNELS.get(ispec.kernel)
                if out_kernel is None:
                    raise ExecutionError(
                        f"runtime lacks out= kernel for {ispec.kernel!r}")
            out_shape = ispec.out_shape
            out_dtype = np.dtype(ispec.out_dtype)
            out_key = arena_key_for(out_shape, out_dtype)
        instructions.append(Instruction(
            node=node, kernel=kernel, attrs=attrs,
            input_slots=ispec.input_slots, output_slots=ispec.output_slots,
            out_kernel=out_kernel, out_key=out_key, out_shape=out_shape,
            out_dtype=out_dtype, donate_slot=ispec.donate_slot,
            check_state_slots=ispec.check_state_slots, frees=ispec.frees,
            fresh_outputs=ispec.fresh_outputs,
            variant="fused" if ispec.fused is not None else ispec.variant,
            const_args=ispec.const_args))
    precomputed = []
    for entry in spec.precomputed:
        transform = PRECOMPUTE_TRANSFORMS.get(entry.transform)
        if transform is None:
            raise ExecutionError(
                f"runtime lacks precompute transform {entry.transform!r}")
        precomputed.append((entry.slot, entry.state, transform))
    return ExecutionPlan(
        spec=spec,
        num_slots=spec.num_slots,
        feed_specs=spec.feed_specs,
        state_bindings=spec.state_bindings,
        instructions=tuple(instructions),
        output_slots=spec.output_slots,
        clear_slots=spec.clear_slots,
        arena_caps=dict(spec.arena_caps),
        peak_transient_bytes=spec.peak_transient_bytes,
        final_transient_bytes=spec.final_transient_bytes,
        precomputed=tuple(precomputed),
        passes=spec.passes,
    )


def _bind_fused(ispec: InstructionSpec, nodes: Mapping[str, Node]):
    """Bind one fused instruction's links into chain-executing callables."""
    links = []
    for link in ispec.fused:
        node = nodes.get(link.node)
        if node is None:
            raise ExecutionError(
                f"fused instruction {ispec.node!r} references unknown "
                f"node {link.node!r}")
        if node.op_type != link.kernel:
            raise ExecutionError(
                f"fused link {link.node!r} binds kernel {link.kernel!r} "
                f"but the node is {node.op_type!r}")
        base = KERNELS.get(link.kernel)
        out = OUT_KERNELS.get(link.kernel)
        if base is None or out is None:
            raise ExecutionError(
                f"runtime lacks base/out kernels for fused link "
                f"{link.kernel!r}")
        links.append((base, out, node.attrs, link.args))
    return make_fused_kernel(tuple(links))


def build_plan(program, passes: Any = None) -> ExecutionPlan:
    """Lower ``program`` and bind the result in one step (in-process use).

    Raises:
        ExecutionError: on an op without a registered kernel, or an output
            name nothing produces.
    """
    return bind_plan(build_plan_spec(program, passes=passes),
                     {node.name: node for node in program.schedule})
